"""Edge-side pipelined certification engine for wall-clock deployments.

The simulator models CPU and WAN costs explicitly, so inside it the
pipeline lives in :class:`~repro.nodes.edge.EdgeNode` and the event loop.
Outside the simulator — the tracked ``cert_pipeline_*`` benchmarks, or a
real deployment shim — the same windowed protocol needs a driver that does
the actual crypto: sign a bounded window of
:class:`~repro.messages.log_messages.CertifyBatchRequest`\\ s, hand them to
the cloud's :class:`~repro.core.certify_engine.ParallelCertifyEngine`-backed
window path, and absorb the returned certificates (out of order, duplicates
idempotent).

What pipelining buys at the crypto layer: a window of ``d`` outstanding
batches means the cloud sees ``d`` same-edge request signatures per burst
and the edge sees ``d`` same-cloud certificate signatures per burst — both
collapse into one Schnorr batch verification each
(:meth:`~repro.crypto.signatures.KeyRegistry.verify_many`), so per batch
only the two unavoidable *signing* exponentiations remain.  Depth 1
degenerates to exactly the serial per-batch round measured by the
``certify_batch`` benchmark row.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from ..common.identifiers import BlockId, NodeId
from ..crypto.signatures import KeyRegistry
from ..faults.retry import RetryPolicy
from ..log.proofs import derive_batched_proofs, verify_batch_certificates
from ..messages.log_messages import (
    BatchCertificateMessage,
    CertifyBatchRequest,
    CertifyBatchStatement,
    CertifyRejection,
    CertifyStatement,
    CertifyWindowRequest,
    CertifyWindowStatement,
)
from .certification import LazyCertifier


class EdgeCertifyPipeline:
    """Drives one edge's bounded in-flight certification window.

    The engine wraps the same :class:`LazyCertifier` windowed state the
    simulated edge node uses, so dispatch-window accounting, out-of-order
    absorption, and selective retry behave identically in and out of the
    simulator.
    """

    def __init__(
        self,
        registry: KeyRegistry,
        edge: NodeId,
        cloud: NodeId,
        depth: int = 1,
        batch_size: int = 32,
        clock: Optional[Callable[[], float]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        metrics=None,
    ) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.registry = registry
        self.edge = edge
        self.cloud = cloud
        self.depth = depth
        self.batch_size = batch_size
        #: Elapsed-time source for overdue-retry bookkeeping.  The default
        #: is :func:`time.monotonic`, **never** ``time.time()``: retry
        #: deadlines compare elapsed-time deltas, and a system clock step
        #: (NTP correction, manual adjustment) would otherwise mass-trigger
        #: — or indefinitely suppress — every pending retry at once.
        #: Simulated and test callers inject their own time by passing
        #: explicit ``now`` values (or a custom *clock*) exactly as before.
        self.clock: Callable[[], float] = clock if clock is not None else time.monotonic
        #: Backoff schedule for :meth:`retry_overdue` when the caller does
        #: not pass an explicit timeout.  ``None`` keeps the legacy
        #: flat-timeout contract (the caller must then pass ``timeout_s``).
        self.retry_policy = retry_policy
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        #: the pipeline mirrors its progress counters onto it
        #: (``pipeline_submitted`` / ``pipeline_dispatched`` /
        #: ``pipeline_absorbed`` / ``pipeline_rejected`` /
        #: ``pipeline_retries``).  ``None`` keeps the hot path untouched.
        self.metrics = metrics
        self.certifier = LazyCertifier()
        self.absorbed = 0
        self.rejected = 0
        #: Blocks the cloud definitively refused (a conflict rejection):
        #: they will never certify, so the drain treats them as terminal.
        self.abandoned: set[BlockId] = set()

    # ------------------------------------------------------------------
    # Producing work
    # ------------------------------------------------------------------
    def submit(
        self, block_id: BlockId, block_digest: str, now: Optional[float] = None
    ) -> None:
        """Queue one freshly formed block's digest for certification.

        ``now`` defaults to the pipeline's monotonic clock; sim-time callers
        keep injecting their own timestamps.
        """

        if now is None:
            now = self.clock()
        self.certifier.track(block_id, block_digest, requested_at=now)
        self.certifier.enqueue_for_dispatch(block_id)
        if self.metrics is not None:
            self.metrics.counter("pipeline_submitted").inc()

    def dispatch_ready(
        self, now: Optional[float] = None, allow_partial: bool = True
    ) -> "list[CertifyBatchRequest | CertifyWindowRequest]":
        """Sign and return dispatchable requests while the window has room.

        Mirrors the simulated edge's pump: full ``batch_size`` chunks ship
        while ``in_flight_count < depth``; a trailing partial batch ships
        only when *allow_partial* (there is no flush timer out here — the
        caller decides when stragglers must go).  A pump that fills more
        than one window slot ships them as one
        :class:`CertifyWindowRequest` envelope — one edge signature for the
        whole window; a single batch keeps the plain wire format.
        """

        if now is None:
            now = self.clock()
        groups = self.certifier.drain_window_groups(
            depth=self.depth,
            batch_size=self.batch_size,
            now=now,
            allow_partial=allow_partial,
        )
        if not groups:
            return []
        if self.metrics is not None:
            self.metrics.counter("pipeline_dispatched").inc(
                sum(len(tasks) for tasks in groups)
            )
        statements = [self._batch_statement(tasks) for tasks in groups]
        if len(statements) == 1:
            statement = statements[0]
            return [
                CertifyBatchRequest(
                    statement=statement,
                    signature=self.registry.sign(self.edge, statement),
                )
            ]
        window = CertifyWindowStatement(edge=self.edge, batches=tuple(statements))
        return [
            CertifyWindowRequest(
                statement=window, signature=self.registry.sign(self.edge, window)
            )
        ]

    def _batch_statement(self, tasks) -> CertifyBatchStatement:
        """One batch statement for *tasks* — shared by dispatch and retry,
        so a retried batch stays wire-identical to its original (the
        idempotent duplicate-certificate absorption depends on it)."""

        return CertifyBatchStatement(
            edge=self.edge,
            items=tuple(
                CertifyStatement(
                    edge=self.edge,
                    block_id=task.block_id,
                    block_digest=task.block_digest,
                    num_entries=0,
                )
                for task in tasks
            ),
        )

    # ------------------------------------------------------------------
    # Overdue retry (wall-clock deployments)
    # ------------------------------------------------------------------
    def retry_overdue(
        self, timeout_s: Optional[float] = None, now: Optional[float] = None
    ) -> list[CertifyBatchRequest]:
        """Selectively re-sign the in-flight batches overdue past *timeout_s*.

        Elapsed time is measured on the pipeline's monotonic clock (or the
        injected ``now``), so a wall-clock step can neither mass-trigger
        nor suppress retries.  Mirrors the simulated edge's per-lost-batch
        granularity: each overdue batch re-ships as exactly that batch
        under a fresh signature, and its duplicate late certificate is
        absorbed idempotently.

        When *timeout_s* is omitted, the pipeline's :class:`RetryPolicy`
        supplies a per-batch backoff horizon instead — a batch already
        re-sent *n* times waits out the policy's ``n+1``-th step before
        going overdue again, and a batch whose attempt budget is exhausted
        stops retrying entirely (it stays in flight for a late certificate
        or an explicit :meth:`absorb_rejection`).
        """

        if now is None:
            now = self.clock()
        policy = self.retry_policy
        if timeout_s is None:
            if policy is None:
                raise ValueError(
                    "retry_overdue needs timeout_s or a configured retry_policy"
                )
            horizon: "float | Callable[[int], float]" = policy.timeout_for
        else:
            horizon = timeout_s
            policy = None  # explicit timeout bypasses the policy's budget
        requests: list[CertifyBatchRequest] = []
        for batch in self.certifier.overdue_batches(now, horizon):
            if policy is not None and policy.exhausted(batch.retries):
                continue
            tasks = self.certifier.record_batch_retry(batch.batch_id, now)
            if not tasks:
                continue
            statement = self._batch_statement(tasks)
            requests.append(
                CertifyBatchRequest(
                    statement=statement,
                    signature=self.registry.sign(self.edge, statement),
                )
            )
        if requests and self.metrics is not None:
            self.metrics.counter("pipeline_retries").inc(len(requests))
        return requests

    # ------------------------------------------------------------------
    # Absorbing certificates
    # ------------------------------------------------------------------
    def absorb(self, messages: Sequence[BatchCertificateMessage]) -> int:
        """Absorb a burst of certificates; returns newly certified blocks.

        The burst's root signatures are verified together (one amortized
        pass seeding the per-certificate verdict memos), then each per-block
        proof costs only hashing.  Order within the burst is irrelevant and
        duplicates are idempotent — exactly the simulated edge's semantics.
        """

        verdicts = verify_batch_certificates(
            self.registry,
            [message.certificate for message in messages],
            expected_cloud=self.cloud,
        )
        rejected_before = self.rejected
        newly_certified = 0
        for message, valid in zip(messages, verdicts):
            if not valid or message.certificate.edge != self.edge:
                self.rejected += 1
                continue
            proofs = derive_batched_proofs(message.certificate, message.blocks)
            for proof in proofs:
                task = self.certifier.task(proof.block_id)
                if task is None or task.block_digest != proof.block_digest:
                    self.rejected += 1
                    continue
                if task.is_certified:
                    continue  # duplicate answer (retry race): idempotent
                if not proof.verify(self.registry):
                    self.rejected += 1
                    continue
                self.certifier.complete(proof)
                newly_certified += 1
        self.absorbed += newly_certified
        if self.metrics is not None:
            if newly_certified:
                self.metrics.counter("pipeline_absorbed").inc(newly_certified)
            if self.rejected > rejected_before:
                self.metrics.counter("pipeline_rejected").inc(
                    self.rejected - rejected_before
                )
        return newly_certified

    def absorb_rejection(self, rejection) -> None:
        """Handle the cloud's definitive refusal of one block.

        Mirrors the simulated edge's handler: the block will never produce
        a certificate, so its in-flight batch slot is released (the window
        must not wedge on it) and the block is marked terminally abandoned.
        """

        if rejection.cloud != self.cloud or rejection.edge != self.edge:
            return
        self.rejected += 1
        if self.metrics is not None:
            self.metrics.counter("pipeline_rejected").inc()
        self.abandoned.add(rejection.block_id)
        self.certifier.abandon_in_flight(rejection.block_id)

    @property
    def drained(self) -> bool:
        """Nothing queued or in flight, and every survivor certified.

        Blocks the cloud refused outright count as terminal — waiting for
        their certificates would wait forever.
        """

        return (
            not self.certifier.pending_dispatch_count
            and not self.certifier.in_flight_count
            and all(
                task.block_id in self.abandoned
                for task in self.certifier.outstanding()
            )
        )


def run_certify_pipeline(
    pipeline: EdgeCertifyPipeline,
    cloud_node,
    pairs: Sequence[tuple[BlockId, str]],
    now: float = 0.0,
    max_rounds: Optional[int] = None,
) -> int:
    """Push ``(block id, digest)`` pairs through a full pipelined round trip.

    Drives *pipeline* against a :class:`~repro.nodes.cloud.CloudNode`'s
    :meth:`certify_batch_window` until every block is certified: each round
    fills the window, certifies it as one cloud-side burst, and absorbs the
    returned certificates as one edge-side burst.  At depth 1 each round is
    exactly one serial request/certificate exchange; at depth ``d`` both
    sides amortize their burst's signature verifications.  Returns the
    number of rounds taken.
    """

    for block_id, digest in pairs:
        pipeline.submit(block_id, digest, now)
    rounds = 0
    while not pipeline.drained:
        if max_rounds is not None and rounds >= max_rounds:
            raise RuntimeError(f"pipeline did not drain in {max_rounds} rounds")
        requests = pipeline.dispatch_ready(now)
        responses = cloud_node.certify_batch_window(
            tuple((pipeline.edge, request) for request in requests)
        )
        progressed = 0
        certificates = []
        for _target, message in responses:
            if isinstance(message, BatchCertificateMessage):
                certificates.append(message)
            elif isinstance(message, CertifyRejection):
                pipeline.absorb_rejection(message)
                progressed += 1
        progressed += pipeline.absorb(certificates)
        rounds += 1
        if not requests and not progressed:
            raise RuntimeError("pipeline stalled: no requests shipped, nothing absorbed")
    return rounds
