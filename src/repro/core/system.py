"""The top-level WedgeChain system facade.

:class:`WedgeChainSystem` wires a cloud node, one or more edge nodes, and a
set of clients onto a shared simulated environment, and offers the small
convenience API (issue operations, run the simulation, wait for commit
phases, collect statistics) that the examples and the benchmark harness use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..common.config import SystemConfig
from ..common.errors import ConfigurationError
from ..common.identifiers import NodeId, OperationId
from ..common.regions import Region
from ..log.proofs import CommitPhase
from ..nodes.client import Client
from ..nodes.cloud import CloudNode
from ..nodes.edge import EdgeNode
from ..sim.environment import Environment
from ..sim.parameters import SimulationParameters
from ..sim.topology import Topology
from .commit import CommitTracker

#: Signature of a factory that builds an edge node (lets callers substitute
#: malicious variants without changing the wiring code).
EdgeFactory = Callable[[Environment, NodeId, SystemConfig, str, Region], EdgeNode]


def _default_edge_factory(
    env: Environment,
    cloud: NodeId,
    config: SystemConfig,
    name: str,
    region: Region,
) -> EdgeNode:
    return EdgeNode(env=env, cloud=cloud, config=config, name=name, region=region)


@dataclass
class SystemStats:
    """Aggregated counters collected from every node of a deployment."""

    phase_one_commits: int
    phase_two_commits: int
    failed_operations: int
    blocks_formed: int
    certifications: int
    punishments: int
    wan_bytes: int
    lan_bytes: int

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class WedgeChainSystem:
    """A full WedgeChain deployment: cloud + edge nodes + clients."""

    def __init__(
        self,
        env: Environment,
        config: SystemConfig,
        cloud: CloudNode,
        edges: Sequence[EdgeNode],
        clients: Sequence[Client],
    ) -> None:
        self.env = env
        self.config = config
        self.cloud = cloud
        self.edges = list(edges)
        self.clients = list(clients)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        config: Optional[SystemConfig] = None,
        num_clients: int = 1,
        env: Optional[Environment] = None,
        topology: Optional[Topology] = None,
        params: Optional[SimulationParameters] = None,
        edge_factory: Optional[EdgeFactory] = None,
        seed: int = 7,
        enable_gossip: bool = False,
    ) -> "WedgeChainSystem":
        """Create a deployment according to *config*.

        Clients are placed in ``config.placement.client_region`` and assigned
        to edge nodes round-robin (each client belongs to exactly one
        partition, Section III).
        """

        config = config if config is not None else SystemConfig.paper_default()
        if num_clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        if env is None:
            env = Environment(
                topology=topology,
                params=params,
                signature_scheme=config.security.signature_scheme,
                seed=seed,
            )
        factory = edge_factory if edge_factory is not None else _default_edge_factory

        cloud = CloudNode(env=env, config=config, name="cloud-0")
        edges = [
            factory(
                env,
                cloud.node_id,
                config,
                f"edge-{index}",
                config.placement.edge_region,
            )
            for index in range(config.num_edge_nodes)
        ]
        clients = []
        for index in range(num_clients):
            edge = edges[index % len(edges)]
            client = Client(
                env=env,
                edge=edge.node_id,
                cloud=cloud.node_id,
                config=config,
                name=f"client-{index}",
                region=config.placement.client_region,
            )
            clients.append(client)
            cloud.register_gossip_target(client.node_id)
        system = cls(env=env, config=config, cloud=cloud, edges=edges, clients=clients)
        if enable_gossip:
            cloud.start_gossip()
        return system

    # ------------------------------------------------------------------
    # Access helpers
    # ------------------------------------------------------------------
    def client(self, index: int = 0) -> Client:
        return self.clients[index]

    def edge(self, index: int = 0) -> EdgeNode:
        return self.edges[index]

    def trackers(self) -> list[CommitTracker]:
        return [client.tracker for client in self.clients]

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the event queue."""

        return self.env.run(max_events)

    def run_for(self, duration_s: float) -> int:
        """Run the simulation for *duration_s* seconds of simulated time."""

        return self.env.run_until(self.env.now() + duration_s)

    def wait_for(
        self,
        client: Client,
        operation_id: OperationId,
        phase: CommitPhase = CommitPhase.PHASE_TWO,
        max_time_s: float = 120.0,
    ) -> CommitPhase:
        """Run the simulation until an operation reaches *phase* (or times out)."""

        target_rank = _phase_rank(phase)

        def done() -> bool:
            current = client.tracker.get(operation_id).phase
            return _phase_rank(current) >= target_rank or current is CommitPhase.FAILED

        self.env.run_until_condition(done, self.env.now() + max_time_s)
        return client.tracker.get(operation_id).phase

    def wait_for_all(
        self,
        operations: Iterable[tuple[Client, OperationId]],
        phase: CommitPhase = CommitPhase.PHASE_TWO,
        max_time_s: float = 300.0,
    ) -> bool:
        """Run until every listed operation reaches *phase*; returns success."""

        pairs = list(operations)
        target_rank = _phase_rank(phase)

        def done() -> bool:
            for client, operation_id in pairs:
                current = client.tracker.get(operation_id).phase
                if current is CommitPhase.FAILED:
                    continue
                if _phase_rank(current) < target_rank:
                    return False
            return True

        return self.env.run_until_condition(done, self.env.now() + max_time_s)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> SystemStats:
        phase_one = sum(
            tracker.count_in_phase(CommitPhase.PHASE_ONE) for tracker in self.trackers()
        )
        phase_two = sum(
            tracker.count_in_phase(CommitPhase.PHASE_TWO) for tracker in self.trackers()
        )
        failed = sum(
            tracker.count_in_phase(CommitPhase.FAILED) for tracker in self.trackers()
        )
        return SystemStats(
            phase_one_commits=phase_one,
            phase_two_commits=phase_two,
            failed_operations=failed,
            blocks_formed=sum(edge.stats["blocks_formed"] for edge in self.edges),
            certifications=self.cloud.stats["certifications"],
            punishments=self.cloud.stats["punishments"],
            wan_bytes=self.env.network.stats.wan_bytes,
            lan_bytes=self.env.network.stats.lan_bytes,
        )


def _phase_rank(phase: CommitPhase) -> int:
    order = {
        CommitPhase.PENDING: 0,
        CommitPhase.FAILED: 0,
        CommitPhase.PHASE_ONE: 1,
        CommitPhase.PHASE_TWO: 2,
    }
    return order[phase]
