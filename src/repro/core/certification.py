"""Edge-side bookkeeping for lazy (asynchronous) certification.

After Phase I committing a block locally, the edge node asks the cloud to
certify the block's digest in the background.  The :class:`LazyCertifier`
tracks which blocks still await certification, which clients must be
forwarded the block proof once it arrives (both writers of the block and
readers served under Phase I), and which certification requests have been
outstanding long enough to warrant a retry.

Because certification is asynchronous (Section IV-E), nothing on the
client-visible path needs the request to leave immediately: the certifier
also maintains a *dispatch queue* of digests awaiting their batch, so the
edge can amortize one signature over a whole
:class:`~repro.messages.log_messages.CertifyBatchRequest`.

The same asynchrony permits arbitrarily deep certification *pipelines*: the
certifier tracks a window of :class:`InFlightBatch`\\ es — batches whose
request has left the edge but whose
:class:`~repro.log.proofs.BatchCertificate` has not come back yet — so the
edge can keep several WAN round-trips overlapped instead of absorbing one
certificate before the next batch ships.  Batch ids are purely local
bookkeeping (nothing about them is on the wire; certificates are matched
back to their batch through the block ids they certify), certificates are
absorbed out of order, and an overdue batch is retried *selectively* — only
the lost batch is re-sent, never the whole overdue set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ..common.errors import ProtocolError
from ..common.identifiers import BlockId, NodeId, OperationId
from ..log.proofs import AnyBlockProof

#: Overdue horizon: either a flat timeout in seconds or a schedule mapping
#: the retries already sent to the timeout guarding the next one (the shape
#: :meth:`repro.faults.retry.RetryPolicy.timeout_for` provides, giving
#: per-batch exponential backoff without the certifier knowing the policy).
TimeoutSpec = Union[float, Callable[[int], float]]


def _timeout_value(timeout_s: TimeoutSpec, retries: int) -> float:
    return timeout_s(retries) if callable(timeout_s) else timeout_s


@dataclass
class CertificationTask:
    """One block awaiting (or having completed) cloud certification."""

    block_id: BlockId
    block_digest: str
    requested_at: float
    #: (client, operation) pairs to notify when the proof arrives.
    subscribers: list[tuple[NodeId, OperationId]] = field(default_factory=list)
    proof: Optional[AnyBlockProof] = None
    retries: int = 0

    @property
    def is_certified(self) -> bool:
        return self.proof is not None


@dataclass
class InFlightBatch:
    """One dispatched :class:`CertifyBatchRequest` awaiting its certificate.

    ``batch_id`` is local to the issuing edge (never on the wire); the
    certificate is matched back through the block ids it certifies.
    """

    batch_id: int
    block_ids: tuple[BlockId, ...]
    dispatched_at: float
    retries: int = 0
    #: Members still awaiting certification; the batch retires when empty.
    remaining: set[BlockId] = field(default_factory=set)


class LazyCertifier:
    """Tracks asynchronous certification state for one edge node."""

    def __init__(self) -> None:
        self._tasks: dict[BlockId, CertificationTask] = {}
        self._certified_count = 0
        #: Block ids queued for the next batched certify request, in the
        #: order they were formed (the cloud sees them in log order).
        self._dispatch_queue: list[BlockId] = []
        #: Dispatched-but-uncertified batches, by local batch id.
        self._in_flight: dict[int, InFlightBatch] = {}
        #: Uncertified block id -> the in-flight batch carrying it.
        self._block_batch: dict[BlockId, int] = {}
        self._next_batch_id = 0
        self._retired_batch_count = 0

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------
    def track(self, block_id: BlockId, block_digest: str, requested_at: float) -> CertificationTask:
        if block_id in self._tasks:
            raise ProtocolError(f"block {block_id} already tracked for certification")
        task = CertificationTask(
            block_id=block_id, block_digest=block_digest, requested_at=requested_at
        )
        self._tasks[block_id] = task
        return task

    def task(self, block_id: BlockId) -> Optional[CertificationTask]:
        return self._tasks.get(block_id)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._tasks

    def subscribe(
        self, block_id: BlockId, client: NodeId, operation_id: OperationId
    ) -> Optional[AnyBlockProof]:
        """Register a client to be notified of the block's proof.

        Returns the proof immediately if the block is already certified (the
        caller then forwards it right away instead of waiting).
        """

        task = self._tasks.get(block_id)
        if task is None:
            raise ProtocolError(f"block {block_id} is not tracked for certification")
        if task.is_certified:
            return task.proof
        entry = (client, operation_id)
        if entry not in task.subscribers:
            task.subscribers.append(entry)
        return None

    # ------------------------------------------------------------------
    # Batched dispatch
    # ------------------------------------------------------------------
    def enqueue_for_dispatch(self, block_id: BlockId) -> int:
        """Queue a tracked block's digest for the next batched request.

        Returns the queue length after enqueueing; the caller flushes when
        it reaches the configured batch size.
        """

        if block_id not in self._tasks:
            raise ProtocolError(
                f"block {block_id} is not tracked for certification"
            )
        if block_id not in self._dispatch_queue:
            self._dispatch_queue.append(block_id)
        return len(self._dispatch_queue)

    def drain_dispatch_queue(
        self, max_items: Optional[int] = None
    ) -> tuple[CertificationTask, ...]:
        """Remove and return the queued tasks (oldest first, in log order).

        Tasks certified while queued (e.g. by an idempotent retry answered
        through the single-block path) are dropped rather than re-requested.
        """

        if max_items is None or max_items >= len(self._dispatch_queue):
            drained, self._dispatch_queue = self._dispatch_queue, []
        else:
            drained = self._dispatch_queue[:max_items]
            self._dispatch_queue = self._dispatch_queue[max_items:]
        return tuple(
            self._tasks[block_id]
            for block_id in drained
            if not self._tasks[block_id].is_certified
        )

    @property
    def pending_dispatch_count(self) -> int:
        return len(self._dispatch_queue)

    def queued_for_dispatch(self, block_id: BlockId) -> bool:
        """Whether a block's digest is still waiting for its batch to ship.

        Such a block has never actually been requested from the cloud, so
        retry logic must not treat it as an unanswered request — the batch
        flush (timer- or size-triggered) covers it.
        """

        return block_id in self._dispatch_queue

    # ------------------------------------------------------------------
    # Windowed (pipelined) dispatch
    # ------------------------------------------------------------------
    def begin_batch(
        self, block_ids: "list[BlockId] | tuple[BlockId, ...]", now: float
    ) -> InFlightBatch:
        """Register a dispatched batch request as in flight.

        Every block must be tracked, uncertified, and not already carried by
        another in-flight batch (a selective retry re-sends the *same* batch
        through :meth:`record_batch_retry` instead).  Members' request
        timestamps move to the dispatch time — the overdue clock measures
        from when the request actually left, not from block formation.
        """

        members: list[BlockId] = []
        for block_id in block_ids:
            task = self._tasks.get(block_id)
            if task is None:
                raise ProtocolError(
                    f"block {block_id} is not tracked for certification"
                )
            if task.is_certified:
                continue
            if block_id in self._block_batch:
                raise ProtocolError(
                    f"block {block_id} is already carried by in-flight batch "
                    f"{self._block_batch[block_id]}"
                )
            task.requested_at = now
            members.append(block_id)
        if not members:
            raise ProtocolError("cannot dispatch an empty certify batch")
        batch = InFlightBatch(
            batch_id=self._next_batch_id,
            block_ids=tuple(members),
            dispatched_at=now,
            remaining=set(members),
        )
        self._next_batch_id += 1
        self._in_flight[batch.batch_id] = batch
        for block_id in members:
            self._block_batch[block_id] = batch.batch_id
        return batch

    def drain_window_groups(
        self,
        depth: int,
        batch_size: int,
        now: float,
        allow_partial: bool = False,
    ) -> list[tuple[CertificationTask, ...]]:
        """Pull dispatchable batches off the queue while the window has room.

        The one window-pump policy shared by the simulated edge node and the
        wall-clock :class:`~repro.core.certify_pipeline.EdgeCertifyPipeline`:
        full ``batch_size`` chunks ship while ``in_flight_count < depth``; a
        trailing partial batch ships only when *allow_partial* (timeout
        flushes and drains).  Every returned group is already registered in
        flight via :meth:`begin_batch`; the caller only builds and sends the
        requests.
        """

        groups: list[tuple[CertificationTask, ...]] = []
        while self.pending_dispatch_count and self.in_flight_count < depth:
            if not allow_partial and self.pending_dispatch_count < batch_size:
                break
            tasks = self.drain_dispatch_queue(max_items=batch_size)
            if not tasks:
                continue  # drained slice was fully certified already
            self.begin_batch([task.block_id for task in tasks], now)
            groups.append(tasks)
        return groups

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    @property
    def retired_batch_count(self) -> int:
        return self._retired_batch_count

    def in_flight_batches(self) -> tuple[InFlightBatch, ...]:
        return tuple(
            self._in_flight[batch_id] for batch_id in sorted(self._in_flight)
        )

    def in_flight(self, block_id: BlockId) -> bool:
        """Whether the block's request is riding an in-flight batch."""

        return block_id in self._block_batch

    def overdue_batches(
        self, now: float, timeout_s: TimeoutSpec
    ) -> tuple[InFlightBatch, ...]:
        """In-flight batches unanswered longer than *timeout_s* (oldest id
        first) — the selective-retry unit under pipelining.

        *timeout_s* may be a retry-count-indexed schedule (see
        :data:`TimeoutSpec`), in which case an already-retried batch waits
        out its backoff step before going overdue again.
        """

        return tuple(
            self._in_flight[batch_id]
            for batch_id in sorted(self._in_flight)
            if now - self._in_flight[batch_id].dispatched_at
            > _timeout_value(timeout_s, self._in_flight[batch_id].retries)
        )

    def record_batch_retry(
        self, batch_id: int, now: float
    ) -> tuple[CertificationTask, ...]:
        """Note that one lost batch was re-sent; returns the tasks re-sent.

        Resets the batch's overdue clock and the member tasks' request
        timestamps (so the per-task overdue scan does not double-retry
        them), and bumps both retry counters.
        """

        batch = self._in_flight.get(batch_id)
        if batch is None:
            raise ProtocolError(f"batch {batch_id} is not in flight")
        batch.retries += 1
        batch.dispatched_at = now
        tasks = []
        for block_id in batch.block_ids:
            task = self._tasks[block_id]
            if task.is_certified:
                continue
            task.retries += 1
            task.requested_at = now
            tasks.append(task)
        return tuple(tasks)

    def cancel_batch(self, batch_id: int) -> tuple[BlockId, ...]:
        """Withdraw an in-flight batch and re-queue its uncertified blocks.

        Used when a window must be torn down cleanly (e.g. a shard handoff
        that prefers re-dispatching under fresh conditions over waiting):
        the members return to the *front* of the dispatch queue in batch
        order, so a later flush re-requests them first.
        """

        batch = self._in_flight.pop(batch_id, None)
        if batch is None:
            raise ProtocolError(f"batch {batch_id} is not in flight")
        requeued = []
        for block_id in batch.block_ids:
            self._block_batch.pop(block_id, None)
            if not self._tasks[block_id].is_certified and (
                block_id not in self._dispatch_queue
            ):
                requeued.append(block_id)
        self._dispatch_queue[:0] = requeued
        return tuple(requeued)

    def reset_window(self) -> tuple[BlockId, ...]:
        """Forget every dispatch-queue entry and in-flight batch.

        This is the crash model: the pipeline window and the pending batch
        queue are volatile memory, wiped when the edge goes down, while the
        tasks (mirroring the durable log's uncertified blocks, proofs
        included) survive.  On restart the overdue scan sees the survivors
        as never-dispatched and re-sends them.  Returns the block ids whose
        in-flight requests were forgotten.
        """

        dropped = tuple(sorted(self._block_batch))
        self._in_flight.clear()
        self._block_batch.clear()
        self._dispatch_queue.clear()
        return dropped

    def abandon_in_flight(self, block_id: BlockId) -> None:
        """Drop a block from its in-flight batch without certifying it.

        Called when the cloud definitively refused the block (a
        :class:`CertifyRejection`): the batch must not occupy a window slot
        forever waiting for a certificate that will never come.
        """

        batch_id = self._block_batch.pop(block_id, None)
        if batch_id is None:
            return
        batch = self._in_flight.get(batch_id)
        if batch is None:
            return
        batch.remaining.discard(block_id)
        if not batch.remaining:
            del self._in_flight[batch_id]
            self._retired_batch_count += 1

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def complete(self, proof: AnyBlockProof) -> list[tuple[NodeId, OperationId]]:
        """Record an arrived proof; returns the subscribers to notify.

        Certificates may arrive out of order and duplicated (retries race
        their original answers): the first proof wins, later duplicates are
        absorbed idempotently, and the block's in-flight batch retires once
        its last member is certified.
        """

        task = self._tasks.get(proof.block_id)
        if task is None:
            raise ProtocolError(
                f"received proof for untracked block {proof.block_id}"
            )
        if task.block_digest != proof.block_digest:
            raise ProtocolError(
                f"proof digest for block {proof.block_id} does not match the "
                "digest sent for certification"
            )
        first_time = not task.is_certified
        task.proof = proof
        if first_time:
            self._certified_count += 1
            batch_id = self._block_batch.pop(proof.block_id, None)
            if batch_id is not None:
                batch = self._in_flight[batch_id]
                batch.remaining.discard(proof.block_id)
                if not batch.remaining:
                    del self._in_flight[batch_id]
                    self._retired_batch_count += 1
        subscribers = list(task.subscribers)
        task.subscribers = []
        return subscribers

    # ------------------------------------------------------------------
    # Retry
    # ------------------------------------------------------------------
    def record_retry(self, block_id: BlockId, now: float) -> CertificationTask:
        """Note that the certification request for a block was re-sent.

        Bumps the task's retry counter and resets its request timestamp so
        :meth:`overdue` measures from the latest attempt.
        """

        task = self._tasks.get(block_id)
        if task is None:
            raise ProtocolError(f"block {block_id} is not tracked for certification")
        if task.is_certified:
            raise ProtocolError(f"block {block_id} is already certified")
        task.retries += 1
        task.requested_at = now
        return task

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def certified_count(self) -> int:
        return self._certified_count

    @property
    def tracked_count(self) -> int:
        return len(self._tasks)

    def outstanding(self) -> tuple[CertificationTask, ...]:
        return tuple(
            task for task in self._tasks.values() if not task.is_certified
        )

    def overdue(
        self, now: float, timeout_s: TimeoutSpec
    ) -> tuple[CertificationTask, ...]:
        """Tasks whose certification has been pending longer than *timeout_s*
        (flat, or a retry-count-indexed backoff schedule)."""

        return tuple(
            task
            for task in self._tasks.values()
            if not task.is_certified
            and now - task.requested_at > _timeout_value(timeout_s, task.retries)
        )
