"""Edge-side bookkeeping for lazy (asynchronous) certification.

After Phase I committing a block locally, the edge node asks the cloud to
certify the block's digest in the background.  The :class:`LazyCertifier`
tracks which blocks still await certification, which clients must be
forwarded the block proof once it arrives (both writers of the block and
readers served under Phase I), and which certification requests have been
outstanding long enough to warrant a retry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..common.errors import ProtocolError
from ..common.identifiers import BlockId, NodeId, OperationId
from ..log.proofs import BlockProof


@dataclass
class CertificationTask:
    """One block awaiting (or having completed) cloud certification."""

    block_id: BlockId
    block_digest: str
    requested_at: float
    #: (client, operation) pairs to notify when the proof arrives.
    subscribers: list[tuple[NodeId, OperationId]] = field(default_factory=list)
    proof: Optional[BlockProof] = None
    retries: int = 0

    @property
    def is_certified(self) -> bool:
        return self.proof is not None


class LazyCertifier:
    """Tracks asynchronous certification state for one edge node."""

    def __init__(self) -> None:
        self._tasks: dict[BlockId, CertificationTask] = {}
        self._certified_count = 0

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------
    def track(self, block_id: BlockId, block_digest: str, requested_at: float) -> CertificationTask:
        if block_id in self._tasks:
            raise ProtocolError(f"block {block_id} already tracked for certification")
        task = CertificationTask(
            block_id=block_id, block_digest=block_digest, requested_at=requested_at
        )
        self._tasks[block_id] = task
        return task

    def task(self, block_id: BlockId) -> Optional[CertificationTask]:
        return self._tasks.get(block_id)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._tasks

    def subscribe(
        self, block_id: BlockId, client: NodeId, operation_id: OperationId
    ) -> Optional[BlockProof]:
        """Register a client to be notified of the block's proof.

        Returns the proof immediately if the block is already certified (the
        caller then forwards it right away instead of waiting).
        """

        task = self._tasks.get(block_id)
        if task is None:
            raise ProtocolError(f"block {block_id} is not tracked for certification")
        if task.is_certified:
            return task.proof
        entry = (client, operation_id)
        if entry not in task.subscribers:
            task.subscribers.append(entry)
        return None

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def complete(self, proof: BlockProof) -> list[tuple[NodeId, OperationId]]:
        """Record an arrived proof; returns the subscribers to notify."""

        task = self._tasks.get(proof.block_id)
        if task is None:
            raise ProtocolError(
                f"received proof for untracked block {proof.block_id}"
            )
        if task.block_digest != proof.block_digest:
            raise ProtocolError(
                f"proof digest for block {proof.block_id} does not match the "
                "digest sent for certification"
            )
        first_time = not task.is_certified
        task.proof = proof
        if first_time:
            self._certified_count += 1
        subscribers = list(task.subscribers)
        task.subscribers = []
        return subscribers

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def certified_count(self) -> int:
        return self._certified_count

    @property
    def tracked_count(self) -> int:
        return len(self._tasks)

    def outstanding(self) -> tuple[CertificationTask, ...]:
        return tuple(
            task for task in self._tasks.values() if not task.is_certified
        )

    def overdue(self, now: float, timeout_s: float) -> tuple[CertificationTask, ...]:
        """Tasks whose certification has been pending longer than *timeout_s*."""

        return tuple(
            task
            for task in self._tasks.values()
            if not task.is_certified and now - task.requested_at > timeout_s
        )
