"""Edge-side bookkeeping for lazy (asynchronous) certification.

After Phase I committing a block locally, the edge node asks the cloud to
certify the block's digest in the background.  The :class:`LazyCertifier`
tracks which blocks still await certification, which clients must be
forwarded the block proof once it arrives (both writers of the block and
readers served under Phase I), and which certification requests have been
outstanding long enough to warrant a retry.

Because certification is asynchronous (Section IV-E), nothing on the
client-visible path needs the request to leave immediately: the certifier
also maintains a *dispatch queue* of digests awaiting their batch, so the
edge can amortize one signature over a whole
:class:`~repro.messages.log_messages.CertifyBatchRequest`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..common.errors import ProtocolError
from ..common.identifiers import BlockId, NodeId, OperationId
from ..log.proofs import AnyBlockProof


@dataclass
class CertificationTask:
    """One block awaiting (or having completed) cloud certification."""

    block_id: BlockId
    block_digest: str
    requested_at: float
    #: (client, operation) pairs to notify when the proof arrives.
    subscribers: list[tuple[NodeId, OperationId]] = field(default_factory=list)
    proof: Optional[AnyBlockProof] = None
    retries: int = 0

    @property
    def is_certified(self) -> bool:
        return self.proof is not None


class LazyCertifier:
    """Tracks asynchronous certification state for one edge node."""

    def __init__(self) -> None:
        self._tasks: dict[BlockId, CertificationTask] = {}
        self._certified_count = 0
        #: Block ids queued for the next batched certify request, in the
        #: order they were formed (the cloud sees them in log order).
        self._dispatch_queue: list[BlockId] = []

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------
    def track(self, block_id: BlockId, block_digest: str, requested_at: float) -> CertificationTask:
        if block_id in self._tasks:
            raise ProtocolError(f"block {block_id} already tracked for certification")
        task = CertificationTask(
            block_id=block_id, block_digest=block_digest, requested_at=requested_at
        )
        self._tasks[block_id] = task
        return task

    def task(self, block_id: BlockId) -> Optional[CertificationTask]:
        return self._tasks.get(block_id)

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._tasks

    def subscribe(
        self, block_id: BlockId, client: NodeId, operation_id: OperationId
    ) -> Optional[AnyBlockProof]:
        """Register a client to be notified of the block's proof.

        Returns the proof immediately if the block is already certified (the
        caller then forwards it right away instead of waiting).
        """

        task = self._tasks.get(block_id)
        if task is None:
            raise ProtocolError(f"block {block_id} is not tracked for certification")
        if task.is_certified:
            return task.proof
        entry = (client, operation_id)
        if entry not in task.subscribers:
            task.subscribers.append(entry)
        return None

    # ------------------------------------------------------------------
    # Batched dispatch
    # ------------------------------------------------------------------
    def enqueue_for_dispatch(self, block_id: BlockId) -> int:
        """Queue a tracked block's digest for the next batched request.

        Returns the queue length after enqueueing; the caller flushes when
        it reaches the configured batch size.
        """

        if block_id not in self._tasks:
            raise ProtocolError(
                f"block {block_id} is not tracked for certification"
            )
        if block_id not in self._dispatch_queue:
            self._dispatch_queue.append(block_id)
        return len(self._dispatch_queue)

    def drain_dispatch_queue(
        self, max_items: Optional[int] = None
    ) -> tuple[CertificationTask, ...]:
        """Remove and return the queued tasks (oldest first, in log order).

        Tasks certified while queued (e.g. by an idempotent retry answered
        through the single-block path) are dropped rather than re-requested.
        """

        if max_items is None or max_items >= len(self._dispatch_queue):
            drained, self._dispatch_queue = self._dispatch_queue, []
        else:
            drained = self._dispatch_queue[:max_items]
            self._dispatch_queue = self._dispatch_queue[max_items:]
        return tuple(
            self._tasks[block_id]
            for block_id in drained
            if not self._tasks[block_id].is_certified
        )

    @property
    def pending_dispatch_count(self) -> int:
        return len(self._dispatch_queue)

    def queued_for_dispatch(self, block_id: BlockId) -> bool:
        """Whether a block's digest is still waiting for its batch to ship.

        Such a block has never actually been requested from the cloud, so
        retry logic must not treat it as an unanswered request — the batch
        flush (timer- or size-triggered) covers it.
        """

        return block_id in self._dispatch_queue

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def complete(self, proof: AnyBlockProof) -> list[tuple[NodeId, OperationId]]:
        """Record an arrived proof; returns the subscribers to notify."""

        task = self._tasks.get(proof.block_id)
        if task is None:
            raise ProtocolError(
                f"received proof for untracked block {proof.block_id}"
            )
        if task.block_digest != proof.block_digest:
            raise ProtocolError(
                f"proof digest for block {proof.block_id} does not match the "
                "digest sent for certification"
            )
        first_time = not task.is_certified
        task.proof = proof
        if first_time:
            self._certified_count += 1
        subscribers = list(task.subscribers)
        task.subscribers = []
        return subscribers

    # ------------------------------------------------------------------
    # Retry
    # ------------------------------------------------------------------
    def record_retry(self, block_id: BlockId, now: float) -> CertificationTask:
        """Note that the certification request for a block was re-sent.

        Bumps the task's retry counter and resets its request timestamp so
        :meth:`overdue` measures from the latest attempt.
        """

        task = self._tasks.get(block_id)
        if task is None:
            raise ProtocolError(f"block {block_id} is not tracked for certification")
        if task.is_certified:
            raise ProtocolError(f"block {block_id} is already certified")
        task.retries += 1
        task.requested_at = now
        return task

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def certified_count(self) -> int:
        return self._certified_count

    @property
    def tracked_count(self) -> int:
        return len(self._tasks)

    def outstanding(self) -> tuple[CertificationTask, ...]:
        return tuple(
            task for task in self._tasks.values() if not task.is_certified
        )

    def overdue(self, now: float, timeout_s: float) -> tuple[CertificationTask, ...]:
        """Tasks whose certification has been pending longer than *timeout_s*."""

        return tuple(
            task
            for task in self._tasks.values()
            if not task.is_certified and now - task.requested_at > timeout_s
        )
