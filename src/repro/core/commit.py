"""Client-side tracking of operations through the two commit phases.

Every operation a client issues is registered here.  The tracker records
when the operation reached Phase I (the edge's signed acknowledgement) and
Phase II (the cloud's certification), which the benchmark harness later turns
into the latency and commit-rate figures of the paper (Figures 4 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..common.errors import ProtocolError
from ..common.identifiers import BlockId, OperationId, OperationKind
from ..log.proofs import BlockProof, CommitPhase, PhaseOneReceipt


@dataclass
class OperationRecord:
    """Everything the client remembers about one of its operations."""

    operation_id: OperationId
    kind: OperationKind
    issued_at: float
    phase: CommitPhase = CommitPhase.PENDING
    block_id: Optional[BlockId] = None
    receipt: Optional[PhaseOneReceipt] = None
    proof: Optional[BlockProof] = None
    phase_one_at: Optional[float] = None
    phase_two_at: Optional[float] = None
    failed_at: Optional[float] = None
    failure_reason: Optional[str] = None
    #: For get operations: block ids whose proofs are still outstanding.
    awaiting_blocks: set[BlockId] = field(default_factory=set)
    #: Free-form details (key, value digest, number of entries, ...).
    details: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived measurements
    # ------------------------------------------------------------------
    @property
    def phase_one_latency(self) -> Optional[float]:
        if self.phase_one_at is None:
            return None
        return self.phase_one_at - self.issued_at

    @property
    def phase_two_latency(self) -> Optional[float]:
        if self.phase_two_at is None:
            return None
        return self.phase_two_at - self.issued_at

    @property
    def is_write(self) -> bool:
        return self.kind in (OperationKind.ADD, OperationKind.PUT)


class CommitTracker:
    """Registry of a single client's operations and their commit progress."""

    def __init__(self) -> None:
        self._records: dict[OperationId, OperationRecord] = {}
        self._by_block: dict[BlockId, set[OperationId]] = {}
        #: Optional hook ``f(record, phase)`` invoked on every phase change;
        #: used by closed-loop workload drivers to issue the next operation.
        self.on_phase_change = None

    def _notify(self, record: OperationRecord, phase: CommitPhase) -> None:
        if self.on_phase_change is not None:
            self.on_phase_change(record, phase)

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(
        self, operation_id: OperationId, kind: OperationKind, issued_at: float, **details
    ) -> OperationRecord:
        if operation_id in self._records:
            raise ProtocolError(f"operation {operation_id} already registered")
        record = OperationRecord(
            operation_id=operation_id,
            kind=kind,
            issued_at=issued_at,
            details=dict(details),
        )
        self._records[operation_id] = record
        return record

    def get(self, operation_id: OperationId) -> OperationRecord:
        try:
            return self._records[operation_id]
        except KeyError as exc:
            raise ProtocolError(f"unknown operation {operation_id}") from exc

    def __contains__(self, operation_id: OperationId) -> bool:
        return operation_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> tuple[OperationRecord, ...]:
        return tuple(self._records.values())

    # ------------------------------------------------------------------
    # Phase transitions
    # ------------------------------------------------------------------
    def _index_block(self, operation_id: OperationId, block_id: BlockId) -> None:
        self._by_block.setdefault(block_id, set()).add(operation_id)

    def mark_phase_one(
        self,
        operation_id: OperationId,
        at: float,
        block_id: Optional[BlockId] = None,
        receipt: Optional[PhaseOneReceipt] = None,
    ) -> OperationRecord:
        record = self.get(operation_id)
        if record.phase is CommitPhase.FAILED:
            return record
        record.phase_one_at = at if record.phase_one_at is None else record.phase_one_at
        if record.phase is CommitPhase.PENDING:
            record.phase = CommitPhase.PHASE_ONE
        if block_id is not None:
            record.block_id = block_id
            self._index_block(operation_id, block_id)
        if receipt is not None:
            record.receipt = receipt
        self._notify(record, CommitPhase.PHASE_ONE)
        return record

    def mark_phase_two(
        self,
        operation_id: OperationId,
        at: float,
        proof: Optional[BlockProof] = None,
    ) -> OperationRecord:
        record = self.get(operation_id)
        if record.phase is CommitPhase.FAILED:
            return record
        if record.phase_one_at is None:
            # Phase II implies Phase I (e.g. a read answered with a proof).
            record.phase_one_at = at
        record.phase_two_at = at if record.phase_two_at is None else record.phase_two_at
        record.phase = CommitPhase.PHASE_TWO
        if proof is not None:
            record.proof = proof
        self._notify(record, CommitPhase.PHASE_TWO)
        return record

    def mark_failed(
        self, operation_id: OperationId, at: float, reason: str
    ) -> OperationRecord:
        record = self.get(operation_id)
        if record.phase is CommitPhase.PHASE_TWO:
            # A Phase II commit is final (Definition 2); it cannot fail later.
            return record
        record.phase = CommitPhase.FAILED
        record.failed_at = at
        record.failure_reason = reason
        self._notify(record, CommitPhase.FAILED)
        return record

    # ------------------------------------------------------------------
    # Block-indexed access (used when block proofs arrive)
    # ------------------------------------------------------------------
    def operations_waiting_on_block(self, block_id: BlockId) -> tuple[OperationRecord, ...]:
        op_ids = self._by_block.get(block_id, set())
        return tuple(
            self._records[op_id]
            for op_id in op_ids
            if self._records[op_id].phase is not CommitPhase.PHASE_TWO
        )

    def watch_block(self, operation_id: OperationId, block_id: BlockId) -> None:
        """Associate an operation with a block whose proof it is waiting for."""

        record = self.get(operation_id)
        record.awaiting_blocks.add(block_id)
        self._index_block(operation_id, block_id)

    def resolve_block(self, operation_id: OperationId, block_id: BlockId) -> bool:
        """Mark one awaited block as certified; returns True if none remain."""

        record = self.get(operation_id)
        record.awaiting_blocks.discard(block_id)
        return not record.awaiting_blocks

    # ------------------------------------------------------------------
    # Aggregates for the harness
    # ------------------------------------------------------------------
    def count_in_phase(self, phase: CommitPhase) -> int:
        return sum(1 for record in self._records.values() if record.phase is phase)

    def completed_operations(self) -> tuple[OperationRecord, ...]:
        return tuple(
            record
            for record in self._records.values()
            if record.phase in (CommitPhase.PHASE_ONE, CommitPhase.PHASE_TWO)
        )

    def pending_operations(self) -> tuple[OperationRecord, ...]:
        return tuple(
            record
            for record in self._records.values()
            if record.phase is CommitPhase.PENDING
        )

    def phase_one_latencies(self) -> list[float]:
        return [
            record.phase_one_latency
            for record in self._records.values()
            if record.phase_one_latency is not None
        ]

    def phase_two_latencies(self) -> list[float]:
        return [
            record.phase_two_latency
            for record in self._records.values()
            if record.phase_two_latency is not None
        ]

    @staticmethod
    def merge_latencies(trackers: Iterable["CommitTracker"], phase_two: bool = False) -> list[float]:
        """Pool latencies from several clients' trackers."""

        pooled: list[float] = []
        for tracker in trackers:
            if phase_two:
                pooled.extend(tracker.phase_two_latencies())
            else:
                pooled.extend(tracker.phase_one_latencies())
        return pooled
