"""The cloud's parallel batch-certify engine.

Under a pipelined edge (``certify_pipeline_depth > 1``) the cloud sees
*windows* of :class:`~repro.messages.log_messages.CertifyBatchRequest`\\ s —
several batches outstanding at once, from one edge or from many independent
shards.  This engine performs the two crypto-bound phases of certifying such
a window:

* **Verify** — the window's request signatures are checked together.
  Requests from the same edge collapse into one same-signer Schnorr batch
  verification (~2 exponentiations for the whole group, see
  :meth:`~repro.crypto.signatures.KeyRegistry.verify_many`); HMAC windows
  verify individually (a MAC is already cheap).
* **Sign** — one :class:`~repro.log.proofs.BatchCertificate` per accepted
  batch.  With ``workers > 1`` the signing jobs fan out across a
  ``fork``-based process pool: the 2048-bit modular exponentiation behind a
  Schnorr signature holds the GIL, so threads cannot parallelize it —
  processes can.  ``workers == 1`` (the default, and what the deterministic
  simulation uses) signs inline.

What the engine deliberately does **not** do is conflict ordering: deciding
whether a digest conflicts with an already-certified one must observe the
cloud's digest map in per-shard arrival order.  The caller
(:meth:`~repro.nodes.cloud.CloudNode.certify_batch_window`) runs that serial
phase between the two crypto phases.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..common.identifiers import NodeId
from ..crypto.signatures import KeyPair, KeyRegistry, get_scheme
from ..log.proofs import (
    CERTIFY_BATCH_CONTEXT,
    BatchCertificate,
    build_certify_batch_tree,
)
from ..crypto.signatures import BatchRootStatement

#: One certificate-issuance job: (edge, ordered (block id, digest) pairs,
#: certification timestamp).
CertifyJob = "tuple[NodeId, tuple[tuple[int, str], ...], float]"


def _issue_certificate_job(
    scheme_name: str,
    cloud: NodeId,
    private_key: bytes,
    public_key: bytes,
    edge: NodeId,
    blocks: tuple,
    now: float,
) -> BatchCertificate:
    """Build the batch tree and sign its root (runs in a pool worker).

    Top-level (picklable) on purpose; receives raw key material instead of a
    registry so the worker process needs no shared state beyond the import.
    """

    scheme = get_scheme(scheme_name)
    keypair = KeyPair(
        owner=cloud, scheme=scheme_name, private_key=private_key, public_key=public_key
    )
    tree = build_certify_batch_tree(blocks)
    statement = BatchRootStatement(
        signer=cloud,
        context=CERTIFY_BATCH_CONTEXT,
        root=tree.root,
        count=len(blocks),
        issued_at=now,
        about=edge,
    )
    return BatchCertificate(statement=statement, signature=scheme.sign(keypair, statement))


class ParallelCertifyEngine:
    """Crypto engine for windows of certify-batch requests (see module doc)."""

    def __init__(
        self, registry: KeyRegistry, cloud: NodeId, workers: int = 1
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.registry = registry
        self.cloud = cloud
        self.workers = workers
        self._pool: Optional[Any] = None

    # ------------------------------------------------------------------
    # Phase A: window signature verification
    # ------------------------------------------------------------------
    def verify_requests(self, requests: Sequence[Any]) -> list[bool]:
        """Verdicts (input order) for a window of CertifyBatchRequests.

        Same-signer groups are batch-verified; the caller still owns the
        transport-level check that each request's claimed edge matches the
        actual sender.
        """

        if not requests:
            return []
        return self.registry.verify_many(
            [(request.signature, request.statement) for request in requests]
        )

    # ------------------------------------------------------------------
    # Phase C: certificate issuance
    # ------------------------------------------------------------------
    def issue_certificates(self, jobs: Sequence[tuple]) -> list[BatchCertificate]:
        """One signed :class:`BatchCertificate` per ``(edge, blocks, now)`` job.

        Jobs are independent (one per accepted batch), so with
        ``workers > 1`` they fan out across the process pool; results come
        back in job order either way.
        """

        if not jobs:
            return []
        if self.workers <= 1 or len(jobs) <= 1:
            return [self._issue_inline(edge, blocks, now) for edge, blocks, now in jobs]
        pool = self._ensure_pool()
        if pool is None:
            return [self._issue_inline(edge, blocks, now) for edge, blocks, now in jobs]
        keypair = self.registry.register(self.cloud)
        return pool.starmap(
            _issue_certificate_job,
            [
                (
                    self.registry.scheme_name,
                    self.cloud,
                    keypair.private_key,
                    keypair.public_key,
                    edge,
                    tuple(blocks),
                    now,
                )
                for edge, blocks, now in jobs
            ],
        )

    def _issue_inline(
        self, edge: NodeId, blocks: tuple, now: float
    ) -> BatchCertificate:
        keypair = self.registry.register(self.cloud)
        return _issue_certificate_job(
            self.registry.scheme_name,
            self.cloud,
            keypair.private_key,
            keypair.public_key,
            edge,
            tuple(blocks),
            now,
        )

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Optional[Any]:
        if self._pool is not None:
            return self._pool
        try:
            import multiprocessing

            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(processes=self.workers)
        except (ImportError, OSError, ValueError):
            # No fork on this platform (or process creation refused): fall
            # back to inline signing — correctness never depends on the pool.
            self.workers = 1
            self._pool = None
        return self._pool

    def close(self) -> None:
        """Tear down the worker pool (idempotent)."""

        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
