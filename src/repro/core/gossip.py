"""Signed gossip from the cloud node (omission-attack mitigation).

The cloud periodically signs ``(edge, certified log size, timestamp)``
statements and propagates them to clients (Section IV-E).  A client holding
such gossip knows that every block id below the certified log size exists,
so an edge node denying one of those blocks can be disputed.  The window of
vulnerability for fresh blocks equals the gossip interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..common.identifiers import NodeId
from ..crypto.signatures import KeyRegistry
from ..messages.log_messages import GossipMessage, GossipStatement


def build_gossip(
    registry: KeyRegistry,
    cloud: NodeId,
    edge: NodeId,
    certified_log_size: int,
    timestamp: float,
) -> GossipMessage:
    """Create a cloud-signed gossip message about one edge node's log."""

    statement = GossipStatement(
        cloud=cloud,
        edge=edge,
        certified_log_size=certified_log_size,
        timestamp=timestamp,
    )
    return GossipMessage(statement=statement, signature=registry.sign(cloud, statement))


def verify_gossip(
    registry: KeyRegistry, message: GossipMessage, cloud: Optional[NodeId] = None
) -> bool:
    """Verify the cloud's signature on a gossip message."""

    if cloud is not None and message.signature.signer != cloud:
        return False
    return registry.verify(message.signature, message.statement)


@dataclass
class GossipView:
    """A client's latest view of the certified log size of its edge node."""

    edge: NodeId
    certified_log_size: int = 0
    as_of: float = 0.0

    def update(self, message: GossipMessage) -> bool:
        """Apply newer gossip; returns whether the view advanced."""

        statement = message.statement
        if statement.edge != self.edge:
            return False
        if statement.timestamp < self.as_of:
            return False
        advanced = statement.certified_log_size > self.certified_log_size
        self.certified_log_size = max(
            self.certified_log_size, statement.certified_log_size
        )
        self.as_of = statement.timestamp
        return advanced

    def block_should_exist(self, block_id: int) -> bool:
        """Whether gossip proves the block id has been certified already."""

        return block_id < self.certified_log_size


class GossipSchedule:
    """Helper the cloud uses to periodically emit gossip for each edge."""

    def __init__(
        self,
        interval_s: float,
        emit: Callable[[], None],
        schedule_periodic: Callable[[float, Callable[[], None], str], Callable[[], None]],
    ) -> None:
        self._interval_s = interval_s
        self._stop: Optional[Callable[[], None]] = None
        self._emit = emit
        self._schedule_periodic = schedule_periodic

    @property
    def interval_s(self) -> float:
        return self._interval_s

    def start(self) -> None:
        if self._stop is None:
            self._stop = self._schedule_periodic(
                self._interval_s, self._emit, "cloud-gossip"
            )

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None
