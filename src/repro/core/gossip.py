"""Signed gossip from the cloud node (omission-attack mitigation).

The cloud periodically signs ``(edge, certified log size, timestamp)``
statements and propagates them to clients (Section IV-E).  A client holding
such gossip knows that every block id below the certified log size exists,
so an edge node denying one of those blocks can be disputed.  The window of
vulnerability for fresh blocks equals the gossip interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Union

from ..common.identifiers import NodeId
from ..crypto.signatures import KeyRegistry
from ..messages.log_messages import (
    GossipBatchMessage,
    GossipBatchStatement,
    GossipEntry,
    GossipMessage,
    GossipStatement,
)

#: Either gossip form: the per-edge message or the batched multi-edge one.
AnyGossipMessage = Union[GossipMessage, GossipBatchMessage]


def build_gossip(
    registry: KeyRegistry,
    cloud: NodeId,
    edge: NodeId,
    certified_log_size: int,
    timestamp: float,
) -> GossipMessage:
    """Create a cloud-signed gossip message about one edge node's log."""

    statement = GossipStatement(
        cloud=cloud,
        edge=edge,
        certified_log_size=certified_log_size,
        timestamp=timestamp,
    )
    return GossipMessage(statement=statement, signature=registry.sign(cloud, statement))


def build_gossip_batch(
    registry: KeyRegistry,
    cloud: NodeId,
    certified_log_sizes: Mapping[NodeId, int],
    timestamp: float,
) -> GossipBatchMessage:
    """Create one cloud-signed gossip message covering every edge at once.

    One signature per gossip interval instead of one per edge; entries are
    ordered by edge id so the signed bytes are deterministic regardless of
    the cloud's internal bookkeeping order.
    """

    entries = tuple(
        GossipEntry(edge=edge, certified_log_size=certified_log_sizes[edge])
        for edge in sorted(certified_log_sizes)
    )
    statement = GossipBatchStatement(cloud=cloud, timestamp=timestamp, entries=entries)
    return GossipBatchMessage(
        statement=statement, signature=registry.sign(cloud, statement)
    )


def verify_gossip(
    registry: KeyRegistry,
    message: AnyGossipMessage,
    cloud: Optional[NodeId] = None,
) -> bool:
    """Verify the cloud's signature on either gossip form."""

    if cloud is not None and message.signature.signer != cloud:
        return False
    return registry.verify(message.signature, message.statement)


@dataclass
class GossipView:
    """A client's latest view of the certified log size of its edge node."""

    edge: NodeId
    certified_log_size: int = 0
    as_of: float = 0.0

    def update(self, message: AnyGossipMessage) -> bool:
        """Apply newer gossip; returns whether the view advanced.

        Accepts both the per-edge and the batched multi-edge form.  A
        message that does not mention this view's edge — the single-edge
        form for a different edge, or a batch without an entry for it — is
        ignored entirely: it returns ``False`` and leaves both the size and
        ``as_of`` untouched, even when its timestamp is strictly newer.  A
        message at exactly ``as_of`` is applied (sizes are monotone, so an
        equal-timestamp replay can only confirm or advance the view).
        """

        statement = message.statement
        if isinstance(statement, GossipBatchStatement):
            size = statement.size_for(self.edge)
            if size is None:
                return False
        else:
            if statement.edge != self.edge:
                return False
            size = statement.certified_log_size
        if statement.timestamp < self.as_of:
            return False
        advanced = size > self.certified_log_size
        self.certified_log_size = max(self.certified_log_size, size)
        self.as_of = statement.timestamp
        return advanced

    def block_should_exist(self, block_id: int) -> bool:
        """Whether gossip proves the block id has been certified already."""

        return block_id < self.certified_log_size


class GossipSchedule:
    """Helper the cloud uses to periodically emit gossip for each edge."""

    def __init__(
        self,
        interval_s: float,
        emit: Callable[[], None],
        schedule_periodic: Callable[[float, Callable[[], None], str], Callable[[], None]],
    ) -> None:
        self._interval_s = interval_s
        self._stop: Optional[Callable[[], None]] = None
        self._emit = emit
        self._schedule_periodic = schedule_periodic

    @property
    def interval_s(self) -> float:
        return self._interval_s

    def start(self) -> None:
        if self._stop is None:
            self._stop = self._schedule_periodic(
                self._interval_s, self._emit, "cloud-gossip"
            )

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None
