"""Disputes and punishment: the enforcement half of lazy certification.

Lazy certification is only a deterrent if lying edge nodes are reliably
detected and punished (Section II-D, assumptions 1-3, and Section IV-E
"Disputes").  The cloud node judges disputes with the evidence clients
collected (signed Phase I receipts and signed read responses) against the
digests it certified, and records punishments in a ledger that the
application owner would act upon (monetary/legal penalties are outside the
system; the ledger records the proof).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..common.identifiers import BlockId, NodeId
from ..crypto.signatures import KeyRegistry
from ..messages.log_messages import DisputeRequest
from ..messages.shard_messages import ShardDispute


@dataclass(frozen=True)
class PunishmentRecord:
    """One proven malicious act."""

    edge: NodeId
    block_id: Optional[BlockId]
    reason: str
    reported_by: Optional[NodeId]
    recorded_at: float
    evidence: str = ""


class PunishmentLedger:
    """Append-only record of punished edge nodes kept by the cloud."""

    def __init__(self, punishment_score: float = 1000.0) -> None:
        self._records: list[PunishmentRecord] = []
        self._banned: set[NodeId] = set()
        self._punishment_score = punishment_score

    def punish(
        self,
        edge: NodeId,
        reason: str,
        recorded_at: float,
        block_id: Optional[BlockId] = None,
        reported_by: Optional[NodeId] = None,
        evidence: str = "",
    ) -> PunishmentRecord:
        record = PunishmentRecord(
            edge=edge,
            block_id=block_id,
            reason=reason,
            reported_by=reported_by,
            recorded_at=recorded_at,
            evidence=evidence,
        )
        self._records.append(record)
        self._banned.add(edge)
        return record

    def is_punished(self, edge: NodeId) -> bool:
        """Punished nodes are banned from re-entering (model assumption 2)."""

        return edge in self._banned

    def records(self) -> tuple[PunishmentRecord, ...]:
        return tuple(self._records)

    def records_for(self, edge: NodeId) -> tuple[PunishmentRecord, ...]:
        return tuple(record for record in self._records if record.edge == edge)

    def total_score(self, edge: NodeId) -> float:
        return self._punishment_score * len(self.records_for(edge))

    def __len__(self) -> int:
        return len(self._records)


@dataclass(frozen=True)
class DisputeJudgement:
    """Outcome of evaluating a dispute."""

    edge_punished: bool
    reason: str
    certified_digest: Optional[str] = None


def judge_dispute(
    dispute: DisputeRequest,
    certified_digest: Optional[str],
    registry: KeyRegistry,
    certified_log_size: int,
) -> DisputeJudgement:
    """Evaluate a client's dispute against the cloud's certified state.

    The cases mirror Section IV-E:

    * ``missing-proof`` with a Phase I receipt: the edge promised a digest
      for the block; if the certified digest differs (or the block was never
      certified) the edge lied about Phase I commitment.
    * ``read-mismatch`` with a signed read response: the edge returned block
      content whose digest differs from the certified one.
    * ``omission``: the edge claimed a block is unavailable although the
      cloud certified it (detected through gossip about the log size).
    """

    kind = dispute.kind

    if kind == "missing-proof":
        receipt = dispute.receipt
        if receipt is None:
            return DisputeJudgement(False, "missing-proof dispute without a receipt")
        if not receipt.verify(registry):
            return DisputeJudgement(False, "receipt signature invalid; dispute rejected")
        if certified_digest is None:
            return DisputeJudgement(
                True,
                "edge issued a Phase I receipt but never certified the block",
                None,
            )
        if certified_digest != receipt.block_digest:
            return DisputeJudgement(
                True,
                "edge certified a different digest than it promised the client",
                certified_digest,
            )
        return DisputeJudgement(
            False, "certified digest matches the receipt; no misbehaviour", certified_digest
        )

    if kind == "read-mismatch":
        statement = dispute.read_statement
        signature = dispute.read_signature
        if statement is None or signature is None:
            return DisputeJudgement(False, "read-mismatch dispute without evidence")
        if signature.signer != dispute.edge or not registry.verify(signature, statement):
            return DisputeJudgement(False, "read response signature invalid")
        if certified_digest is None:
            return DisputeJudgement(
                True,
                "edge served a read for a block it never certified",
                None,
            )
        if statement.block_digest != certified_digest:
            return DisputeJudgement(
                True,
                "edge served block content that differs from the certified digest",
                certified_digest,
            )
        return DisputeJudgement(
            False, "served content matches the certified digest", certified_digest
        )

    if kind == "omission":
        statement = dispute.read_statement
        signature = dispute.read_signature
        evidence_ok = (
            statement is not None
            and signature is not None
            and signature.signer == dispute.edge
            and registry.verify(signature, statement)
            and not statement.found
        )
        if not evidence_ok:
            return DisputeJudgement(False, "omission dispute without a signed denial")
        if certified_digest is not None or dispute.block_id < certified_log_size:
            return DisputeJudgement(
                True,
                "edge denied having a block the cloud has certified",
                certified_digest,
            )
        return DisputeJudgement(
            False, "block was indeed never certified; denial was truthful", None
        )

    return DisputeJudgement(False, f"unknown dispute kind {kind!r}")


@dataclass(frozen=True)
class ShardDisputeJudgement:
    """Outcome of evaluating a shard dispute."""

    punished: bool
    reason: str


def judge_shard_dispute(
    dispute: ShardDispute,
    registry: KeyRegistry,
    owner_at: Callable[[int, float], Optional[NodeId]],
    granted_state_digest: Optional[str],
    shard_of: Optional[Callable[[str], int]] = None,
) -> ShardDisputeJudgement:
    """Evaluate a shard dispute against the cloud's authoritative state.

    * ``handoff-digest-mismatch``: the reporter (destination edge) presents
      the source-signed transfer statement.  The source is convicted when
      the state digest it *signed* differs from ``granted_state_digest`` —
      the digest the cloud countersigned for that handoff.  A transfer the
      source never signed (or signed consistently) convicts nobody: the
      destination simply refuses to install.
    * ``stale-owner-serve``: the reporter (a client) presents an edge-signed
      get-response statement.  The accused is convicted when the ownership
      history shows it no longer owned the key's shard at the statement's
      ``issued_at`` — a signed proof it kept serving a shard it had handed
      off.
    """

    kind = dispute.kind

    if kind == "handoff-digest-mismatch":
        statement = dispute.transfer_statement
        signature = dispute.transfer_signature
        if statement is None or signature is None:
            return ShardDisputeJudgement(False, "handoff dispute without evidence")
        if signature.signer != dispute.accused or not registry.verify(
            signature, statement
        ):
            return ShardDisputeJudgement(False, "transfer statement signature invalid")
        if statement.source != dispute.accused or statement.shard_id != dispute.shard_id:
            return ShardDisputeJudgement(
                False, "transfer statement does not concern the accused shard"
            )
        if granted_state_digest is None:
            return ShardDisputeJudgement(
                False, "no countersigned handoff on record for this shard"
            )
        if statement.state_digest != granted_state_digest:
            return ShardDisputeJudgement(
                True,
                "source signed a transfer whose state digest differs from the "
                "countersigned handoff certificate",
            )
        return ShardDisputeJudgement(
            False, "signed transfer matches the certified state digest"
        )

    if kind == "stale-owner-serve":
        statement = dispute.serve_statement
        signature = dispute.serve_signature
        if statement is None or signature is None:
            return ShardDisputeJudgement(False, "stale-owner dispute without evidence")
        if signature.signer != dispute.accused or not registry.verify(
            signature, statement
        ):
            return ShardDisputeJudgement(False, "serve statement signature invalid")
        if statement.edge != dispute.accused:
            return ShardDisputeJudgement(
                False, "serve statement names a different edge"
            )
        if shard_of is not None and shard_of(statement.key) != dispute.shard_id:
            return ShardDisputeJudgement(
                False, "served key does not belong to the disputed shard"
            )
        owner = owner_at(dispute.shard_id, statement.issued_at)
        if owner is None:
            return ShardDisputeJudgement(False, "shard has no recorded owner")
        if owner != dispute.accused:
            return ShardDisputeJudgement(
                True,
                "edge served a shard it did not own at the statement's issue "
                "time (certified handoff had already moved it)",
            )
        return ShardDisputeJudgement(
            False, "edge owned the shard when it served; no misbehaviour"
        )

    return ShardDisputeJudgement(False, f"unknown shard dispute kind {kind!r}")
