"""Disputes and punishment: the enforcement half of lazy certification.

Lazy certification is only a deterrent if lying edge nodes are reliably
detected and punished (Section II-D, assumptions 1-3, and Section IV-E
"Disputes").  The cloud node judges disputes with the evidence clients
collected (signed Phase I receipts and signed read responses) against the
digests it certified, and records punishments in a ledger that the
application owner would act upon (monetary/legal penalties are outside the
system; the ledger records the proof).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..common.errors import ProofVerificationError
from ..common.identifiers import BlockId, NodeId
from ..crypto.hashing import digest_value
from ..crypto.signatures import KeyRegistry
from ..messages.log_messages import DisputeRequest
from ..messages.shard_messages import ShardDispute
from ..messages.txn_messages import TXN_ABORT, TxnDispute


@dataclass(frozen=True)
class PunishmentRecord:
    """One proven malicious act."""

    edge: NodeId
    block_id: Optional[BlockId]
    reason: str
    reported_by: Optional[NodeId]
    recorded_at: float
    evidence: str = ""


class PunishmentLedger:
    """Append-only record of punished edge nodes kept by the cloud."""

    def __init__(self, punishment_score: float = 1000.0) -> None:
        self._records: list[PunishmentRecord] = []
        self._banned: set[NodeId] = set()
        self._punishment_score = punishment_score

    def punish(
        self,
        edge: NodeId,
        reason: str,
        recorded_at: float,
        block_id: Optional[BlockId] = None,
        reported_by: Optional[NodeId] = None,
        evidence: str = "",
    ) -> PunishmentRecord:
        record = PunishmentRecord(
            edge=edge,
            block_id=block_id,
            reason=reason,
            reported_by=reported_by,
            recorded_at=recorded_at,
            evidence=evidence,
        )
        self._records.append(record)
        self._banned.add(edge)
        return record

    def is_punished(self, edge: NodeId) -> bool:
        """Punished nodes are banned from re-entering (model assumption 2)."""

        return edge in self._banned

    def records(self) -> tuple[PunishmentRecord, ...]:
        return tuple(self._records)

    def records_for(self, edge: NodeId) -> tuple[PunishmentRecord, ...]:
        return tuple(record for record in self._records if record.edge == edge)

    def total_score(self, edge: NodeId) -> float:
        return self._punishment_score * len(self.records_for(edge))

    def __len__(self) -> int:
        return len(self._records)


@dataclass(frozen=True)
class DisputeJudgement:
    """Outcome of evaluating a dispute."""

    edge_punished: bool
    reason: str
    certified_digest: Optional[str] = None


def judge_dispute(
    dispute: DisputeRequest,
    certified_digest: Optional[str],
    registry: KeyRegistry,
    certified_log_size: int,
) -> DisputeJudgement:
    """Evaluate a client's dispute against the cloud's certified state.

    The cases mirror Section IV-E:

    * ``missing-proof`` with a Phase I receipt: the edge promised a digest
      for the block; if the certified digest differs (or the block was never
      certified) the edge lied about Phase I commitment.
    * ``read-mismatch`` with a signed read response: the edge returned block
      content whose digest differs from the certified one.
    * ``omission``: the edge claimed a block is unavailable although the
      cloud certified it (detected through gossip about the log size).
    """

    kind = dispute.kind

    if kind == "missing-proof":
        receipt = dispute.receipt
        if receipt is None:
            return DisputeJudgement(False, "missing-proof dispute without a receipt")
        if not receipt.verify(registry):
            return DisputeJudgement(False, "receipt signature invalid; dispute rejected")
        if certified_digest is None:
            return DisputeJudgement(
                True,
                "edge issued a Phase I receipt but never certified the block",
                None,
            )
        if certified_digest != receipt.block_digest:
            return DisputeJudgement(
                True,
                "edge certified a different digest than it promised the client",
                certified_digest,
            )
        return DisputeJudgement(
            False, "certified digest matches the receipt; no misbehaviour", certified_digest
        )

    if kind == "read-mismatch":
        statement = dispute.read_statement
        signature = dispute.read_signature
        if statement is None or signature is None:
            return DisputeJudgement(False, "read-mismatch dispute without evidence")
        if signature.signer != dispute.edge or not registry.verify(signature, statement):
            return DisputeJudgement(False, "read response signature invalid")
        if certified_digest is None:
            return DisputeJudgement(
                True,
                "edge served a read for a block it never certified",
                None,
            )
        if statement.block_digest != certified_digest:
            return DisputeJudgement(
                True,
                "edge served block content that differs from the certified digest",
                certified_digest,
            )
        return DisputeJudgement(
            False, "served content matches the certified digest", certified_digest
        )

    if kind == "omission":
        statement = dispute.read_statement
        signature = dispute.read_signature
        evidence_ok = (
            statement is not None
            and signature is not None
            and signature.signer == dispute.edge
            and registry.verify(signature, statement)
            and not statement.found
        )
        if not evidence_ok:
            return DisputeJudgement(False, "omission dispute without a signed denial")
        if certified_digest is not None or dispute.block_id < certified_log_size:
            return DisputeJudgement(
                True,
                "edge denied having a block the cloud has certified",
                certified_digest,
            )
        return DisputeJudgement(
            False, "block was indeed never certified; denial was truthful", None
        )

    return DisputeJudgement(False, f"unknown dispute kind {kind!r}")


@dataclass(frozen=True)
class ShardDisputeJudgement:
    """Outcome of evaluating a shard dispute."""

    punished: bool
    reason: str


def judge_shard_dispute(
    dispute: ShardDispute,
    registry: KeyRegistry,
    owner_at: Callable[[int, float], Optional[NodeId]],
    granted_state_digest: Optional[str],
    shard_of: Optional[Callable[[str], int]] = None,
) -> ShardDisputeJudgement:
    """Evaluate a shard dispute against the cloud's authoritative state.

    * ``handoff-digest-mismatch``: the reporter (destination edge) presents
      the source-signed transfer statement.  The source is convicted when
      the state digest it *signed* differs from ``granted_state_digest`` —
      the digest the cloud countersigned for that handoff.  A transfer the
      source never signed (or signed consistently) convicts nobody: the
      destination simply refuses to install.
    * ``stale-owner-serve``: the reporter (a client) presents an edge-signed
      get-response statement.  The accused is convicted when the ownership
      history shows it no longer owned the key's shard at the statement's
      ``issued_at`` — a signed proof it kept serving a shard it had handed
      off.
    """

    kind = dispute.kind

    if kind == "handoff-digest-mismatch":
        statement = dispute.transfer_statement
        signature = dispute.transfer_signature
        if statement is None or signature is None:
            return ShardDisputeJudgement(False, "handoff dispute without evidence")
        if signature.signer != dispute.accused or not registry.verify(
            signature, statement
        ):
            return ShardDisputeJudgement(False, "transfer statement signature invalid")
        if statement.source != dispute.accused or statement.shard_id != dispute.shard_id:
            return ShardDisputeJudgement(
                False, "transfer statement does not concern the accused shard"
            )
        if granted_state_digest is None:
            return ShardDisputeJudgement(
                False, "no countersigned handoff on record for this shard"
            )
        if statement.state_digest != granted_state_digest:
            return ShardDisputeJudgement(
                True,
                "source signed a transfer whose state digest differs from the "
                "countersigned handoff certificate",
            )
        return ShardDisputeJudgement(
            False, "signed transfer matches the certified state digest"
        )

    if kind == "stale-owner-serve":
        statement = dispute.serve_statement
        signature = dispute.serve_signature
        if statement is None or signature is None:
            return ShardDisputeJudgement(False, "stale-owner dispute without evidence")
        if signature.signer != dispute.accused or not registry.verify(
            signature, statement
        ):
            return ShardDisputeJudgement(False, "serve statement signature invalid")
        if statement.edge != dispute.accused:
            return ShardDisputeJudgement(
                False, "serve statement names a different edge"
            )
        if shard_of is not None and shard_of(statement.key) != dispute.shard_id:
            return ShardDisputeJudgement(
                False, "served key does not belong to the disputed shard"
            )
        owner = owner_at(dispute.shard_id, statement.issued_at)
        if owner is None:
            return ShardDisputeJudgement(False, "shard has no recorded owner")
        if owner != dispute.accused:
            return ShardDisputeJudgement(
                True,
                "edge served a shard it did not own at the statement's issue "
                "time (certified handoff had already moved it)",
            )
        return ShardDisputeJudgement(
            False, "edge owned the shard when it served; no misbehaviour"
        )

    return ShardDisputeJudgement(False, f"unknown shard dispute kind {kind!r}")


def judge_stale_replica_dispute(
    dispute: ShardDispute,
    registry: KeyRegistry,
    owner_at: Callable[[int, float], Optional[NodeId]],
    cloud: Optional[NodeId] = None,
    shard_of: Optional[Callable[[str], int]] = None,
) -> ShardDisputeJudgement:
    """Judge a ``stale-replica-serve`` dispute from signed artifacts alone.

    Generalizes the stale-owner judge to replica reads: a read replica's
    serving authority is the cloud-signed lease it attaches to every
    response, so the evidence pair (replica-signed get-response statement,
    attached lease) is self-contained.  The accused is convicted when it
    provably served while it was not the shard's writer *and* the lease it
    presented (possibly none) did not cover the statement's ``issued_at``.
    An honest replica never signs a response without a covering lease in
    hand — it parks or redirects once its lease lapses — so no honest node
    can be convicted, even across lease-renewal races: whatever lease it
    actually held when signing is exactly what the client received and
    forwarded.
    """

    if dispute.kind != "stale-replica-serve":
        return ShardDisputeJudgement(
            False, f"not a stale-replica dispute: {dispute.kind!r}"
        )
    statement = dispute.serve_statement
    signature = dispute.serve_signature
    if statement is None or signature is None:
        return ShardDisputeJudgement(False, "stale-replica dispute without evidence")
    if signature.signer != dispute.accused or not registry.verify(
        signature, statement
    ):
        return ShardDisputeJudgement(False, "serve statement signature invalid")
    if statement.edge != dispute.accused:
        return ShardDisputeJudgement(False, "serve statement names a different edge")
    if shard_of is not None and shard_of(statement.key) != dispute.shard_id:
        return ShardDisputeJudgement(
            False, "served key does not belong to the disputed shard"
        )
    if owner_at(dispute.shard_id, statement.issued_at) == dispute.accused:
        return ShardDisputeJudgement(
            False, "accused was the shard's writer when it served; not a replica"
        )
    lease = dispute.lease
    if lease is not None:
        lease_valid = (
            lease.verify(registry)
            and (cloud is None or lease.statement.cloud == cloud)
            and lease.replica == dispute.accused
            and lease.shard_id == dispute.shard_id
        )
        if lease_valid and statement.issued_at <= lease.expires_at:
            return ShardDisputeJudgement(
                False, "attached lease covers the response; no misbehaviour"
            )
    return ShardDisputeJudgement(
        True,
        "replica signed a read response without a covering serving lease "
        "(served past its lease's certified watermark)",
    )


@dataclass(frozen=True)
class TxnDisputeJudgement:
    """Outcome of evaluating a cross-shard transaction dispute."""

    punished: bool
    reason: str


def judge_txn_dispute(
    dispute: TxnDispute,
    registry: KeyRegistry,
    cloud: Optional[NodeId] = None,
) -> TxnDisputeJudgement:
    """Evaluate a 2PC dispute from its signed artifacts alone.

    Every case is self-contained — the evidence is a set of signed
    statements that contradict each other, so the judge needs no trust in
    the reporter and no server-side transaction state:

    * ``prepare-receipt-mismatch``: the edge-signed receipt binds (via
      ``prepare_digest``) to the presented coordinator-signed prepare
      statement yet lists a different write set — the edge signed a lie
      about what it staged.  A receipt whose digest does not match the
      presented prepare convicts nobody: a coordinator can mint arbitrary
      self-signed prepares after the fact, so only the digest-bound pair
      is evidence.
    * ``staged-abort-serve``: the edge-signed receipt stages a write, the
      coordinator-signed decision aborts the transaction, and the
      edge-signed get response serves exactly that ``(key, value digest)``
      after the abort — the edge kept state the abort ordered discarded.
      Conviction is strictly *proof-bound*: the judge verifies the get
      proof itself and places the served record's sequence against the
      coordinator-signed ``staged_floor`` watermark (digest-bound through
      the receipt), so neither a backdated ``issued_at`` nor an inflated
      receipt position shields a lying edge, a record proven below the
      floor (an earlier legitimate write of the same bytes) acquits, and
      a dispute without the proof is simply unverifiable.  Residual, by
      design: matching stays at digest level, so a *malicious coordinator*
      that re-puts the exact aborted ``(key, value)`` after the abort and
      then disputes can still get a conviction — at the price of leaving
      its own signed re-put entry in the edge's certified log as standing
      counter-evidence; binding record versions (a production hardening)
      would close this, and the simulated workloads never produce it.
    * ``coordinator-equivocation``: two coordinator-signed decisions for
      one transaction disagree — a forked commit/abort, convicting the
      coordinator itself.
    """

    kind = dispute.kind
    txn_id = dispute.txn_id

    if kind == "prepare-receipt-mismatch":
        statement = dispute.prepare_statement
        signature = dispute.prepare_signature
        receipt = dispute.receipt
        if statement is None or signature is None or receipt is None:
            return TxnDisputeJudgement(False, "receipt dispute without evidence")
        if signature.signer != txn_id.coordinator or not registry.verify(
            signature, statement
        ):
            return TxnDisputeJudgement(False, "prepare statement signature invalid")
        if statement.txn_id != txn_id or receipt.txn_id != txn_id:
            return TxnDisputeJudgement(
                False, "evidence concerns a different transaction"
            )
        if receipt.edge != dispute.accused or not receipt.verify(registry):
            return TxnDisputeJudgement(False, "prepare receipt signature invalid")
        if receipt.statement.shard_id != statement.shard_id:
            return TxnDisputeJudgement(False, "receipt concerns a different shard")
        if receipt.statement.prepare_digest != digest_value(statement):
            return TxnDisputeJudgement(
                False,
                "receipt does not answer the presented prepare statement "
                "(digest mismatch — the reporter may be the equivocator)",
            )
        if receipt.statement.writes != statement.writes:
            return TxnDisputeJudgement(
                True,
                "edge signed a prepare receipt whose write set differs from "
                "the coordinator-signed prepare statement",
            )
        return TxnDisputeJudgement(
            False, "receipt matches the signed prepare; no misbehaviour"
        )

    if kind == "staged-abort-serve":
        receipt = dispute.receipt
        decision = dispute.decision
        statement = dispute.serve_statement
        signature = dispute.serve_signature
        if receipt is None or decision is None or statement is None or signature is None:
            return TxnDisputeJudgement(False, "staged-serve dispute without evidence")
        if receipt.edge != dispute.accused or not receipt.verify(registry):
            return TxnDisputeJudgement(False, "prepare receipt signature invalid")
        if receipt.txn_id != txn_id or decision.txn_id != txn_id:
            return TxnDisputeJudgement(
                False, "evidence concerns a different transaction"
            )
        if not decision.verify(registry):
            return TxnDisputeJudgement(False, "decision signature invalid")
        if decision.decision != TXN_ABORT:
            return TxnDisputeJudgement(
                False, "decision is not an abort; staged writes were committed"
            )
        if signature.signer != dispute.accused or not registry.verify(
            signature, statement
        ):
            return TxnDisputeJudgement(False, "serve statement signature invalid")
        if statement.edge != dispute.accused:
            return TxnDisputeJudgement(False, "serve statement names a different edge")
        if not statement.found or statement.value_digest is None:
            return TxnDisputeJudgement(False, "serve statement returned no value")
        staged = any(
            write.key == statement.key
            and write.value_digest == statement.value_digest
            for write in receipt.statement.writes
        )
        if not staged:
            return TxnDisputeJudgement(
                False, "served value is not one of the transaction's staged writes"
            )
        prepare = dispute.prepare_statement
        prepare_signature = dispute.prepare_signature
        if dispute.serve_proof is None or prepare is None:
            # Conviction is strictly proof-bound: without the serve proof
            # and the coordinator-signed prepare there is no
            # accused-independent way to place the served record relative
            # to the staging watermark — the edge-claimed ``issued_at`` is
            # not evidence.
            return TxnDisputeJudgement(
                False,
                "staged-serve dispute is unverifiable without the serve "
                "proof and the signed prepare statement",
            )
        from ..lsmerkle.codec import SEQUENCE_STRIDE
        from ..lsmerkle.read_proof import verify_get_proof

        # The staging watermark must be the *coordinator-signed* floor,
        # digest-bound to the receipt: the accused edge cannot inflate it
        # to shield itself (its receipt attests it accepted exactly this
        # prepare), and an honest edge rejected any floor beyond its real
        # log position at staging time.
        if prepare_signature is None or prepare_signature.signer != (
            txn_id.coordinator
        ) or not registry.verify(prepare_signature, prepare):
            return TxnDisputeJudgement(False, "prepare statement signature invalid")
        if (
            prepare.txn_id != txn_id
            or receipt.statement.prepare_digest != digest_value(prepare)
        ):
            return TxnDisputeJudgement(
                False, "receipt does not answer the presented prepare statement"
            )
        try:
            verified = verify_get_proof(
                registry=registry,
                cloud=cloud,
                edge=dispute.accused,
                key=statement.key,
                proof=dispute.serve_proof,
            )
        except ProofVerificationError:
            return TxnDisputeJudgement(False, "serve proof failed verification")
        record = verified.record
        if record is None or digest_value(record.value) != statement.value_digest:
            return TxnDisputeJudgement(
                False, "serve proof does not prove the served value"
            )
        if record.sequence < prepare.staged_floor * SEQUENCE_STRIDE:
            return TxnDisputeJudgement(
                False,
                "proven record predates the staged prepare; an earlier "
                "write of the same bytes, not the staged state",
            )
        return TxnDisputeJudgement(
            True,
            "edge serves a staged write its coordinator's signed abort "
            "ordered discarded (proof-bound: the record entered the log "
            "at or after the staged position)",
        )

    if kind == "coordinator-equivocation":
        first = dispute.decision
        second = dispute.second_decision
        if first is None or second is None:
            return TxnDisputeJudgement(False, "equivocation dispute without evidence")
        if dispute.accused != txn_id.coordinator:
            return TxnDisputeJudgement(
                False, "accused is not the transaction's coordinator"
            )
        if first.txn_id != txn_id or second.txn_id != txn_id:
            return TxnDisputeJudgement(
                False, "evidence concerns a different transaction"
            )
        if not first.verify(registry) or not second.verify(registry):
            return TxnDisputeJudgement(False, "decision signature invalid")
        if first.decision != second.decision:
            return TxnDisputeJudgement(
                True,
                "coordinator signed contradictory decisions for one transaction",
            )
        return TxnDisputeJudgement(False, "decisions agree; no equivocation")

    return TxnDisputeJudgement(False, f"unknown transaction dispute kind {kind!r}")
