"""Core WedgeChain machinery: lazy certification, commits, disputes, gossip."""

from .certification import CertificationTask, InFlightBatch, LazyCertifier
from .certify_engine import ParallelCertifyEngine
from .certify_pipeline import EdgeCertifyPipeline, run_certify_pipeline
from .commit import CommitTracker, OperationRecord
from .dispute import DisputeJudgement, PunishmentLedger, PunishmentRecord, judge_dispute
from .gossip import (
    AnyGossipMessage,
    GossipSchedule,
    GossipView,
    build_gossip,
    build_gossip_batch,
    verify_gossip,
)
from .system import SystemStats, WedgeChainSystem

__all__ = [
    "AnyGossipMessage",
    "CertificationTask",
    "CommitTracker",
    "EdgeCertifyPipeline",
    "DisputeJudgement",
    "GossipSchedule",
    "GossipView",
    "InFlightBatch",
    "LazyCertifier",
    "OperationRecord",
    "ParallelCertifyEngine",
    "PunishmentLedger",
    "PunishmentRecord",
    "SystemStats",
    "WedgeChainSystem",
    "build_gossip",
    "build_gossip_batch",
    "judge_dispute",
    "run_certify_pipeline",
    "verify_gossip",
]
