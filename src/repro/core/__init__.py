"""Core WedgeChain machinery: lazy certification, commits, disputes, gossip."""

from .certification import CertificationTask, LazyCertifier
from .commit import CommitTracker, OperationRecord
from .dispute import DisputeJudgement, PunishmentLedger, PunishmentRecord, judge_dispute
from .gossip import GossipSchedule, GossipView, build_gossip, verify_gossip
from .system import SystemStats, WedgeChainSystem

__all__ = [
    "CertificationTask",
    "CommitTracker",
    "DisputeJudgement",
    "GossipSchedule",
    "GossipView",
    "LazyCertifier",
    "OperationRecord",
    "PunishmentLedger",
    "PunishmentRecord",
    "SystemStats",
    "WedgeChainSystem",
    "build_gossip",
    "judge_dispute",
    "verify_gossip",
]
