"""Core WedgeChain machinery: lazy certification, commits, disputes, gossip."""

from .certification import CertificationTask, LazyCertifier
from .commit import CommitTracker, OperationRecord
from .dispute import DisputeJudgement, PunishmentLedger, PunishmentRecord, judge_dispute
from .gossip import (
    AnyGossipMessage,
    GossipSchedule,
    GossipView,
    build_gossip,
    build_gossip_batch,
    verify_gossip,
)
from .system import SystemStats, WedgeChainSystem

__all__ = [
    "AnyGossipMessage",
    "CertificationTask",
    "CommitTracker",
    "DisputeJudgement",
    "GossipSchedule",
    "GossipView",
    "LazyCertifier",
    "OperationRecord",
    "PunishmentLedger",
    "PunishmentRecord",
    "SystemStats",
    "WedgeChainSystem",
    "build_gossip",
    "build_gossip_batch",
    "judge_dispute",
    "verify_gossip",
]
