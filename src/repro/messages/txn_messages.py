"""Messages of the cross-shard transaction protocol (client-coordinated 2PC).

A multi-key write that spans shards cannot ride one ``AppendBatchRequest``:
each shard's owning edge Phase I commits independently, so a client that
needs *atomicity* across partitions runs a two-phase commit over the
certified machinery (``repro.sharding.transactions``):

* **Phase 1 (prepare)** — the coordinating client signs one
  :class:`TxnPrepareStatement` per participant shard and ships it with the
  client-signed put entries.  The owning edge stages the writes (they stay
  invisible to gets and merges) and answers with a signed
  :class:`TxnPrepareReceipt` binding the transaction id, the staged write
  set, the shard's Phase I log position, and an expiry deadline.
* **Phase 2 (decision)** — once every participant's receipt is verified the
  client signs one :class:`TxnDecisionStatement` (commit or abort) and
  broadcasts it.  Each participant atomically applies or discards its
  staged writes and logs a decision record, so lazy certification covers
  the transaction end to end.

Every artifact is signed by the party it binds: prepare statements and
decisions by the coordinator, receipts by the participant edge.  That is
what makes misbehaviour *provable* (see
:func:`repro.core.dispute.judge_txn_dispute`): a receipt that misquotes the
client-signed write set convicts the edge, an edge serving a staged write
after a signed abort convicts the edge, and two contradictory signed
decisions for one transaction convict the coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.identifiers import BlockId, NodeId, OperationId, ShardId
from ..crypto.signatures import KeyRegistry, Signature
from ..log.entry import LogEntry
from ..lsmerkle.read_proof import GetProof
from ..messages.kv_messages import GetResponseStatement

#: The two possible transaction outcomes.
TXN_COMMIT = "commit"
TXN_ABORT = "abort"


@dataclass(frozen=True)
class TxnId:
    """Identifies one cross-shard transaction.

    ``(coordinator, sequence)`` is unique because every client numbers its
    own transactions; embedding the coordinator also pins which client's
    signature certifies the transaction's decisions.
    """

    coordinator: NodeId
    sequence: int

    def __str__(self) -> str:
        return f"txn:{self.coordinator.name}#{self.sequence}"


@dataclass(frozen=True)
class TxnWrite:
    """One staged write, summarized as ``(key, value digest)``.

    The full values travel as client-signed log entries; the signed
    statements and receipts carry only this summary, the same data-free
    discipline as certification itself.
    """

    key: str
    value_digest: str


# ----------------------------------------------------------------------
# Phase 1: prepare
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TxnPrepareStatement:
    """What the coordinator signs when asking one shard to stage writes.

    ``participant_shards`` binds the transaction's full scope, so every
    participant (and later, a dispute judge) knows exactly which shards the
    decision must cover.

    ``staged_floor`` is the coordinator's lower bound on the participant's
    Phase I log position — one past the highest block id the coordinator
    has *observed* from that edge in signed acknowledgements.  Because it
    is coordinator-signed (not participant-claimed), the staged-abort-serve
    judge can use it as the staging watermark: a record proven below the
    floor predates the transaction, and a participant cannot inflate the
    bound to shield itself.  An honest participant refuses a floor beyond
    its actual log position.
    """

    coordinator: NodeId
    txn_id: TxnId
    shard_id: ShardId
    writes: tuple[TxnWrite, ...]
    participant_shards: tuple[ShardId, ...]
    staged_floor: BlockId
    issued_at: float


@dataclass(frozen=True)
class TxnPrepareRequest:
    """txn-prepare: coordinator → participant edge, signed writes to stage.

    ``operation_id`` ties the prepare into the client's operation tracker so
    the existing signed-redirect machinery (``NotOwnerRedirect``) re-routes
    a misdirected prepare exactly like a put.
    """

    statement: TxnPrepareStatement
    signature: Signature
    operation_id: OperationId
    entries: tuple[LogEntry, ...]

    @property
    def txn_id(self) -> TxnId:
        return self.statement.txn_id

    @property
    def shard_id(self) -> ShardId:
        return self.statement.shard_id

    @property
    def wire_size(self) -> int:
        size = 64 + 96 + 48 * len(self.statement.writes)
        size += sum(entry.wire_size for entry in self.entries)
        return size


@dataclass(frozen=True)
class TxnPrepareReceiptStatement:
    """What the participant edge signs after staging a prepare.

    ``log_position`` is the shard's Phase I log position at staging time
    (the next block id): the commit record can only land at or after it,
    binding the receipt to a concrete point of the certified log.
    ``expires_at`` is the participant's promise horizon — the coordinator
    must deliver the decision before it, or the participant may presume
    abort and discard the staged writes.

    ``prepare_digest`` binds the receipt to the *exact* coordinator-signed
    prepare statement it answers (its canonical-encoding digest).  Without
    it, a malicious coordinator could mint a second self-signed prepare
    with different writes after the fact and frame an honest participant
    with a receipt/prepare "mismatch"; with it, a write-set mismatch
    against the digest-bound prepare is provably the edge's own lie.
    """

    edge: NodeId
    txn_id: TxnId
    shard_id: ShardId
    log_position: BlockId
    writes: tuple[TxnWrite, ...]
    prepare_digest: str
    prepared_at: float
    expires_at: float


@dataclass(frozen=True)
class TxnPrepareReceipt:
    """txn-prepare-receipt: participant edge → coordinator (the shard's vote)."""

    statement: TxnPrepareReceiptStatement
    signature: Signature

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def txn_id(self) -> TxnId:
        return self.statement.txn_id

    @property
    def shard_id(self) -> ShardId:
        return self.statement.shard_id

    def verify(self, registry: KeyRegistry) -> bool:
        """Check the receipt was signed by the edge it names."""

        if self.signature.signer != self.statement.edge:
            return False
        return registry.verify(self.signature, self.statement)

    @property
    def wire_size(self) -> int:
        return 64 + 112 + 48 * len(self.statement.writes)


@dataclass(frozen=True)
class TxnPrepareRejection:
    """txn-prepare-rejection: the participant refused to stage (a no vote)."""

    edge: NodeId
    txn_id: TxnId
    shard_id: ShardId
    reason: str

    @property
    def wire_size(self) -> int:
        return 176


# ----------------------------------------------------------------------
# Phase 2: decision
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TxnDecisionStatement:
    """What the coordinator signs when it decides the transaction."""

    coordinator: NodeId
    txn_id: TxnId
    decision: str  # TXN_COMMIT or TXN_ABORT
    participant_shards: tuple[ShardId, ...]
    decided_at: float


@dataclass(frozen=True)
class TxnDecisionMessage:
    """txn-decision: coordinator → every participant edge (commit/abort).

    The signed statement is self-certifying: any holder can relay or present
    it, which is what lets a participant prove an abort to the cloud and a
    dispute judge detect an equivocating coordinator.
    """

    statement: TxnDecisionStatement
    signature: Signature

    @property
    def txn_id(self) -> TxnId:
        return self.statement.txn_id

    @property
    def decision(self) -> str:
        return self.statement.decision

    def verify(self, registry: KeyRegistry) -> bool:
        """Check the decision was signed by the transaction's coordinator."""

        statement = self.statement
        if statement.coordinator != statement.txn_id.coordinator:
            return False
        if self.signature.signer != statement.coordinator:
            return False
        return registry.verify(self.signature, statement)

    @property
    def wire_size(self) -> int:
        return 64 + 96 + 8 * len(self.statement.participant_shards)


@dataclass(frozen=True)
class TxnDecisionAck:
    """txn-decision-ack: participant edge → coordinator, outcome applied.

    ``block_id`` names the log block carrying the decision record (and, on
    commit, the applied writes) so the coordinator can audit the shard's
    certified log later.  Duplicate decisions are acknowledged idempotently
    with the original outcome.
    """

    edge: NodeId
    txn_id: TxnId
    shard_id: Optional[ShardId]
    applied: bool
    status: str
    block_id: Optional[BlockId] = None

    @property
    def wire_size(self) -> int:
        return 168


# ----------------------------------------------------------------------
# Transaction disputes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TxnDispute:
    """An accusation of 2PC misbehaviour, with the signed artifacts attached.

    Kinds (see :func:`repro.core.dispute.judge_txn_dispute`):

    * ``prepare-receipt-mismatch`` — the coordinator presents its own signed
      prepare statement plus the edge-signed receipt whose write set
      differs: the edge signed a lie about what it staged.
    * ``staged-abort-serve`` — a client presents the edge-signed prepare
      receipt, the coordinator-signed *abort* decision, and an edge-signed
      get response serving one of the staged writes after the abort.
      ``serve_proof`` (the get response's index proof) makes the conviction
      *proof-bound*: the judge derives the served record's log position
      itself, so a backdated ``issued_at`` cannot exonerate the edge.
    * ``coordinator-equivocation`` — a participant presents two
      coordinator-signed decisions for the same transaction that disagree.
    """

    reporter: NodeId
    accused: NodeId
    txn_id: TxnId
    kind: str
    prepare_statement: Optional[TxnPrepareStatement] = None
    prepare_signature: Optional[Signature] = None
    receipt: Optional[TxnPrepareReceipt] = None
    decision: Optional[TxnDecisionMessage] = None
    second_decision: Optional[TxnDecisionMessage] = None
    serve_statement: Optional[GetResponseStatement] = None
    serve_signature: Optional[Signature] = None
    serve_proof: Optional[GetProof] = None

    @property
    def wire_size(self) -> int:
        size = 384
        if self.serve_proof is not None:
            size += self.serve_proof.wire_size
        return size


@dataclass(frozen=True)
class TxnDisputeVerdict:
    """The cloud's judgement on a transaction dispute.

    A punishing ``staged-abort-serve`` verdict is also delivered to the
    *accused* edge, carrying the coordinator-signed abort (``decision``)
    that convicted it: an edge that applied the same transaction under a
    coordinator-signed *commit* now holds two contradictory signed
    decisions and counter-disputes the equivocating coordinator.
    """

    cloud: NodeId
    reporter: NodeId
    accused: NodeId
    txn_id: TxnId
    punished: bool
    reason: str
    kind: str = ""
    decision: Optional[TxnDecisionMessage] = None

    @property
    def wire_size(self) -> int:
        size = 240
        if self.decision is not None:
            size += self.decision.wire_size
        return size
