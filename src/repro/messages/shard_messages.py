"""Messages of the sharded-fleet protocol (``repro.sharding``).

Three exchanges live here:

* **Shard-membership gossip** — the cloud signs a versioned
  :class:`ShardMapStatement` assigning every shard to its owning edge.
  Clients and edges keep a verified, monotone view of it; a stale map can
  never overwrite a newer one.
* **Routing** — an edge that receives an operation for a shard it does not
  own answers with a signed :class:`NotOwnerRedirect` naming the owner it
  knows and attaching its latest signed shard map so the client can catch
  up and re-route.
* **Certified shard handoff** — rebalancing moves a shard between edges.
  The source edge signs the shard's certified log prefix plus a Merkle
  state digest (:class:`ShardHandoffStatement`), the cloud verifies it
  against its certified digests and digest mirror and countersigns a
  :class:`ShardHandoffCertificate`, and the destination edge verifies the
  transferred state against the certificate before serving.  A digest
  mismatch is raised as a :class:`ShardDispute`: the source's own signed
  transfer statement is the evidence that convicts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.identifiers import BlockId, NodeId, OperationId, ShardId
from ..crypto.signatures import Signature
from ..log.block import Block
from ..log.proofs import AnyBlockProof
from ..lsm.page import Page
from ..lsmerkle.mlsm import SignedGlobalRoot
from ..messages.kv_messages import GetResponseStatement


# ----------------------------------------------------------------------
# Shard map (membership) gossip
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardAssignment:
    """One shard's owner (and optional replica set) inside a signed map.

    ``replicas`` lists the read replicas receiving the writer's certified
    log by shipping; ``provenance`` lists prior writers whose certified
    blocks legitimately remain in the shard's state after failover
    promotions.  Both are empty in the unreplicated deployment, leaving the
    signed bytes of a ``replication_factor=1`` map exactly as before.
    """

    shard_id: ShardId
    owner: NodeId
    replicas: tuple[NodeId, ...] = ()
    provenance: tuple[NodeId, ...] = ()


@dataclass(frozen=True)
class ShardMapStatement:
    """What the cloud signs when it publishes the fleet's shard ownership.

    ``version`` increases with every reassignment, so receivers keep a
    monotone view: a replayed or delayed older map can confirm but never
    regress what a client already knows.
    """

    cloud: NodeId
    version: int
    num_shards: int
    partitioner: str
    timestamp: float
    assignments: tuple[ShardAssignment, ...]

    def owner_of(self, shard_id: ShardId) -> Optional[NodeId]:
        for assignment in self.assignments:
            if assignment.shard_id == shard_id:
                return assignment.owner
        return None

    def replicas_of(self, shard_id: ShardId) -> tuple[NodeId, ...]:
        for assignment in self.assignments:
            if assignment.shard_id == shard_id:
                return assignment.replicas
        return ()

    def provenance_of(self, shard_id: ShardId) -> tuple[NodeId, ...]:
        for assignment in self.assignments:
            if assignment.shard_id == shard_id:
                return assignment.provenance
        return ()


@dataclass(frozen=True)
class ShardMapMessage:
    """Cloud-signed shard map, gossiped to clients and pushed to edges."""

    statement: ShardMapStatement
    signature: Signature

    @property
    def version(self) -> int:
        return self.statement.version

    @property
    def wire_size(self) -> int:
        # One signature + header amortized over every assignment entry;
        # replica/provenance node ids add 32 bytes each (zero when the map
        # is unreplicated, preserving the historical size exactly).
        extra = sum(
            32 * (len(assignment.replicas) + len(assignment.provenance))
            for assignment in self.statement.assignments
        )
        return 96 + 48 * len(self.statement.assignments) + extra


# ----------------------------------------------------------------------
# Routing (misroute answered with a signed redirect)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NotOwnerStatement:
    """The signed portion of a redirect (evidence the edge declined to serve)."""

    edge: NodeId
    operation_id: OperationId
    shard_id: ShardId
    owner: Optional[NodeId]
    map_version: int
    issued_at: float


@dataclass(frozen=True)
class NotOwnerRedirect:
    """Signed refusal to serve a shard, with the owner the edge knows.

    ``shard_map`` carries the edge's latest cloud-signed map so a client
    holding a stale view can verify the new ownership and re-route without
    a round trip to the cloud.
    """

    statement: NotOwnerStatement
    signature: Signature
    shard_map: Optional[ShardMapMessage] = None

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def shard_id(self) -> ShardId:
        return self.statement.shard_id

    @property
    def wire_size(self) -> int:
        size = 64 + 96
        if self.shard_map is not None:
            size += self.shard_map.wire_size
        return size


# ----------------------------------------------------------------------
# Certified shard handoff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardHandoffOrder:
    """Cloud → source edge: start migrating a shard to *dest*."""

    cloud: NodeId
    shard_id: ShardId
    source: NodeId
    dest: NodeId

    @property
    def wire_size(self) -> int:
        return 112


@dataclass(frozen=True)
class ShardHandoffStatement:
    """What the source edge signs when it offers a shard for handoff.

    ``blocks`` is the shard's certified log prefix — every certified
    ``(block id, digest)`` of the shard's log in id order; ``state_digest``
    commits to the shard's LSMerkle level roots chained with that prefix
    (see :func:`repro.sharding.handoff.shard_state_digest`).
    """

    edge: NodeId
    dest: NodeId
    shard_id: ShardId
    blocks: tuple[tuple[BlockId, str], ...]
    state_digest: str
    issued_at: float


@dataclass(frozen=True)
class ShardHandoffRequest:
    """handoff-offer: source edge → cloud, digests only (data-free)."""

    statement: ShardHandoffStatement
    signature: Signature

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def shard_id(self) -> ShardId:
        return self.statement.shard_id

    @property
    def wire_size(self) -> int:
        return 64 + 128 + 104 * len(self.statement.blocks)


@dataclass(frozen=True)
class HandoffGrantStatement:
    """What the cloud countersigns when it approves a shard handoff."""

    cloud: NodeId
    source: NodeId
    dest: NodeId
    shard_id: ShardId
    map_version: int
    state_digest: str
    num_blocks: int
    issued_at: float


@dataclass(frozen=True)
class ShardHandoffCertificate:
    """The cloud's countersignature over one approved handoff."""

    statement: HandoffGrantStatement
    signature: Signature

    @property
    def cloud(self) -> NodeId:
        return self.statement.cloud

    @property
    def source(self) -> NodeId:
        return self.statement.source

    @property
    def dest(self) -> NodeId:
        return self.statement.dest

    @property
    def shard_id(self) -> ShardId:
        return self.statement.shard_id

    @property
    def state_digest(self) -> str:
        return self.statement.state_digest

    @property
    def wire_size(self) -> int:
        return 64 + 160

    def verify(self, registry) -> bool:
        """Check the certificate was signed by the cloud node it names."""

        if self.signature.signer != self.statement.cloud:
            return False
        return registry.verify(self.signature, self.statement)


@dataclass(frozen=True)
class ShardHandoffGrant:
    """Cloud → source edge: the countersigned handoff plus the new map.

    ``signed_root`` is the shard's global root re-signed for the
    destination edge (same level roots, fresh version), so the destination
    can serve verified gets immediately after installing the state.
    """

    certificate: ShardHandoffCertificate
    shard_map: ShardMapMessage
    signed_root: SignedGlobalRoot

    @property
    def shard_id(self) -> ShardId:
        return self.certificate.shard_id

    @property
    def wire_size(self) -> int:
        return (
            16
            + self.certificate.wire_size
            + self.shard_map.wire_size
            + self.signed_root.wire_size
        )


@dataclass(frozen=True)
class ShardHandoffRejection:
    """Cloud → source edge: the handoff offer failed verification."""

    cloud: NodeId
    edge: NodeId
    shard_id: ShardId
    reason: str

    @property
    def wire_size(self) -> int:
        return 160


@dataclass(frozen=True)
class ShardTransferStatement:
    """What the source signs over the state it actually ships to the dest.

    This is the statement that makes tampering provable: if the digests the
    source attests here disagree with the ``state_digest`` the cloud
    countersigned, the destination holds a source-signed lie it can present
    as dispute evidence.
    """

    source: NodeId
    dest: NodeId
    shard_id: ShardId
    map_version: int
    blocks: tuple[tuple[BlockId, str], ...]
    state_digest: str


@dataclass(frozen=True)
class ShardTransferMessage:
    """Source edge → destination edge: the shard's state, with evidence.

    ``level_pages`` carries the pages of every Merkle-tracked level as
    ``(level_index, pages)`` pairs; ``blocks``/``proofs`` are the certified
    log prefix for audit continuity (level 0 is drained into level 1 before
    the handoff, so no page state rides on the blocks themselves).
    """

    statement: ShardTransferStatement
    signature: Signature
    certificate: ShardHandoffCertificate
    blocks: tuple[Block, ...]
    proofs: tuple[AnyBlockProof, ...]
    level_pages: tuple[tuple[int, tuple[Page, ...]], ...]
    signed_root: SignedGlobalRoot

    @property
    def shard_id(self) -> ShardId:
        return self.statement.shard_id

    @property
    def wire_size(self) -> int:
        size = 64 + 128 + self.certificate.wire_size + self.signed_root.wire_size
        size += sum(block.wire_size for block in self.blocks)
        size += sum(proof.wire_size for proof in self.proofs)
        size += sum(
            page.wire_size for _, pages in self.level_pages for page in pages
        )
        return size


@dataclass(frozen=True)
class ShardInstallAck:
    """Destination edge → cloud: the shard is installed and serving."""

    dest: NodeId
    shard_id: ShardId
    state_digest: str

    @property
    def wire_size(self) -> int:
        return 144


# ----------------------------------------------------------------------
# Shard replication: leases, certified log shipping, failover promotion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaLeaseStatement:
    """What the cloud signs when it leases serving rights on a shard.

    A node (writer or read replica) of a replicated shard may only answer
    clients while ``expires_at`` has not passed.  The lease is the offline
    authority chain for replica reads: a replica attaches its current lease
    to every response, and serving without a covering lease is convictable
    via :func:`repro.core.dispute.judge_stale_replica_dispute`.
    """

    cloud: NodeId
    replica: NodeId
    shard_id: ShardId
    map_version: int
    issued_at: float
    expires_at: float


@dataclass(frozen=True)
class ReplicaLease:
    """Cloud-signed serving lease for one node on one replicated shard."""

    statement: ReplicaLeaseStatement
    signature: Signature

    @property
    def replica(self) -> NodeId:
        return self.statement.replica

    @property
    def shard_id(self) -> ShardId:
        return self.statement.shard_id

    @property
    def expires_at(self) -> float:
        return self.statement.expires_at

    @property
    def wire_size(self) -> int:
        return 64 + 112

    def verify(self, registry) -> bool:
        """Check the lease was signed by the cloud node it names."""

        if self.signature.signer != self.statement.cloud:
            return False
        return registry.verify(self.signature, self.statement)


@dataclass(frozen=True)
class ReplicaLogShipment:
    """Writer → replica: the certified log suffix past the replica's ack.

    Nothing here is newly signed — every block rides with its cloud
    certificate, and the index state rides as the writer's latest
    cloud-signed root plus the pages beneath it, so the replica installs
    only what it can verify against cloud signatures it already trusts.
    ``level_zero_ids`` is the writer's full current level-0 block order
    (install order matters for root recomputation).
    """

    writer: NodeId
    replica: NodeId
    shard_id: ShardId
    blocks: tuple[Block, ...]
    proofs: tuple[AnyBlockProof, ...]
    level_zero_ids: tuple[BlockId, ...]
    level_pages: tuple[tuple[int, tuple[Page, ...]], ...]
    signed_root: Optional[SignedGlobalRoot]
    certified_count: int

    @property
    def wire_size(self) -> int:
        size = 112 + 8 * len(self.level_zero_ids)
        size += sum(block.wire_size for block in self.blocks)
        size += sum(proof.wire_size for proof in self.proofs)
        size += sum(
            page.wire_size for _, pages in self.level_pages for page in pages
        )
        if self.signed_root is not None:
            size += self.signed_root.wire_size
        return size


@dataclass(frozen=True)
class ReplicaShipmentAck:
    """Replica → writer and cloud: certified prefix installed up to here.

    ``watermark`` counts the certified records the replica holds; the cloud
    uses the per-replica watermarks to pick the freshest replica when the
    writer is lost.
    """

    replica: NodeId
    shard_id: ShardId
    watermark: int
    root_version: int

    @property
    def wire_size(self) -> int:
        return 144


@dataclass(frozen=True)
class WriterHeartbeat:
    """Writer → cloud: liveness beacon for its replicated shards.

    ``shards`` pairs each owned replicated shard with the writer's
    certified-record count, letting the cloud track shipping progress and
    detect a lost writer without any new signatures.
    """

    edge: NodeId
    shards: tuple[tuple[ShardId, int], ...]

    @property
    def wire_size(self) -> int:
        return 48 + 16 * len(self.shards)


@dataclass(frozen=True)
class ShardQuarantineNotice:
    """Edge → cloud: durable recovery quarantined one of my shards.

    For a replicated shard this turns PR 7's quarantine dead-end into a
    failover trigger: the quarantined partition refuses all service (so no
    lease wait is needed) and the cloud can promote a replica immediately.
    """

    edge: NodeId
    shard_id: ShardId
    reason: str

    @property
    def wire_size(self) -> int:
        return 160


@dataclass(frozen=True)
class ReplicaPromotionOrder:
    """Cloud → replica: offer your installed state for promotion."""

    cloud: NodeId
    shard_id: ShardId
    source: NodeId
    dest: NodeId

    @property
    def wire_size(self) -> int:
        return 112


@dataclass(frozen=True)
class ReplicaPromotionOffer:
    """Promotion offer: replica → cloud, digests only (data-free).

    Reuses the handoff offer statement — the replica signs the certified
    ``(block id, digest)`` prefix it installed plus the state digest, with
    itself as ``dest``.  ``level_page_digests`` and ``signed_root`` let the
    cloud rebuild its digest mirror at exactly the replica's installed
    version (which may trail the deposed writer's last merge; the
    difference is re-mergeable log suffix, never lost data).
    """

    statement: ShardHandoffStatement
    signature: Signature
    level_page_digests: tuple[tuple[int, tuple[str, ...]], ...]
    signed_root: Optional[SignedGlobalRoot]
    watermark: int

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def shard_id(self) -> ShardId:
        return self.statement.shard_id

    @property
    def wire_size(self) -> int:
        size = 64 + 128 + 104 * len(self.statement.blocks)
        size += sum(32 * len(digests) for _, digests in self.level_page_digests)
        if self.signed_root is not None:
            size += self.signed_root.wire_size
        return size


@dataclass(frozen=True)
class ReplicaPromotionGrant:
    """Cloud → promoted replica: countersigned promotion plus the new map.

    ``signed_root`` is the shard's root re-signed for the promoted replica
    at its installed level roots (``None`` when the shard had never merged,
    exactly like a fresh shard before its first merge).
    """

    certificate: ShardHandoffCertificate
    shard_map: ShardMapMessage
    signed_root: Optional[SignedGlobalRoot]

    @property
    def shard_id(self) -> ShardId:
        return self.certificate.shard_id

    @property
    def wire_size(self) -> int:
        size = 16 + self.certificate.wire_size + self.shard_map.wire_size
        if self.signed_root is not None:
            size += self.signed_root.wire_size
        return size


# ----------------------------------------------------------------------
# Shard disputes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardDispute:
    """An accusation about shard misbehaviour, with signed evidence.

    Kinds:

    * ``handoff-digest-mismatch`` — the destination presents the source's
      signed :class:`ShardTransferStatement`; the cloud convicts when its
      ``state_digest`` differs from the one it countersigned.
    * ``stale-owner-serve`` — a client presents an edge-signed
      :class:`~repro.messages.kv_messages.GetResponseStatement` issued
      after the edge lost the shard; the cloud convicts from its ownership
      history.
    * ``stale-replica-serve`` — a client presents a replica-signed
      :class:`~repro.messages.kv_messages.GetResponseStatement` together
      with whatever lease the replica attached (``lease``, possibly
      ``None``); the cloud convicts unless the lease covers the statement's
      ``issued_at`` (see
      :func:`repro.core.dispute.judge_stale_replica_dispute`).
    """

    reporter: NodeId
    accused: NodeId
    shard_id: ShardId
    kind: str
    transfer_statement: Optional[ShardTransferStatement] = None
    transfer_signature: Optional[Signature] = None
    serve_statement: Optional[GetResponseStatement] = None
    serve_signature: Optional[Signature] = None
    lease: Optional[ReplicaLease] = None

    @property
    def wire_size(self) -> int:
        size = 288
        if self.lease is not None:
            size += self.lease.wire_size
        return size


@dataclass(frozen=True)
class ShardDisputeVerdict:
    """The cloud's judgement on a shard dispute."""

    cloud: NodeId
    reporter: NodeId
    accused: NodeId
    shard_id: ShardId
    punished: bool
    reason: str

    @property
    def wire_size(self) -> int:
        return 224
