"""Messages of the LSMerkle key-value protocol (Section V).

``put`` operations reuse :class:`~repro.messages.log_messages.AppendBatchRequest`
with ``kind=OperationKind.PUT`` (they travel through the same log/buffer);
this module adds the interactive ``get`` exchange and the cloud-coordinated
merge protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..common.identifiers import NodeId, OperationId
from ..crypto.signatures import Signature
from ..lsmerkle.merge import MergeOutcome, MergeProposal
from ..lsmerkle.mlsm import SignedGlobalRoot
from ..lsmerkle.read_proof import GetProof

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (shard_messages
    # imports GetResponseStatement from this module)
    from .shard_messages import ReplicaLease


# ----------------------------------------------------------------------
# Interactive reads (get)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GetRequest:
    """Client request for the most recent value of a key."""

    requester: NodeId
    operation_id: OperationId
    key: str

    @property
    def wire_size(self) -> int:
        return 64 + len(self.key)


@dataclass(frozen=True)
class GetResponseStatement:
    """The signed portion of a get response (dispute evidence)."""

    edge: NodeId
    operation_id: OperationId
    key: str
    found: bool
    value_digest: Optional[str]
    issued_at: float


@dataclass(frozen=True)
class GetResponse:
    """The edge's get response: value, index proof, and signed statement.

    ``lease`` rides along only when a read replica of a replicated shard
    answers: it is the cloud-signed serving lease that authorizes the
    response (see :class:`~repro.messages.shard_messages.ReplicaLease`).
    ``None`` — the writer's own responses and every unreplicated
    deployment — leaves the response exactly as before.
    """

    statement: GetResponseStatement
    signature: Signature
    value: Optional[bytes]
    proof: GetProof
    lease: "Optional[ReplicaLease]" = None

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def key(self) -> str:
        return self.statement.key

    @property
    def found(self) -> bool:
        return self.statement.found

    @property
    def wire_size(self) -> int:
        size = 64 + 96 + self.proof.wire_size
        if self.value is not None:
            size += len(self.value)
        if self.lease is not None:
            size += self.lease.wire_size
        return size


# ----------------------------------------------------------------------
# Merges (edge ↔ cloud)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MergeRequest:
    """Edge → cloud: the pages (or blocks, for level 0) undergoing a merge."""

    edge: NodeId
    proposal: MergeProposal

    @property
    def level_index(self) -> int:
        return self.proposal.level_index

    @property
    def wire_size(self) -> int:
        return 32 + self.proposal.wire_size


@dataclass(frozen=True)
class MergeResponse:
    """Cloud → edge: merged pages plus the freshly signed global root."""

    cloud: NodeId
    outcome: MergeOutcome

    @property
    def level_index(self) -> int:
        return self.outcome.level_index

    @property
    def wire_size(self) -> int:
        return 32 + self.outcome.wire_size


@dataclass(frozen=True)
class MergeRejection:
    """Cloud → edge: the merge proposal failed verification."""

    cloud: NodeId
    edge: NodeId
    level_index: int
    reason: str
    #: Shard the rejected merge concerned (sharded fleets only).
    shard_id: Optional[int] = None

    @property
    def wire_size(self) -> int:
        return 160


# ----------------------------------------------------------------------
# Root refresh (freshness support, Section V-D)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RootRefreshRequest:
    """Edge → cloud: please re-sign the current roots with a new timestamp."""

    edge: NodeId
    #: Shard whose root should be refreshed (sharded fleets only).
    shard_id: Optional[int] = None

    @property
    def wire_size(self) -> int:
        return 48


@dataclass(frozen=True)
class RootRefreshResponse:
    """Cloud → edge: the re-signed global root."""

    cloud: NodeId
    edge: NodeId
    signed_root: SignedGlobalRoot
    #: Shard whose root was refreshed (sharded fleets only).
    shard_id: Optional[int] = None

    @property
    def wire_size(self) -> int:
        return 64 + self.signed_root.wire_size
