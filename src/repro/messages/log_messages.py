"""Messages of the WedgeChain logging protocol (Section IV).

Every message that a node acts upon carries the evidence the protocol needs:
add/put requests carry client-signed entries, responses carry the edge's
Phase I receipt, certification messages carry edge-signed digests, and block
proofs carry the cloud's signature.  ``wire_size`` properties let the
simulator charge realistic bandwidth without re-serializing payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.identifiers import BlockId, NodeId, OperationId, OperationKind
from ..crypto.signatures import Signature
from ..log.block import Block
from ..log.entry import LogEntry
from ..log.proofs import AnyBlockProof, BatchCertificate, PhaseOneReceipt


# ----------------------------------------------------------------------
# Appending (add / put share the same transport shape)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AppendBatchRequest:
    """A client-sent batch of entries to append (``add`` or ``put``)."""

    requester: NodeId
    operation_id: OperationId
    kind: OperationKind
    entries: tuple[LogEntry, ...]
    request_block: bool = True
    #: Shard the entries belong to (sharded fleets only; ``None`` for the
    #: paper's single-partition deployment, which keeps the wire identical).
    shard_id: Optional[int] = None

    @property
    def wire_size(self) -> int:
        size = 64 + sum(entry.wire_size for entry in self.entries)
        if self.shard_id is not None:
            size += 8
        return size


@dataclass(frozen=True)
class AppendBatchResponse:
    """The edge's signed acknowledgement: Phase I commitment evidence."""

    edge: NodeId
    operation_id: OperationId
    block_id: BlockId
    receipt: PhaseOneReceipt
    block: Optional[Block] = None

    @property
    def wire_size(self) -> int:
        size = 64 + self.receipt.wire_size
        if self.block is not None:
            size += self.block.wire_size
        return size


# ----------------------------------------------------------------------
# Certification (edge ↔ cloud): data-free, digests only
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CertifyStatement:
    """What the edge signs when asking the cloud to certify a block digest."""

    edge: NodeId
    block_id: BlockId
    block_digest: str
    num_entries: int


@dataclass(frozen=True)
class BlockCertifyRequest:
    """block-certify: edge → cloud, carrying only the digest (data-free)."""

    statement: CertifyStatement
    signature: Signature

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def block_id(self) -> BlockId:
        return self.statement.block_id

    @property
    def block_digest(self) -> str:
        return self.statement.block_digest

    @property
    def wire_size(self) -> int:
        return 64 + 64 + 80


@dataclass(frozen=True)
class BlockProofMessage:
    """block-proof: cloud → edge → clients, certifying one block digest.

    Carries either the per-block signature form (:class:`BlockProof`) or
    the batch-anchored form (:class:`~repro.log.proofs.BatchedBlockProof`);
    receivers treat the two interchangeably.
    """

    proof: AnyBlockProof

    @property
    def block_id(self) -> BlockId:
        return self.proof.block_id

    @property
    def wire_size(self) -> int:
        return self.proof.wire_size + 16


# ----------------------------------------------------------------------
# Batched certification (edge ↔ cloud): one signature per batch
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CertifyBatchStatement:
    """What the edge signs when it ships a whole batch of digests at once."""

    edge: NodeId
    items: tuple[CertifyStatement, ...]


@dataclass(frozen=True)
class CertifyBatchRequest:
    """certify-batch: edge → cloud, N digests under one edge signature."""

    statement: CertifyBatchStatement
    signature: Signature

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def items(self) -> tuple[CertifyStatement, ...]:
        return self.statement.items

    @property
    def wire_size(self) -> int:
        # One signature (64 bytes) amortized across every item; each item
        # costs what a single certify request's statement costs (80 bytes).
        return 64 + 64 + 80 * len(self.statement.items)


@dataclass(frozen=True)
class CertifyWindowStatement:
    """What the edge signs when a pipelined pump ships several batches at once.

    One uplink signature covers the whole in-flight window's worth of
    batches; the cloud still answers with one :class:`BatchCertificate`
    *per inner batch*, so window slots retire independently and a lost
    batch retries alone (as a plain :class:`CertifyBatchRequest`).  A
    single-batch dispatch never uses the envelope — ``certify_pipeline_depth
    = 1`` keeps the pre-pipeline wire format byte-exactly.
    """

    edge: NodeId
    batches: tuple[CertifyBatchStatement, ...]


@dataclass(frozen=True)
class CertifyWindowRequest:
    """certify-window: edge → cloud, a window of batches under one signature."""

    statement: CertifyWindowStatement
    signature: Signature

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def batches(self) -> tuple[CertifyBatchStatement, ...]:
        return self.statement.batches

    @property
    def num_blocks(self) -> int:
        return sum(len(batch.items) for batch in self.statement.batches)

    @property
    def wire_size(self) -> int:
        # One signature + header for the window; each inner batch costs a
        # small frame plus its items (same 80 bytes per item as a plain
        # batch request, minus the per-batch signature it no longer carries).
        return (
            64
            + 64
            + sum(16 + 80 * len(batch.items) for batch in self.statement.batches)
        )


@dataclass(frozen=True)
class BatchCertificateMessage:
    """batch-certificate: cloud → edge, one signed root for N blocks.

    ``blocks`` is the ordered ``(block id, digest)`` list the root was built
    over; the edge rebuilds the tree locally and derives each per-block
    :class:`~repro.log.proofs.BatchedBlockProof` itself, so the wire carries
    one signature plus 40 bytes per block instead of one signed proof each.
    """

    certificate: BatchCertificate
    blocks: tuple[tuple[BlockId, str], ...]

    @property
    def edge(self) -> NodeId:
        return self.certificate.edge

    @property
    def wire_size(self) -> int:
        return self.certificate.wire_size + 16 + 40 * len(self.blocks)


@dataclass(frozen=True)
class CertifyRejection:
    """The cloud's refusal to certify: the edge equivocated on a block id."""

    cloud: NodeId
    edge: NodeId
    block_id: BlockId
    existing_digest: str
    offending_digest: str
    reason: str

    @property
    def wire_size(self) -> int:
        return 208


@dataclass(frozen=True)
class DegradedModeNotice:
    """The edge's backpressure signal during a certification backlog.

    Sent when the uncertified Phase-I backlog crosses
    ``LoggingConfig.max_uncertified_backlog`` (``degraded=True``) and again
    when it drains back under half the threshold (``degraded=False``).
    Phase I service continues either way — the notice is advisory, telling
    clients their proofs will be late so they can throttle writes or widen
    dispute timers instead of flooding a cloud-partitioned edge.
    """

    edge: NodeId
    degraded: bool
    backlog: int
    limit: int

    @property
    def wire_size(self) -> int:
        return 64


# ----------------------------------------------------------------------
# Reading from the log
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReadRequest:
    """Client request to read one block by id."""

    requester: NodeId
    operation_id: OperationId
    block_id: BlockId

    @property
    def wire_size(self) -> int:
        return 80


@dataclass(frozen=True)
class ReadResponseStatement:
    """The signed portion of a read response (dispute evidence)."""

    edge: NodeId
    operation_id: OperationId
    block_id: BlockId
    found: bool
    block_digest: Optional[str]
    issued_at: float


@dataclass(frozen=True)
class ReadResponse:
    """The edge's response to a read: block, optional proof, signed statement."""

    statement: ReadResponseStatement
    signature: Signature
    block: Optional[Block] = None
    proof: Optional[AnyBlockProof] = None

    @property
    def edge(self) -> NodeId:
        return self.statement.edge

    @property
    def block_id(self) -> BlockId:
        return self.statement.block_id

    @property
    def found(self) -> bool:
        return self.statement.found

    @property
    def wire_size(self) -> int:
        size = 64 + 96
        if self.block is not None:
            size += self.block.wire_size
        if self.proof is not None:
            size += self.proof.wire_size
        return size


# ----------------------------------------------------------------------
# Gossip (omission-attack mitigation, Section IV-E)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GossipStatement:
    """Signed (timestamp, log size) snapshot of one edge node's certified log."""

    cloud: NodeId
    edge: NodeId
    certified_log_size: int
    timestamp: float


@dataclass(frozen=True)
class GossipMessage:
    """Periodic cloud-signed gossip delivered to clients."""

    statement: GossipStatement
    signature: Signature

    @property
    def wire_size(self) -> int:
        return 160


@dataclass(frozen=True)
class GossipEntry:
    """One edge's certified log size inside a batched gossip statement."""

    edge: NodeId
    certified_log_size: int


@dataclass(frozen=True)
class GossipBatchStatement:
    """Signed multi-edge (timestamp, log sizes) snapshot: one signature per
    gossip interval instead of one per edge (Section IV-E, batched)."""

    cloud: NodeId
    timestamp: float
    entries: tuple[GossipEntry, ...]

    def size_for(self, edge: NodeId) -> Optional[int]:
        """Certified log size for *edge*, or ``None`` if absent."""

        for entry in self.entries:
            if entry.edge == edge:
                return entry.certified_log_size
        return None


@dataclass(frozen=True)
class GossipBatchMessage:
    """Periodic cloud-signed multi-edge gossip delivered to clients."""

    statement: GossipBatchStatement
    signature: Signature

    @property
    def wire_size(self) -> int:
        # One signature + header amortized over every edge entry.
        return 96 + 48 * len(self.statement.entries)


# ----------------------------------------------------------------------
# Disputes and punishment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DisputeRequest:
    """A client's accusation that an edge node lied, with evidence attached."""

    client: NodeId
    edge: NodeId
    block_id: BlockId
    kind: str
    receipt: Optional[PhaseOneReceipt] = None
    read_statement: Optional[ReadResponseStatement] = None
    read_signature: Optional[Signature] = None
    claimed_digest: Optional[str] = None

    @property
    def wire_size(self) -> int:
        return 256


@dataclass(frozen=True)
class DisputeVerdict:
    """The cloud's judgement on a dispute."""

    cloud: NodeId
    client: NodeId
    edge: NodeId
    block_id: BlockId
    edge_punished: bool
    reason: str
    certified_digest: Optional[str] = None
    proof: Optional[AnyBlockProof] = None

    @property
    def wire_size(self) -> int:
        size = 224
        if self.proof is not None:
            size += self.proof.wire_size
        return size
