"""The cloud-signed shard map: authoritative registry and verified views.

The cloud is the single authority on shard ownership (it already certifies
every block and countersigns every merge, so anchoring membership there adds
no new trust).  It keeps a :class:`ShardRegistry` — the current assignment
plus the full ownership history — and publishes cloud-signed, versioned
:class:`~repro.messages.shard_messages.ShardMapMessage` snapshots through
the gossip path.

Clients and edges keep a :class:`ShardMapView`: signature-verified and
version-monotone.  A delayed or replayed *stale* map (lower version) never
passes the view's update check, which is what makes mid-interval membership
changes safe — whoever still holds the old map simply re-routes after one
signed redirect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..common.identifiers import NodeId, ShardId
from ..core.gossip import AnyGossipMessage, GossipView
from ..crypto.signatures import KeyRegistry
from ..messages.log_messages import GossipBatchStatement
from ..messages.shard_messages import (
    ShardAssignment,
    ShardMapMessage,
    ShardMapStatement,
)


def build_shard_map_message(
    registry: KeyRegistry,
    cloud: NodeId,
    version: int,
    num_shards: int,
    partitioner: str,
    assignments: dict[ShardId, NodeId],
    timestamp: float,
    replicas: Optional[dict[ShardId, tuple[NodeId, ...]]] = None,
    provenance: Optional[dict[ShardId, tuple[NodeId, ...]]] = None,
) -> ShardMapMessage:
    """Sign one shard-map snapshot on behalf of the cloud.

    Assignments are ordered by shard id so the signed bytes are
    deterministic regardless of the registry's internal bookkeeping order.
    ``replicas``/``provenance`` name each shard's read replicas and prior
    writers; omitted (the unreplicated default) the signed bytes are
    identical to the historical single-owner map.
    """

    replicas = replicas or {}
    provenance = provenance or {}
    statement = ShardMapStatement(
        cloud=cloud,
        version=version,
        num_shards=num_shards,
        partitioner=partitioner,
        timestamp=timestamp,
        assignments=tuple(
            ShardAssignment(
                shard_id=shard_id,
                owner=assignments[shard_id],
                replicas=tuple(replicas.get(shard_id, ())),
                provenance=tuple(provenance.get(shard_id, ())),
            )
            for shard_id in sorted(assignments)
        ),
    )
    return ShardMapMessage(
        statement=statement, signature=registry.sign(cloud, statement)
    )


def verify_shard_map(
    registry: KeyRegistry,
    message: ShardMapMessage,
    cloud: Optional[NodeId] = None,
) -> bool:
    """Verify the cloud's signature on a shard map snapshot."""

    if cloud is not None and message.signature.signer != cloud:
        return False
    return registry.verify(message.signature, message.statement)


@dataclass
class OwnershipEpoch:
    """One entry of the cloud's ownership history for a shard."""

    shard_id: ShardId
    owner: NodeId
    version: int
    since: float


class ShardRegistry:
    """The cloud's authoritative shard map plus its full history.

    The history is what makes stale-owner disputes judgeable: given a
    signed response issued at time *t* for a shard, the cloud can say who
    owned the shard at *t* and punish an edge that provably served after
    losing it.
    """

    def __init__(
        self,
        num_shards: int,
        partitioner: str,
        assignments: dict[ShardId, NodeId],
        now: float = 0.0,
        replicas: Optional[dict[ShardId, tuple[NodeId, ...]]] = None,
    ) -> None:
        self.num_shards = num_shards
        self.partitioner = partitioner
        self.version = 1
        self._owners: dict[ShardId, NodeId] = dict(assignments)
        self._replicas: dict[ShardId, tuple[NodeId, ...]] = {
            shard_id: tuple(members)
            for shard_id, members in (replicas or {}).items()
            if members
        }
        self._provenance: dict[ShardId, tuple[NodeId, ...]] = {}
        self._history: list[OwnershipEpoch] = [
            OwnershipEpoch(shard_id=shard_id, owner=owner, version=1, since=now)
            for shard_id, owner in sorted(assignments.items())
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def owner_of(self, shard_id: ShardId) -> Optional[NodeId]:
        return self._owners.get(shard_id)

    def assignments(self) -> dict[ShardId, NodeId]:
        return dict(self._owners)

    def replicas_of(self, shard_id: ShardId) -> tuple[NodeId, ...]:
        return self._replicas.get(shard_id, ())

    def provenance_of(self, shard_id: ShardId) -> tuple[NodeId, ...]:
        return self._provenance.get(shard_id, ())

    def replicated_shards(self) -> tuple[ShardId, ...]:
        return tuple(sorted(self._replicas))

    def shards_owned_by(self, edge: NodeId) -> tuple[ShardId, ...]:
        return tuple(
            shard_id
            for shard_id, owner in sorted(self._owners.items())
            if owner == edge
        )

    def owner_at(self, shard_id: ShardId, when: float) -> Optional[NodeId]:
        """Who owned *shard_id* at simulated time *when* (history lookup)."""

        owner: Optional[NodeId] = None
        for epoch in self._history:
            if epoch.shard_id != shard_id or epoch.since > when:
                continue
            owner = epoch.owner
        return owner

    def history(self, shard_id: ShardId) -> tuple[OwnershipEpoch, ...]:
        return tuple(
            epoch for epoch in self._history if epoch.shard_id == shard_id
        )

    # ------------------------------------------------------------------
    # Reassignment
    # ------------------------------------------------------------------
    def reassign(self, shard_id: ShardId, new_owner: NodeId, now: float) -> int:
        """Move a shard to a new owner; returns the new map version."""

        self.version += 1
        self._owners[shard_id] = new_owner
        self._history.append(
            OwnershipEpoch(
                shard_id=shard_id,
                owner=new_owner,
                version=self.version,
                since=now,
            )
        )
        return self.version

    def set_replicas(
        self, shard_id: ShardId, replicas: tuple[NodeId, ...], now: float
    ) -> int:
        """Replace a shard's replica set; returns the new map version."""

        self.version += 1
        if replicas:
            self._replicas[shard_id] = tuple(replicas)
        else:
            self._replicas.pop(shard_id, None)
        # Replica-set changes don't move ownership, but the new version
        # still needs a history anchor so owner_at stays total.
        owner = self._owners[shard_id]
        self._history.append(
            OwnershipEpoch(
                shard_id=shard_id, owner=owner, version=self.version, since=now
            )
        )
        return self.version

    def promote_replica(
        self, shard_id: ShardId, replica: NodeId, now: float
    ) -> int:
        """Promote a replica to writer after the old writer was lost.

        The deposed writer joins the shard's provenance chain (its
        certified blocks legitimately remain in the promoted state) and
        the promoted replica leaves the replica set.  Returns the new map
        version.
        """

        deposed = self._owners[shard_id]
        provenance = self._provenance.get(shard_id, ())
        if deposed not in provenance:
            self._provenance[shard_id] = provenance + (deposed,)
        remaining = tuple(
            member
            for member in self._replicas.get(shard_id, ())
            if member != replica
        )
        if remaining:
            self._replicas[shard_id] = remaining
        else:
            self._replicas.pop(shard_id, None)
        return self.reassign(shard_id, replica, now)

    def sign(
        self, registry: KeyRegistry, cloud: NodeId, timestamp: float
    ) -> ShardMapMessage:
        """The current map as a cloud-signed snapshot."""

        return build_shard_map_message(
            registry=registry,
            cloud=cloud,
            version=self.version,
            num_shards=self.num_shards,
            partitioner=self.partitioner,
            assignments=self._owners,
            timestamp=timestamp,
            replicas=self._replicas,
            provenance=self._provenance,
        )


@dataclass
class ShardMapView:
    """A node's verified, version-monotone view of the shard map.

    ``cloud`` pins the only accepted signer.  :meth:`update` rejects
    unsigned, mis-signed, and *stale* (lower-version) maps — a membership
    change mid-gossip-interval can therefore delay a node's view but never
    roll it back.
    """

    cloud: NodeId
    message: Optional[ShardMapMessage] = None
    #: How many stale or invalid maps were rejected (observability).
    rejected: int = 0
    _owners: dict[ShardId, NodeId] = field(default_factory=dict)
    _replicas: dict[ShardId, tuple[NodeId, ...]] = field(default_factory=dict)
    _provenance: dict[ShardId, tuple[NodeId, ...]] = field(default_factory=dict)

    @property
    def version(self) -> int:
        return self.message.statement.version if self.message is not None else 0

    @property
    def num_shards(self) -> Optional[int]:
        return self.message.statement.num_shards if self.message is not None else None

    @property
    def partitioner_name(self) -> Optional[str]:
        return self.message.statement.partitioner if self.message is not None else None

    def owner_of(self, shard_id: ShardId) -> Optional[NodeId]:
        return self._owners.get(shard_id)

    def replicas_of(self, shard_id: ShardId) -> tuple[NodeId, ...]:
        return self._replicas.get(shard_id, ())

    def provenance_of(self, shard_id: ShardId) -> tuple[NodeId, ...]:
        return self._provenance.get(shard_id, ())

    def shards_owned_by(self, edge: NodeId) -> tuple[ShardId, ...]:
        return tuple(
            shard_id
            for shard_id, owner in sorted(self._owners.items())
            if owner == edge
        )

    def shards_replicated_by(self, edge: NodeId) -> tuple[ShardId, ...]:
        return tuple(
            shard_id
            for shard_id, members in sorted(self._replicas.items())
            if edge in members
        )

    def update(self, registry: KeyRegistry, message: ShardMapMessage) -> bool:
        """Apply a newer verified map; returns whether the view advanced.

        A map that fails signature verification, names the wrong cloud, or
        carries a version at or below the current one is rejected (equal
        versions are idempotent replays: rejected silently but not counted
        as suspicious).
        """

        if not verify_shard_map(registry, message, cloud=self.cloud):
            self.rejected += 1
            return False
        if message.statement.version <= self.version:
            if message.statement.version < self.version:
                self.rejected += 1
            return False
        self.message = message
        self._owners = {
            assignment.shard_id: assignment.owner
            for assignment in message.statement.assignments
        }
        self._replicas = {
            assignment.shard_id: assignment.replicas
            for assignment in message.statement.assignments
            if assignment.replicas
        }
        self._provenance = {
            assignment.shard_id: assignment.provenance
            for assignment in message.statement.assignments
            if assignment.provenance
        }
        return True


@dataclass
class FleetGossipView:
    """A client's combined gossip view over a whole sharded fleet.

    Wires shard-membership gossip into the existing per-edge
    :class:`~repro.core.gossip.GossipView` machinery: one log-size view per
    edge (omission-attack bounds, Section IV-E) plus the verified, monotone
    :class:`ShardMapView` (ownership).  Signature verification of log-size
    gossip stays with the caller (``verify_gossip``), exactly as for the
    single-edge client; shard maps are verified inside :class:`ShardMapView`.
    """

    cloud: NodeId
    shard_map: ShardMapView = field(init=False)
    edges: dict[NodeId, GossipView] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.shard_map = ShardMapView(cloud=self.cloud)

    def view_for(self, edge: NodeId) -> GossipView:
        view = self.edges.get(edge)
        if view is None:
            view = GossipView(edge=edge)
            self.edges[edge] = view
        return view

    def update_log_sizes(self, message: AnyGossipMessage) -> bool:
        """Apply (already signature-checked) log-size gossip to every edge
        view the message mentions; returns whether any view advanced."""

        statement = message.statement
        advanced = False
        if isinstance(statement, GossipBatchStatement):
            for entry in statement.entries:
                advanced = self.view_for(entry.edge).update(message) or advanced
            return advanced
        return self.view_for(statement.edge).update(message)

    def block_should_exist(self, edge: NodeId, block_id: int) -> bool:
        return self.view_for(edge).block_should_exist(block_id)
