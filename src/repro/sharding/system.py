"""The sharded-fleet facade: N edges, one cloud, shard-aware clients.

:class:`ShardedWedgeSystem` is the multi-edge counterpart of
:class:`~repro.core.system.WedgeChainSystem`: it wires a fleet of
:class:`~repro.sharding.edge.ShardedEdgeNode`\\ s, installs the cloud-signed
shard map, hands every client a router, and exposes rebalancing (manual
``rebalance_shard`` and the load-triggered ``maybe_rebalance``) on top of
the certified handoff protocol.

:class:`ShardedClosedLoopDriver` drives the fleet the same way the paper's
closed-loop clients drive one edge — one outstanding *batch* per client —
except a batch that spans shards fans out into one append per owning edge
and completes when the last sub-operation commits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..common.config import ShardingConfig, SystemConfig
from ..common.errors import ConfigurationError
from ..common.identifiers import NodeId, ShardId
from ..core.system import WedgeChainSystem
from ..nodes.cloud import CloudNode
from ..sim.environment import Environment
from ..sim.parameters import SimulationParameters
from ..sim.topology import Topology
from ..workloads.driver import ClosedLoopDriver
from .client import ShardedClient
from .edge import ShardedEdgeNode
from .partitioner import KeyPartitioner, make_partitioner

#: Factory signature for sharded edge nodes (lets tests substitute the
#: malicious variants without changing the wiring code).
ShardedEdgeFactory = Callable[..., ShardedEdgeNode]


@dataclass(frozen=True)
class RebalanceAction:
    """One shard movement decided by the load trigger."""

    shard_id: ShardId
    source: NodeId
    dest: NodeId
    reason: str


class ShardedWedgeSystem(WedgeChainSystem):
    """A sharded WedgeChain fleet: cloud + N sharded edges + routed clients."""

    def __init__(
        self,
        env: Environment,
        config: SystemConfig,
        cloud: CloudNode,
        edges: Sequence[ShardedEdgeNode],
        clients: Sequence[ShardedClient],
        partitioner: KeyPartitioner,
    ) -> None:
        super().__init__(env=env, config=config, cloud=cloud, edges=edges, clients=clients)
        self.partitioner = partitioner
        #: Per-edge ``entries_logged`` snapshot taken at the last rebalance,
        #: so the trigger reacts to load since the last move, not lifetime
        #: totals (which would keep indicting an edge that already shed its
        #: hotspot).
        self._rebalance_baseline: dict[NodeId, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        config: Optional[SystemConfig] = None,
        num_clients: int = 1,
        env: Optional[Environment] = None,
        topology: Optional[Topology] = None,
        params: Optional[SimulationParameters] = None,
        edge_factory: Optional[ShardedEdgeFactory] = None,
        seed: int = 7,
        enable_gossip: bool = False,
    ) -> "ShardedWedgeSystem":
        """Create a sharded deployment.

        ``config.sharding`` selects the partitioner and shard count (a
        default :class:`~repro.common.config.ShardingConfig` is attached
        when absent); ``config.num_edge_nodes`` sizes the fleet.  Shards are
        assigned to edges round-robin, and every node starts from the same
        cloud-signed version-1 shard map.
        """

        config = config if config is not None else SystemConfig.paper_default()
        if config.sharding is None:
            config = config.with_overrides(sharding=ShardingConfig())
        sharding = config.sharding
        if num_clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        if env is None:
            env = Environment(
                topology=topology,
                params=params,
                signature_scheme=config.security.signature_scheme,
                seed=seed,
            )
        partitioner = make_partitioner(
            sharding.partitioner, sharding.num_shards, key_space=sharding.key_space
        )
        factory = edge_factory if edge_factory is not None else ShardedEdgeNode

        cloud = CloudNode(env=env, config=config, name="cloud-0")
        edges = [
            factory(
                env=env,
                cloud=cloud.node_id,
                config=config,
                name=f"edge-{index}",
                region=config.placement.edge_region,
                partitioner=partitioner,
            )
            for index in range(config.num_edge_nodes)
        ]
        assignments = {
            shard_id: edges[shard_id % len(edges)].node_id
            for shard_id in range(sharding.num_shards)
        }
        # replication_factor - 1 read replicas per shard, round-robin over
        # the edges after the writer.  The paper-default factor of 1 leaves
        # the map (and its signed bytes) exactly as the unreplicated fleet.
        replicas = None
        extra = min(sharding.replication_factor - 1, len(edges) - 1)
        if extra > 0:
            replicas = {
                shard_id: tuple(
                    edges[(shard_id + offset) % len(edges)].node_id
                    for offset in range(1, extra + 1)
                )
                for shard_id in range(sharding.num_shards)
            }
        map_message = cloud.install_shard_map(
            num_shards=sharding.num_shards,
            partitioner_name=sharding.partitioner,
            assignments=assignments,
            key_space=sharding.key_space,
            replicas=replicas,
        )
        for edge in edges:
            edge.adopt_shard_map(map_message)

        clients = []
        edge_ids = [edge.node_id for edge in edges]
        for index in range(num_clients):
            client = ShardedClient(
                env=env,
                edges=edge_ids,
                cloud=cloud.node_id,
                partitioner=partitioner,
                config=config,
                name=f"client-{index}",
                region=config.placement.client_region,
                shard_map=map_message,
            )
            clients.append(client)
            cloud.register_gossip_target(client.node_id)
        system = cls(
            env=env,
            config=config,
            cloud=cloud,
            edges=edges,
            clients=clients,
            partitioner=partitioner,
        )
        if enable_gossip:
            cloud.start_gossip()
        return system

    # ------------------------------------------------------------------
    # Shard management
    # ------------------------------------------------------------------
    def shard_owner(self, shard_id: ShardId) -> Optional[NodeId]:
        """The authoritative current owner (cloud registry)."""

        registry = self.cloud.shard_registry
        return registry.owner_of(shard_id) if registry is not None else None

    def edge_by_id(self, node_id: NodeId) -> ShardedEdgeNode:
        for edge in self.edges:
            if edge.node_id == node_id:
                return edge
        raise ConfigurationError(f"unknown edge {node_id}")

    def rebalance_shard(self, shard_id: ShardId, dest: "NodeId | int") -> None:
        """Order a certified handoff of *shard_id* to *dest* (edge or index)."""

        dest_id = self.edges[dest].node_id if isinstance(dest, int) else dest
        self.cloud.request_shard_handoff(shard_id, dest_id)

    def maybe_rebalance(self) -> Optional[RebalanceAction]:
        """Move one shard off the hottest edge when load is skewed enough.

        The trigger compares per-edge logged entries against the fleet mean;
        an edge beyond ``sharding.rebalance_hot_factor`` times the mean
        hands its busiest shard to the least-loaded edge.  Returns the
        action taken (the handoff itself completes asynchronously) or
        ``None`` when the fleet is balanced or no move is possible.
        """

        sharding = self.config.sharding
        loads = {
            edge.node_id: edge.stats["entries_logged"]
            - self._rebalance_baseline.get(edge.node_id, 0)
            for edge in self.edges
        }
        if len(loads) < 2:
            return None
        mean_load = sum(loads.values()) / len(loads)
        if mean_load <= 0:
            return None
        hottest = max(self.edges, key=lambda edge: loads[edge.node_id])
        if loads[hottest.node_id] < sharding.rebalance_hot_factor * mean_load:
            return None
        candidates = {
            shard_id: hottest.shard_entry_counts.get(shard_id, 0)
            for shard_id in hottest.owned_shards()
            if self.shard_owner(shard_id) == hottest.node_id
        }
        if len(candidates) <= 1:
            return None  # moving an edge's only shard just relocates the hotspot
        busiest_shard = max(candidates, key=candidates.get)
        coldest = min(
            (edge for edge in self.edges if edge.node_id != hottest.node_id),
            key=lambda edge: loads[edge.node_id],
        )
        self.rebalance_shard(busiest_shard, coldest.node_id)
        self._rebalance_baseline = {
            edge.node_id: edge.stats["entries_logged"] for edge in self.edges
        }
        return RebalanceAction(
            shard_id=busiest_shard,
            source=hottest.node_id,
            dest=coldest.node_id,
            reason=(
                f"edge load {loads[hottest.node_id]} exceeds "
                f"{sharding.rebalance_hot_factor:.1f}x fleet mean {mean_load:.0f}"
            ),
        )

    # ------------------------------------------------------------------
    # Fleet statistics
    # ------------------------------------------------------------------
    def fleet_stats(self) -> dict:
        """Shard-level counters on top of the base :meth:`stats`."""

        return {
            "shard_redirects": sum(e.stats["shard_redirects"] for e in self.edges),
            "handoffs_granted": self.cloud.stats["shard_handoffs_granted"],
            "handoffs_completed": self.cloud.stats["shard_installs"],
            "shard_disputes": self.cloud.stats["shard_disputes"],
            "map_version": (
                self.cloud.shard_registry.version
                if self.cloud.shard_registry is not None
                else 0
            ),
            "entries_per_edge": {
                str(edge.node_id): edge.stats["entries_logged"] for edge in self.edges
            },
            "certify_batches": sum(
                edge.stats.get("certify_batches", 0) for edge in self.edges
            ),
            "certify_inflight_peak": max(
                (edge.stats.get("certify_inflight_peak", 0) for edge in self.edges),
                default=0,
            ),
        }

    def certify_pipeline_stats(self) -> dict:
        """Fleet-wide view of every edge's certification pipeline.

        One entry per edge (see
        :meth:`~repro.sharding.edge.ShardedEdgeNode.certify_pipeline_snapshot`),
        plus aggregate in-flight and retired-batch totals — the dashboard
        surface for "is Phase II keeping up with Phase I" at fleet scale.

        .. deprecated:: PR 8
            Kept as a thin view for existing callers.  With observability
            enabled the same numbers live on the per-node metrics
            registries (``certify_in_flight`` / ``certify_queued`` gauges)
            and aggregate in the ``python -m repro.obs.report`` fleet
            health report.
        """

        per_edge = {
            str(edge.node_id): edge.certify_pipeline_snapshot()
            for edge in self.edges
        }
        return {
            "per_edge": per_edge,
            "in_flight_total": sum(
                shard["in_flight"]
                for snapshot in per_edge.values()
                for shard in snapshot.values()
            ),
            "retired_batches_total": sum(
                shard["retired_batches"]
                for snapshot in per_edge.values()
                for shard in snapshot.values()
            ),
        }


class ShardedClosedLoopDriver(ClosedLoopDriver):
    """Closed-loop driver over shard-aware clients.

    Identical to :class:`~repro.workloads.driver.ClosedLoopDriver` — the
    base driver already tracks the set of operations a batch fans out into
    (one append per owning edge) and issues the next logical batch when the
    last of them commits.  The subclass exists as the fleet-facing name and
    for sharding-specific extensions.
    """
