"""Shard routing: key → shard → owning edge.

The :class:`ShardRouter` is the small, hot piece of a shard-aware client:
every operation resolves its key through the partitioner (pure computation)
and the verified shard-map view (one dict lookup).  The ``shard_route``
micro-benchmark in :mod:`repro.bench.perf` tracks exactly this path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..common.identifiers import NodeId, ShardId
from .partitioner import KeyPartitioner
from .shard_map import ShardMapView


@dataclass(frozen=True)
class Route:
    """Resolution of one key: its shard and the edge believed to own it."""

    key: str
    shard_id: ShardId
    owner: Optional[NodeId]


class ShardRouter:
    """Routes keys to owning edges through a verified shard-map view."""

    def __init__(
        self,
        partitioner: KeyPartitioner,
        view: ShardMapView,
        default_owner: Optional[NodeId] = None,
    ) -> None:
        self.partitioner = partitioner
        self.view = view
        #: Used before the first shard map arrives (fresh client bootstrap).
        self.default_owner = default_owner
        self.stats = {"routes": 0, "unresolved": 0}

    def shard_of(self, key: str) -> ShardId:
        return self.partitioner.shard_of(key)

    def owner_of(self, shard_id: ShardId) -> Optional[NodeId]:
        owner = self.view.owner_of(shard_id)
        if owner is None:
            owner = self.default_owner
        return owner

    def route(self, key: str) -> Route:
        """Resolve one key to ``(shard, owner)``."""

        shard_id = self.partitioner.shard_of(key)
        owner = self.owner_of(shard_id)
        self.stats["routes"] += 1
        if owner is None:
            self.stats["unresolved"] += 1
        return Route(key=key, shard_id=shard_id, owner=owner)

    def split_batch(
        self, items: Iterable[tuple[str, bytes]]
    ) -> dict[tuple[ShardId, Optional[NodeId]], list[tuple[str, bytes]]]:
        """Group put items by (shard, owner) for per-owner batch requests.

        Preserves the within-group item order, so per-shard batches retain
        the client's write order.
        """

        groups: dict[tuple[ShardId, Optional[NodeId]], list[tuple[str, bytes]]] = {}
        for key, value in items:
            route = self.route(key)
            groups.setdefault((route.shard_id, route.owner), []).append((key, value))
        return groups
