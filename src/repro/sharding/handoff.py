"""The certified shard-handoff protocol (rebalancing a sharded fleet).

Moving a shard between untrusted edges must not create a window where a
client can be served tampered or forked state.  The protocol keeps the
cloud's lazy-certification invariants across the move:

1. **Drain** — the source edge stops serving the shard (requests are
   answered with signed ``NotOwnerRedirect``\\ s), flushes its buffer, waits
   until every block of the shard is certified, and merges level 0 into
   level 1 so the shard's whole index state is committed under the cloud's
   digest mirror.
2. **Offer** — the source signs the shard's certified log prefix (every
   ``(block id, digest)`` in id order) plus a :func:`shard_state_digest`
   binding that prefix to the shard's level roots, and sends the offer to
   the cloud (digests only — data-free, like certification itself).
3. **Countersign** — the cloud checks every digest against what it
   certified and recomputes the state digest from its own mirror.  On a
   match it reassigns the shard in the registry, re-signs the global root
   for the destination, and countersigns a ``ShardHandoffCertificate``.
4. **Transfer & verify** — the source ships blocks, proofs, and level
   pages to the destination together with its *own signed transfer
   statement*.  The destination recomputes the state digest from the bytes
   it actually received and verifies it against the cloud's certificate
   before serving a single request.
5. **Dispute** — if the digests disagree, the destination holds a
   source-signed statement that contradicts a cloud-countersigned one:
   it raises a shard dispute and the cloud punishes the source.

This module holds the pure helpers shared by all three parties; the
message flow lives in :mod:`repro.sharding.edge` and
:mod:`repro.nodes.cloud`.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from ..common.identifiers import BlockId, ShardId
from ..crypto.hashing import sha256_hex
from ..lsm.page import Page
from ..merkle.tree import MerkleTree


def shard_state_digest(
    shard_id: ShardId,
    level_roots: Sequence[str],
    blocks: Sequence[tuple[BlockId, str]],
) -> str:
    """One digest committing to a shard's full transferable state.

    Binds, with domain separation: the shard id (a digest for shard 3 can
    never certify shard 5), the Merkle roots of every tracked level, and
    the certified log prefix in block-id order.  All three parties compute
    it independently — source from its live state, cloud from its digest
    mirror plus certified digests, destination from the bytes it received.
    """

    hasher = hashlib.sha256(b"shard-state:")
    hasher.update(str(shard_id).encode("ascii"))
    hasher.update(b"|roots:")
    for root in level_roots:
        hasher.update(root.encode("ascii"))
        hasher.update(b"|")
    hasher.update(b"blocks:")
    for block_id, digest in blocks:
        hasher.update(str(block_id).encode("ascii"))
        hasher.update(b":")
        hasher.update(digest.encode("ascii"))
        hasher.update(b"|")
    return hasher.hexdigest()


def level_roots_from_pages(
    level_pages: Iterable[tuple[int, tuple[Page, ...]]],
    num_levels: int,
) -> tuple[str, ...]:
    """Recompute per-level Merkle roots from transferred page lists.

    ``level_pages`` carries ``(level_index, pages)`` for levels 1..n-1;
    levels absent from the list are empty.  This is what the destination
    edge computes from the untrusted transfer payload and compares against
    the certificate's state digest.
    """

    by_level = {level_index: pages for level_index, pages in level_pages}
    roots: list[str] = []
    for level_index in range(1, num_levels):
        pages = by_level.get(level_index, ())
        roots.append(MerkleTree([page.digest() for page in pages]).root)
    return tuple(roots)


def seed_partition_store(
    store,
    level_pages: Iterable[tuple[int, tuple[Page, ...]]],
    signed_root,
    next_block_id: BlockId = 0,
) -> None:
    """Seed a freshly installed shard's durable store from a transfer.

    The destination persists exactly what it verified: the transferred
    level pages and the cloud's re-signed global root, written as the
    store's first manifest.  The transferred *blocks* are deliberately not
    appended to the segment log — they live in the source edge's block-id
    space (the audit archive in ``_imported_blocks`` keeps them in memory);
    every certified datum they carry is already inside the pages this
    manifest makes durable.  A crash right after the install therefore
    recovers to the same verified index the handoff produced.
    """

    store.write_manifest(
        next_block_id=next_block_id,
        level_pages={
            level_index: list(pages)
            for level_index, pages in level_pages
            if pages
        },
        level_zero_blocks=(),
        signed_root=signed_root,
    )


def transfer_fingerprint(blocks: Sequence[tuple[BlockId, str]]) -> str:
    """Order-sensitive fingerprint of a certified log prefix (debug aid)."""

    hasher = hashlib.sha256(b"prefix:")
    for block_id, digest in blocks:
        hasher.update(f"{block_id}:{digest}|".encode("ascii"))
    return hasher.hexdigest()


__all__ = [
    "shard_state_digest",
    "level_roots_from_pages",
    "seed_partition_store",
    "transfer_fingerprint",
    "sha256_hex",
]
