"""The shard-aware client: any key, routed to its owning edge.

A :class:`ShardedClient` keeps the base client's whole verification stack
(signed receipts, proof checks, disputes, session consistency) and adds:

* **routing** — puts and gets resolve their key through a
  :class:`~repro.sharding.router.ShardRouter` backed by the client's
  verified shard-map view; batches split per owning edge;
* **redirect handling** — a signed ``NotOwnerRedirect`` updates the map
  view (the redirect carries the edge's latest cloud-signed map) and
  re-issues the *same* operation to the new owner, bounded by
  ``ShardingConfig.max_redirects``;
* **stale-owner detection** — a get response from an edge that the
  client's (newer) map says no longer owns the key's shard is reported to
  the cloud as a ``stale-owner-serve`` shard dispute, with the edge's own
  signed response statement as evidence;
* **per-shard session consistency** — signed-root versions are tracked per
  (edge, shard) sequence, since every shard's index advances independently.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable, Optional, Sequence

from ..common.config import SystemConfig
from ..common.identifiers import NodeId, OperationId, OperationKind, ShardId
from ..common.regions import Region
from ..core.commit import OperationRecord
from ..core.gossip import verify_gossip
from ..log.proofs import CommitPhase
from ..lsmerkle.codec import encode_put
from ..messages.kv_messages import GetRequest, GetResponse
from ..messages.log_messages import (
    AppendBatchRequest,
    GossipBatchMessage,
    GossipMessage,
    ReadRequest,
)
from ..messages.shard_messages import (
    NotOwnerRedirect,
    ReplicaLease,
    ShardDispute,
    ShardDisputeVerdict,
    ShardMapMessage,
)
from ..messages.txn_messages import (
    TxnDecisionAck,
    TxnDisputeVerdict,
    TxnId,
    TxnPrepareReceipt,
    TxnPrepareRejection,
)
from ..nodes.client import Client
from ..sim.environment import Environment
from .partitioner import KeyPartitioner
from .router import ShardRouter
from .shard_map import FleetGossipView
from .transactions import TxnCoordinator


class ShardedClient(Client):
    """One authenticated client that can read and write any shard."""

    def __init__(
        self,
        env: Environment,
        edges: Sequence[NodeId],
        cloud: NodeId,
        partitioner: KeyPartitioner,
        config: Optional[SystemConfig] = None,
        name: str = "client-0",
        region: Optional[Region] = None,
        shard_map: Optional[ShardMapMessage] = None,
    ) -> None:
        if not edges:
            raise ValueError("ShardedClient needs at least one edge")
        super().__init__(
            env=env,
            edge=edges[0],
            cloud=cloud,
            config=config,
            name=name,
            region=region,
        )
        self.partitioner = partitioner
        # Per-shard sub-batches are sized by the key split, not the block
        # size, so their entries routinely span block boundaries.
        self._split_batch_acks = True
        self.fleet_view = FleetGossipView(cloud=cloud)
        if shard_map is not None:
            self.fleet_view.shard_map.update(env.registry, shard_map)
        self.router = ShardRouter(
            partitioner, self.fleet_view.shard_map, default_owner=edges[0]
        )
        #: Shard-dispute verdicts the cloud sent back to this client.
        self.shard_verdicts: list[ShardDisputeVerdict] = []
        #: Transaction-dispute verdicts the cloud sent back to this client.
        self.txn_verdicts: list[TxnDisputeVerdict] = []
        #: Redirect-hop cap: exactly this many redirect hops are followed
        #: per operation before it fails.  Unsharded configs resolve to the
        #: ShardingConfig field default — never a re-spelled literal.
        self._max_redirects = self.config.sharding_or_default().max_redirects
        #: Highest block id observed per edge in signed acknowledgements:
        #: the coordinator-side staging watermark for transactions
        #: (``TxnPrepareStatement.staged_floor``).
        self._observed_block_ids: dict[NodeId, int] = {}
        #: Client-coordinated cross-shard 2PC (atomic multi-key puts).
        self.txns = TxnCoordinator(self)
        self.stats.update(
            {
                "redirects_followed": 0,
                "redirect_failures": 0,
                "shard_disputes_sent": 0,
                "stale_owner_detections": 0,
                "stale_replica_detections": 0,
                "replica_reads_routed": 0,
                "txns_started": 0,
                "txns_committed": 0,
                "txns_aborted": 0,
                "txn_prepare_reroutes": 0,
                "txn_prepare_rejections": 0,
                "txn_receipt_mismatches": 0,
                "txn_decision_acks": 0,
                "txn_decision_retries": 0,
                "txn_disputes_sent": 0,
                "staged_serve_detections": 0,
            }
        )

    # ------------------------------------------------------------------
    # Routed operation API
    # ------------------------------------------------------------------
    def put(self, key: str, value: bytes) -> OperationId:
        self.txns.note_rewrite(key, value)
        route = self.router.route(key)
        return self._append(
            [encode_put(key, value)],
            OperationKind.PUT,
            edge=route.owner,
            shard_id=route.shard_id,
        )

    def put_batch(self, items: Iterable[tuple[str, bytes]]) -> tuple[OperationId, ...]:
        """Apply a batch of puts, split per owning edge.

        Unlike the single-edge client this returns one operation id per
        (shard, owner) group — a batch that spans shards becomes several
        independent append requests, one per owner.
        """

        items = list(items)
        for key, value in items:
            self.txns.note_rewrite(key, value)
        groups = self.router.split_batch(items)
        operations = []
        for (shard_id, owner), group in groups.items():
            payloads = [encode_put(key, value) for key, value in group]
            operations.append(
                self._append(
                    payloads, OperationKind.PUT, edge=owner, shard_id=shard_id
                )
            )
        return tuple(operations)

    def get(self, key: str, edge: Optional[NodeId] = None) -> OperationId:
        route = self.router.route(key)
        target = (
            edge
            if edge is not None
            else self._read_target(route.shard_id, route.owner)
        )
        operation_id = super().get(key, edge=target)
        record = self.tracker.get(operation_id)
        record.details["shard_id"] = route.shard_id
        return operation_id

    def _read_target(self, shard_id: ShardId, owner: NodeId) -> NodeId:
        """Where to send a read: the writer or one of its read replicas.

        Sticky per (client, shard): the same client always reads a shard
        from the same member, so session consistency (monotone root
        versions per serving edge) composes with replica reads without any
        cross-member version coordination.
        """

        replicas = self.fleet_view.shard_map.replicas_of(shard_id)
        if not replicas:
            return owner
        members = (owner, *replicas)
        index = zlib.crc32(f"{self.node_id}:{shard_id}".encode()) % len(members)
        target = members[index]
        if target != owner:
            self.stats["replica_reads_routed"] += 1
        return target

    def txn_put(self, items: Iterable[tuple[str, bytes]]) -> TxnId:
        """Atomically put a batch of keys that may span several shards.

        Runs the client-coordinated two-phase commit of
        :mod:`repro.sharding.transactions`: every participant shard either
        applies the whole per-shard write set or none of it.  Returns the
        transaction id; progress is visible through ``self.txns`` (state,
        receipts, decision) and the per-participant operations in the
        ordinary commit tracker.
        """

        return self.txns.begin(items)

    # ------------------------------------------------------------------
    # Multi-edge hook overrides
    # ------------------------------------------------------------------
    def _annotate_issue(self, record: OperationRecord) -> None:
        record.details["map_version"] = self.fleet_view.shard_map.version

    def _stash_entries(self, record: OperationRecord, entries: tuple) -> None:
        # Redirect handling re-sends the same signed entries to a new owner.
        record.details["entries"] = entries

    def _handle_append_response(self, sender: NodeId, response) -> None:
        super()._handle_append_response(sender, response)
        if response.operation_id not in self.tracker:
            return
        record = self.tracker.get(response.operation_id)
        # The staging watermark moves only on acknowledgements whose
        # *specific block id* carries a verified receipt — the base handler
        # bound record.block_id / a per-block receipt iff the signature
        # checked out and the sender is the operation's edge.  A duplicate
        # or unsolicited response with an absurd block id must not poison
        # the floor (it would neutralize staged-abort-serve conviction for
        # the forging edge and wedge transactions against honest ones).
        acknowledged = (
            record.receipt is not None and record.block_id == response.block_id
        ) or response.block_id in (record.details.get("block_receipts") or ())
        if (
            acknowledged
            and self._expected_edge(record) == sender
            and response.block_id > self._observed_block_ids.get(sender, -1)
        ):
            self._observed_block_ids[sender] = response.block_id
        if record.phase is not CommitPhase.PENDING:
            # Fully acknowledged (or failed): the operation can no longer be
            # redirected, so release the pinned signed entries — otherwise
            # memory grows with every write ever issued, not with in-flight
            # writes.
            entries = record.details.pop("entries", None)
            if (
                entries
                and record.phase is not CommitPhase.FAILED
                and record.details.get("txn_id") is None
            ):
                # Acknowledged plain writes feed the coordinator's own-write
                # memory: an abort deciding later must never register (and
                # then dispute) a pair this client committed itself.
                self.txns.note_entries(entries)

    def _accepts_proof(self, proof: Any) -> bool:
        # Any fleet edge may certify blocks for this client's operations;
        # per-record edge matching pins each proof to the edge that served
        # the operation, and the cloud pin stays strict.
        return proof.cloud == self.cloud

    def _root_version_key(self, record: OperationRecord) -> Any:
        return (self._expected_edge(record), record.details.get("shard_id"))

    def _block_should_exist(self, record: OperationRecord, block_id: int) -> bool:
        return self.fleet_view.block_should_exist(
            self._expected_edge(record), block_id
        )

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, sender: NodeId, message: Any) -> None:
        if isinstance(message, ShardMapMessage):
            self.fleet_view.shard_map.update(self.env.registry, message)
            return
        if isinstance(message, NotOwnerRedirect):
            self._handle_not_owner(sender, message)
            return
        if isinstance(message, ShardDisputeVerdict):
            self.shard_verdicts.append(message)
            return
        if isinstance(message, TxnPrepareReceipt):
            self.txns.on_receipt(sender, message)
            return
        if isinstance(message, TxnPrepareRejection):
            self.txns.on_rejection(sender, message)
            return
        if isinstance(message, TxnDecisionAck):
            self.txns.on_ack(sender, message)
            return
        if isinstance(message, TxnDisputeVerdict):
            self.txn_verdicts.append(message)
            return
        super().on_message(sender, message)

    def _handle_gossip(
        self, sender: NodeId, message: "GossipMessage | GossipBatchMessage"
    ) -> None:
        if not verify_gossip(self.env.registry, message, cloud=self.cloud):
            return
        self.fleet_view.update_log_sizes(message)
        self.gossip_view.update(message)

    # ------------------------------------------------------------------
    # Redirect handling
    # ------------------------------------------------------------------
    def _handle_not_owner(self, sender: NodeId, redirect: NotOwnerRedirect) -> None:
        params = self.env.params
        self.env.charge(params.verify_seconds)
        statement = redirect.statement
        if statement.edge != sender or not self.env.registry.verify(
            redirect.signature, statement
        ):
            return
        if redirect.shard_map is not None:
            self.fleet_view.shard_map.update(self.env.registry, redirect.shard_map)
        if statement.operation_id not in self.tracker:
            return
        record = self.tracker.get(statement.operation_id)
        if record.phase is not CommitPhase.PENDING:
            # Only a still-pending operation can be re-routed: once some
            # owner acknowledged it, a (stale or stray) redirect is noise.
            return
        now = self.env.now()
        redirects = record.details.get("redirects", 0)
        if redirects >= self._max_redirects:
            self.stats["redirect_failures"] += 1
            self.tracker.mark_failed(
                record.operation_id, now, "redirect limit exceeded"
            )
            return
        owner = self.fleet_view.shard_map.owner_of(statement.shard_id)
        if owner is None or owner == statement.edge:
            # The client's map still names the redirecting edge (or nothing):
            # trust the redirect's forward-looking hint.
            owner = statement.owner
        if owner is None or owner == statement.edge:
            self.stats["redirect_failures"] += 1
            self.tracker.mark_failed(
                record.operation_id, now, "no resolvable shard owner"
            )
            return

        record.details["redirects"] = redirects + 1
        record.details["edge"] = owner
        record.details["map_version"] = self.fleet_view.shard_map.version
        self.stats["redirects_followed"] += 1
        self._reissue(record, owner, statement.shard_id)

    def _reissue(
        self, record: OperationRecord, owner: NodeId, shard_id: ShardId
    ) -> None:
        """Re-send an operation (same id, same signed entries) to *owner*."""

        txn_id = record.details.get("txn_id")
        if txn_id is not None and record.details.get("txn_prepare"):
            # Redirect-aware participant resolution: the same signed prepare
            # goes to the owner the redirect (and the refreshed map) named.
            self.txns.reroute_prepare(txn_id, shard_id, owner)
            return
        if record.is_write:
            entries = record.details.get("entries")
            if entries is None:
                self.tracker.mark_failed(
                    record.operation_id, self.env.now(), "cannot replay write"
                )
                return
            self.env.send(
                self.node_id,
                owner,
                AppendBatchRequest(
                    requester=self.node_id,
                    operation_id=record.operation_id,
                    kind=record.kind,
                    entries=entries,
                    request_block=self.config.logging.return_block_on_add,
                    shard_id=shard_id,
                ),
            )
        elif record.kind is OperationKind.GET:
            self.env.send(
                self.node_id,
                owner,
                GetRequest(
                    requester=self.node_id,
                    operation_id=record.operation_id,
                    key=record.details["key"],
                ),
            )
        elif record.kind is OperationKind.READ:
            self.env.send(
                self.node_id,
                owner,
                ReadRequest(
                    requester=self.node_id,
                    operation_id=record.operation_id,
                    block_id=record.details["block_id"],
                ),
            )

    # ------------------------------------------------------------------
    # Stale-owner detection
    # ------------------------------------------------------------------
    def _handle_get_response(self, sender: NodeId, response: GetResponse) -> None:
        statement = response.statement
        if statement.operation_id in self.tracker:
            record = self.tracker.get(statement.operation_id)
            shard_id = record.details.get("shard_id")
            if shard_id is not None and self._is_stale_owner_response(
                record, statement, shard_id
            ):
                if statement.edge in self.fleet_view.shard_map.replicas_of(
                    shard_id
                ):
                    # A read replica answered.  Its serving authority is the
                    # cloud-signed lease it attached; a covering lease makes
                    # this an ordinary verified read, anything else is the
                    # convictable stale-replica serve.
                    if not self._replica_lease_covers(
                        response.lease, statement, shard_id
                    ):
                        if statement.edge == self._expected_edge(
                            record
                        ) and self.env.registry.verify(
                            response.signature, statement
                        ):
                            self.stats["stale_replica_detections"] += 1
                            self._record_suspicion(
                                "stale-replica-serve", None, record.operation_id
                            )
                            self._send_stale_replica_dispute(
                                statement.edge,
                                shard_id,
                                statement,
                                response.signature,
                                response.lease,
                            )
                            self.tracker.mark_failed(
                                record.operation_id,
                                self.env.now(),
                                "replica served without a covering lease",
                            )
                        return
                elif statement.edge == self._expected_edge(
                    record
                ) and self.env.registry.verify(response.signature, statement):
                    # The edge's own signed statement is the evidence.
                    self.stats["stale_owner_detections"] += 1
                    self._record_suspicion(
                        "stale-owner-serve", None, record.operation_id
                    )
                    self._send_shard_dispute(
                        statement.edge, shard_id, statement, response.signature
                    )
                    self.tracker.mark_failed(
                        record.operation_id,
                        self.env.now(),
                        "served by an edge that no longer owns the shard",
                    )
                    return
                else:
                    # Unverifiable non-owner responses are dropped outright:
                    # a forger must not be able to kill an in-flight
                    # operation whose genuine response is still on the wire.
                    return
        super()._handle_get_response(sender, response)
        # Post-verification staged-abort-serve detection: only a value whose
        # *proven* record sequence places it at or after the prepare
        # receipt's staged log position can be the aborted staged write — a
        # pre-transaction write of the same bytes never trips the dispute.
        # Lazy-trust remedy, not a read veto: the response did verify
        # against certified state, so the value stands and the edge's own
        # signed artifacts convict it at the cloud.
        if statement.operation_id in self.tracker:
            record = self.tracker.get(statement.operation_id)
            if (
                statement.edge == sender
                and record.details.get("found")
                and self.txns.maybe_dispute_staged_serve(
                    statement,
                    response.signature,
                    record.details.get("record_sequence"),
                    proof=response.proof,
                )
            ):
                self.stats["staged_serve_detections"] += 1

    def _is_stale_owner_response(
        self, record: OperationRecord, statement, shard_id: ShardId
    ) -> bool:
        """The client's verified map says the serving edge is not the owner.

        An honest edge caught by an in-flight ownership change is acquitted
        at the cloud (the ownership history is checked against the signed
        statement's ``issued_at``), so the client can afford to dispute
        every non-owner response rather than guess at timing.
        """

        current_owner = self.fleet_view.shard_map.owner_of(shard_id)
        return current_owner is not None and statement.edge != current_owner

    def _replica_lease_covers(
        self,
        lease: Optional[ReplicaLease],
        statement,
        shard_id: ShardId,
    ) -> bool:
        """Whether the attached lease authorized this replica's response.

        The lease must be cloud-signed for exactly this replica and shard,
        and its expiry must cover the statement's ``issued_at`` — the same
        rule :func:`repro.core.dispute.judge_stale_replica_dispute` applies,
        so a response this check rejects is a conviction, never a guess.
        """

        if lease is None:
            return False
        if lease.statement.cloud != self.cloud or not lease.verify(
            self.env.registry
        ):
            return False
        if lease.replica != statement.edge or lease.shard_id != shard_id:
            return False
        return statement.issued_at <= lease.expires_at

    def _read_provenance(self, record: OperationRecord) -> tuple[NodeId, ...]:
        shard_id = record.details.get("shard_id")
        if shard_id is None:
            return ()
        view = self.fleet_view.shard_map
        writers = {view.owner_of(shard_id), *view.provenance_of(shard_id)}
        writers.discard(None)
        writers.discard(self._expected_edge(record))
        return tuple(sorted(writers, key=str))

    def _send_stale_replica_dispute(
        self,
        accused: NodeId,
        shard_id: ShardId,
        statement,
        signature,
        lease: Optional[ReplicaLease],
    ) -> None:
        self.stats["shard_disputes_sent"] += 1
        self.env.send(
            self.node_id,
            self.cloud,
            ShardDispute(
                reporter=self.node_id,
                accused=accused,
                shard_id=shard_id,
                kind="stale-replica-serve",
                serve_statement=statement,
                serve_signature=signature,
                lease=lease,
            ),
        )

    def _send_shard_dispute(
        self, accused: NodeId, shard_id: ShardId, statement, signature
    ) -> None:
        self.stats["shard_disputes_sent"] += 1
        self.env.send(
            self.node_id,
            self.cloud,
            ShardDispute(
                reporter=self.node_id,
                accused=accused,
                shard_id=shard_id,
                kind="stale-owner-serve",
                serve_statement=statement,
                serve_signature=signature,
            ),
        )
