"""The shard-aware edge node: one partition of state per owned shard.

A :class:`ShardedEdgeNode` serves several key-space shards at once, each
with its own :class:`~repro.nodes.edge.PartitionState` (log, buffer,
certifier, LSMerkle index, merge bookkeeping).  Block ids stay unique per
*edge* (the invariant the cloud's certified-digest map relies on) through a
shared edge-wide allocator; a side table remembers which shard each block
belongs to so proofs, certificates, and merge outcomes route back to the
right partition.

Requests for shards the edge does not own are answered with a signed
``NotOwnerRedirect`` carrying the edge's latest cloud-signed shard map.
Rebalancing runs the certified handoff protocol of
:mod:`repro.sharding.handoff`: drain, offer (digests only), cloud
countersign, transfer, destination-side verification — with a shard dispute
raised when the transferred bytes contradict the countersigned state digest.

Two malicious variants exercise the fleet's detection paths:
``TamperingHandoffEdgeNode`` ships tampered blocks during a handoff (its own
signed transfer statement convicts it), and ``StaleShardOwnerEdgeNode``
keeps serving a shard after handing it off (the cloud's ownership history
convicts it from any signed response).
"""

from __future__ import annotations

import copy
from typing import Any, Optional

from ..common.config import SystemConfig
from ..common.identifiers import BlockId, NodeId, OperationId, ShardId
from ..common.regions import Region
from ..log.wedge_log import LogRecord, WedgeLog
from ..lsmerkle.mlsm import MerkleizedLSM
from ..lsmerkle.codec import decode_put, is_put_payload, page_from_block
from ..messages.kv_messages import (
    GetRequest,
    MergeRejection,
    MergeRequest,
    MergeResponse,
    RootRefreshResponse,
)
from ..messages.log_messages import (
    AppendBatchRequest,
    BatchCertificateMessage,
    BlockProofMessage,
    CertifyRejection,
    ReadRequest,
)
from ..messages.txn_messages import (
    TXN_ABORT,
    TXN_COMMIT,
    TxnDecisionMessage,
    TxnDispute,
    TxnDisputeVerdict,
    TxnPrepareRequest,
    TxnWrite,
)
from ..messages.shard_messages import (
    NotOwnerRedirect,
    NotOwnerStatement,
    ReplicaLease,
    ReplicaLogShipment,
    ReplicaPromotionGrant,
    ReplicaPromotionOffer,
    ReplicaPromotionOrder,
    ReplicaShipmentAck,
    ShardDispute,
    ShardDisputeVerdict,
    ShardHandoffGrant,
    ShardHandoffOrder,
    ShardHandoffRejection,
    ShardHandoffRequest,
    ShardHandoffStatement,
    ShardInstallAck,
    ShardMapMessage,
    ShardQuarantineNotice,
    ShardTransferMessage,
    ShardTransferStatement,
    WriterHeartbeat,
)
from ..common.errors import StorageError
from ..faults.retry import RetryPolicy
from ..nodes.edge import EdgeNode, PartitionState
from ..sim.environment import Environment
from .handoff import (
    level_roots_from_pages,
    seed_partition_store,
    shard_state_digest,
)
from .partitioner import KeyPartitioner
from .shard_map import ShardMapView


class ShardedEdgeNode(EdgeNode):
    """An honest edge node serving one ``PartitionState`` per owned shard."""

    #: Retransmission schedule for lost handoff offers and state transfers.
    #: Both messages carry (or lead to) idempotently-handled state — the
    #: cloud re-issues a stored grant for a duplicate offer and the dest
    #: re-acks a duplicate transfer — so blind retries are safe.
    HANDOFF_RETRY_POLICY = RetryPolicy(base_s=1.0, factor=2.0, cap_s=8.0, max_attempts=4)

    def __init__(
        self,
        env: Environment,
        cloud: NodeId,
        config: Optional[SystemConfig] = None,
        name: str = "edge-0",
        region: Optional[Region] = None,
        partitioner: Optional[KeyPartitioner] = None,
    ) -> None:
        super().__init__(env=env, cloud=cloud, config=config, name=name, region=region)
        if partitioner is None:
            raise ValueError("ShardedEdgeNode requires a partitioner")
        self.partitioner = partitioner
        self.map_view = ShardMapView(cloud=cloud)
        #: Live partition state of every currently-owned shard.
        self._shard_states: dict[ShardId, PartitionState] = {}
        #: Which shard each locally formed block belongs to.
        self._block_shards: dict[BlockId, ShardId] = {}
        #: Edge-wide block id allocator: ids must stay unique per edge even
        #: though every shard keeps its own log.
        self._next_block_id: BlockId = 0
        #: Shards mid-handoff (drain started, grant not yet processed),
        #: mapped to their destination edge.
        self._migrating: dict[ShardId, NodeId] = {}
        #: Handed-off blocks kept for log reads (they remain certified under
        #: this edge's name, so denying them would look like an omission).
        self._archived_records: dict[BlockId, LogRecord] = {}
        #: Blocks adopted through handoffs, keyed by (source edge, block id)
        #: — an audit archive; their ids live in the source's id space.
        self._imported_blocks: dict[tuple[NodeId, BlockId], tuple[Any, Any]] = {}
        #: Requests this edge cannot serve *yet* but will be able to resolve
        #: shortly: for a shard mid-migration they are replayed after the
        #: grant (turning into truthful redirects under the new map), and
        #: for an owned-but-not-installed shard after the state transfer.
        self._parked_requests: dict[ShardId, list[tuple[NodeId, Any]]] = {}
        #: Entries logged per shard (drives the fleet's rebalance trigger).
        self.shard_entry_counts: dict[ShardId, int] = {}
        #: Shard-dispute verdicts delivered to this edge.
        self.shard_verdicts: list[ShardDisputeVerdict] = []
        #: Transaction-dispute verdicts delivered to this edge (as accused).
        self.txn_verdicts: list[TxnDisputeVerdict] = []
        #: Armed handoff retransmission timers, keyed (kind, shard id) with
        #: ``kind`` in {"offer", "transfer"}.  Volatile: a crash drops them
        #: (the peer's own retry or the cloud's re-order recovers).
        self._handoff_retries: dict[tuple[str, ShardId], Any] = {}
        #: Handoffs this edge already refused, keyed by the countersigned
        #: certificate ``(source, shard id, state digest)``: one certificate
        #: gets one trial, so a retransmitted or re-signed transfer under a
        #: refused certificate is dropped without re-judging it — and
        #: crucially without filing a duplicate dispute per redelivery.
        self._refused_transfers: set[tuple[NodeId, ShardId, str]] = set()
        #: Outgoing state transfers awaiting the destination's install ack,
        #: kept verbatim for retransmission: the source deletes its live
        #: partition when it ships the transfer, so a lost transfer would
        #: otherwise wedge the shard (neither side could serve it).
        self._outgoing_transfers: dict[ShardId, tuple[ShardTransferMessage, NodeId]] = {}
        #: Handoff-drain span contexts by shard id (observability only):
        #: offer and transfer spans link back to the drain that started them.
        self._obs_handoff: dict[ShardId, Any] = {}
        #: Read-replica mirrors of shards this edge replicates but does not
        #: own.  Deliberately *excluded* from ``_partition_states()``: a
        #: mirror is a verified copy of another edge's certified log, not
        #: this edge's own serving state, so invariant sweeps, crash wipes,
        #: and certification scans must not treat it as such.
        self._replica_states: dict[ShardId, PartitionState] = {}
        #: Cloud-signed serving leases this node holds, by shard — as the
        #: shard's writer (gate on client-facing ops) or as one of its read
        #: replicas (attached to every get response it serves).
        self._shard_leases: dict[ShardId, ReplicaLease] = {}
        #: Writer-side shipping bookkeeping: highest block id each replica
        #: has acknowledged, keyed ``(shard id, replica)``; ``-1`` = nothing.
        self._replica_watermarks: dict[tuple[ShardId, NodeId], BlockId] = {}
        #: Lease to attach to the get response currently being built (set by
        #: the replica-serving branch of ``_resolve_serving``, popped by
        #: ``_response_lease``).
        self._serving_lease: Optional[ReplicaLease] = None
        #: Stopper of the periodic log-shipping tick.  ``None`` until this
        #: edge owns a replicated shard — a ``replication_factor=1`` fleet
        #: never starts the timer, keeping the default byte-identical.
        self._replication_stopper: Optional[Any] = None

        self.stats.update(
            {
                "shard_redirects": 0,
                "shard_handoffs_offered": 0,
                "shard_handoffs_out": 0,
                "shard_handoffs_in": 0,
                "shard_handoff_rejections": 0,
                "shard_transfer_invalid": 0,
                "shard_disputes_sent": 0,
                "shard_map_updates": 0,
                "shard_offer_retries": 0,
                "shard_transfer_retries": 0,
                "shard_transfer_acks": 0,
                "replica_shipments_sent": 0,
                "replica_shipments_installed": 0,
                "replica_shipments_rejected": 0,
                "replica_reads": 0,
                "replica_lease_updates": 0,
                "writer_lease_waits": 0,
                "shard_depositions": 0,
                "shard_promotions": 0,
                "promotion_offers": 0,
                "shard_quarantine_notices": 0,
            }
        )

    # ------------------------------------------------------------------
    # Shard map handling
    # ------------------------------------------------------------------
    def adopt_shard_map(self, message: ShardMapMessage) -> None:
        """Install the initial cloud-signed shard map (fleet construction).

        Creates an empty partition for every shard this edge owns.  Later
        map versions arrive as messages and never create state directly —
        new ownership always comes with a certified state transfer.
        """

        if not self.map_view.update(self.env.registry, message):
            return
        self.stats["shard_map_updates"] += 1
        for shard_id in self.map_view.shards_owned_by(self.node_id):
            if shard_id not in self._shard_states:
                self._shard_states[shard_id] = self._new_partition(shard_id)
        self._reconcile_with_map()

    def owned_shards(self) -> tuple[ShardId, ...]:
        return tuple(sorted(self._shard_states))

    def shard_state(self, shard_id: ShardId) -> Optional[PartitionState]:
        return self._shard_states.get(shard_id)

    def replica_state(self, shard_id: ShardId) -> Optional[PartitionState]:
        return self._replica_states.get(shard_id)

    def _handle_shard_map(self, sender: NodeId, message: ShardMapMessage) -> None:
        if self.map_view.update(self.env.registry, message):
            self.stats["shard_map_updates"] += 1
            self._reconcile_with_map()

    def _reconcile_with_map(self) -> None:
        """Align local serving state with a freshly adopted shard map.

        All three concerns are replication-only (an unreplicated fleet's
        map never moves ownership outside the handoff flow, which retires
        its own state):

        * a shard this edge serves but the map now assigns elsewhere is
          *deposed* state — a failover promoted a replica while this
          writer was crashed or partitioned.  The honest reaction is to
          stop serving immediately: archive the blocks (they stay
          certified under this edge's name, so log reads must keep
          resolving) and drop the partition.  Shards mid-handoff are
          skipped — the grant/transfer flow retires those itself.
        * a shard the map names this edge a replica of gets a mirror
          partition, filled by the writer's certified log shipments;
        * a mirror this edge no longer replicates is dropped — unless the
          map promoted *this* edge, in which case the promotion grant is
          about to convert the mirror into the serving partition.
        """

        for shard_id in sorted(self._shard_states):
            if self.map_view.owner_of(shard_id) == self.node_id:
                continue
            if shard_id in self._migrating or shard_id in self._outgoing_transfers:
                continue
            self._retire_deposed_state(shard_id)
        replicated = set(self.map_view.shards_replicated_by(self.node_id))
        for shard_id in sorted(replicated):
            writer = self.map_view.owner_of(shard_id)
            if writer == self.node_id or writer is None:
                continue
            state = self._replica_states.get(shard_id)
            if state is not None and state.owner != writer:
                # The shard failed over to a *different* replica: re-key
                # the mirror to the promoted writer but keep the certified
                # blocks already installed — they remain valid under the
                # shard's provenance chain, and serving them bridges the
                # gap until the new writer's first shipment lands (which
                # replaces the index snapshot wholesale anyway).
                fresh = self._new_replica_state(shard_id, writer)
                for record in state.log:
                    fresh.log.append(record.block)
                    if record.proof is not None:
                        fresh.log.attach_proof(record.proof)
                fresh.index = state.index
                fresh.level_zero_blocks = state.level_zero_blocks
                fresh.signed_root = state.signed_root
                self._replica_states[shard_id] = fresh
                state = fresh
            if state is None:
                self._replica_states[shard_id] = self._new_replica_state(
                    shard_id, writer
                )
        for shard_id in sorted(self._replica_states):
            if shard_id in replicated:
                continue
            if self.map_view.owner_of(shard_id) == self.node_id:
                continue  # promotion in flight: the grant consumes the mirror
            del self._replica_states[shard_id]
            self._shard_leases.pop(shard_id, None)
        self._maybe_start_replication()

    def _retire_deposed_state(self, shard_id: ShardId) -> None:
        state = self._shard_states.pop(shard_id)
        for record in state.log:
            self._archived_records[record.block.block_id] = record
        if state.store is not None:
            state.store.retire()
        self._shard_leases.pop(shard_id, None)
        for key in [k for k in self._replica_watermarks if k[0] == shard_id]:
            del self._replica_watermarks[key]
        self.stats["shard_depositions"] += 1
        # Requests parked behind the writer's lease gate now resolve to
        # truthful signed redirects under the new map.
        for parked_sender, parked_message in self._parked_requests.pop(shard_id, []):
            self.on_message(parked_sender, parked_message)

    def _new_replica_state(self, shard_id: ShardId, writer: NodeId) -> PartitionState:
        # Constructed directly rather than via ``_new_partition``: a mirror
        # is volatile by design (no durable store — it rebuilds from the
        # writer's shipping stream) and its log holds the *writer's* blocks,
        # extended by the shard's provenance chain after failovers.
        state = PartitionState(
            owner=writer, config=self.config, shard_id=shard_id
        )
        state.log = WedgeLog(
            writer, co_owners=self.map_view.provenance_of(shard_id)
        )
        return state

    # ------------------------------------------------------------------
    # Message dispatch / partition resolution
    # ------------------------------------------------------------------
    def on_message(self, sender: NodeId, message: Any) -> None:
        if isinstance(message, TxnDecisionMessage):
            # One decision may cover several shards this edge owns: apply it
            # to every owned participant partition (each keeps its own
            # staged/decided state).  Decisions bypass the serving
            # resolution on purpose — a shard mid-handoff must still be
            # able to resolve its staged prepares, that is exactly what the
            # drain is waiting for.
            self._handle_txn_decision_fleet(sender, message)
            return
        if isinstance(message, ShardMapMessage):
            self._handle_shard_map(sender, message)
        elif isinstance(message, ShardHandoffOrder):
            self._handle_handoff_order(sender, message)
        elif isinstance(message, ShardHandoffGrant):
            self._handle_handoff_grant(sender, message)
        elif isinstance(message, ShardHandoffRejection):
            self._handle_handoff_rejection(sender, message)
        elif isinstance(message, ShardTransferMessage):
            self._handle_shard_transfer(sender, message)
        elif isinstance(message, ShardInstallAck):
            self._handle_install_ack_from_dest(sender, message)
        elif isinstance(message, ReplicaLease):
            self._handle_replica_lease(sender, message)
        elif isinstance(message, ReplicaLogShipment):
            self._handle_replica_shipment(sender, message)
        elif isinstance(message, ReplicaShipmentAck):
            self._handle_replica_shipment_ack(sender, message)
        elif isinstance(message, ReplicaPromotionOrder):
            self._handle_promotion_order(sender, message)
        elif isinstance(message, ReplicaPromotionGrant):
            self._handle_promotion_grant(sender, message)
        elif isinstance(message, ShardDisputeVerdict):
            self.shard_verdicts.append(message)
        elif isinstance(message, TxnDisputeVerdict):
            self._handle_txn_verdict(sender, message)
        else:
            super().on_message(sender, message)

    def _partition_states(self):
        return (self._default_partition, *self._shard_states.values())

    def _shard_of_append(self, request: AppendBatchRequest) -> Optional[ShardId]:
        if request.shard_id is not None:
            return request.shard_id
        for entry in request.entries:
            if is_put_payload(entry.payload):
                key, _ = decode_put(entry.payload)
                return self.partitioner.shard_of(key)
        # Pure logging batches (no keys) stay on the default partition.
        return None

    def _partition_for_message(
        self, sender: NodeId, message: Any
    ) -> Optional[PartitionState]:
        if isinstance(message, AppendBatchRequest):
            shard_id = self._shard_of_append(message)
            if shard_id is None:
                return self._default_partition
            return self._resolve_serving(sender, message, shard_id, message.operation_id)
        if isinstance(message, GetRequest):
            shard_id = self.partitioner.shard_of(message.key)
            return self._resolve_serving(sender, message, shard_id, message.operation_id)
        if isinstance(message, TxnPrepareRequest):
            # Prepares resolve like client writes: redirect when this edge
            # is not the owner, park mid-migration (after the grant the
            # replay becomes a truthful redirect under the new map).
            return self._resolve_serving(
                sender, message, message.shard_id, message.operation_id
            )
        if isinstance(message, ReadRequest):
            shard_id = self._block_shards.get(message.block_id)
            state = self._shard_states.get(shard_id) if shard_id is not None else None
            # Unknown and archived blocks are answered from the default
            # partition; ``_read_record`` falls back to the archive.
            return state if state is not None else self._default_partition
        if isinstance(message, BlockProofMessage):
            return self._partition_for_block(message.proof.block_id)
        if isinstance(message, CertifyRejection):
            return self._partition_for_block(message.block_id)
        if isinstance(message, BatchCertificateMessage):
            if not message.blocks:
                return None
            return self._partition_for_block(message.blocks[0][0])
        if isinstance(message, MergeResponse):
            return self._partition_for_shard_field(message.outcome.shard_id)
        if isinstance(message, MergeRejection):
            return self._partition_for_shard_field(message.shard_id)
        if isinstance(message, RootRefreshResponse):
            return self._partition_for_shard_field(message.shard_id)
        return self._default_partition

    def _partition_for_block(self, block_id: BlockId) -> Optional[PartitionState]:
        shard_id = self._block_shards.get(block_id)
        if shard_id is None:
            return self._default_partition
        return self._shard_states.get(shard_id)  # None drops post-handoff strays

    def _partition_for_shard_field(
        self, shard_id: Optional[ShardId]
    ) -> Optional[PartitionState]:
        if shard_id is None:
            return self._default_partition
        return self._shard_states.get(shard_id)

    def _resolve_serving(
        self,
        sender: NodeId,
        message: Any,
        shard_id: ShardId,
        operation_id: OperationId,
    ) -> Optional[PartitionState]:
        """Partition for a client request, or ``None`` after a redirect/queue."""

        owner = self.map_view.owner_of(shard_id)
        if owner == self.node_id:
            if shard_id in self._migrating:
                # Mid-drain nobody can serve the shard truthfully (the map
                # still names this edge, the destination has no state):
                # park the request until the grant republishes the map.
                self._parked_requests.setdefault(shard_id, []).append(
                    (sender, message)
                )
                return None
            state = self._shard_states.get(shard_id)
            if state is None:
                # Owned per the map but the certified transfer has not
                # arrived: park and replay once the shard is installed.
                self._parked_requests.setdefault(shard_id, []).append(
                    (sender, message)
                )
                return None
            if self.map_view.replicas_of(shard_id) and not self._writer_lease_valid(
                shard_id
            ):
                # Replicated shards serve under a cloud-signed lease.  An
                # honest writer that lost contact with the cloud parks here
                # instead of serving past the lease the failover path waits
                # out — which is exactly what makes promotion safe without
                # any new signatures: by the time the cloud promotes a
                # replica, an honest deposed writer has provably stopped.
                self.stats["writer_lease_waits"] += 1
                self._parked_requests.setdefault(shard_id, []).append(
                    (sender, message)
                )
                return None
            return state
        if isinstance(message, GetRequest) and shard_id in self._replica_states:
            lease = self._shard_leases.get(shard_id)
            if self._replica_lease_valid(lease, self.env.now()):
                # A read replica answers under its serving lease, which it
                # attaches to the signed response: a client can check the
                # lease covered ``issued_at`` and convict a replica serving
                # past it (``stale-replica-serve``).
                self.stats["replica_reads"] += 1
                self._serving_lease = lease
                return self._replica_states[shard_id]
        self._send_not_owner_redirect(sender, operation_id, shard_id)
        return None

    def _writer_lease_valid(self, shard_id: ShardId) -> bool:
        lease = self._shard_leases.get(shard_id)
        return lease is not None and lease.expires_at >= self.env.now()

    def _replica_lease_valid(
        self, lease: Optional[ReplicaLease], now: float
    ) -> bool:
        return lease is not None and lease.expires_at >= now

    def _response_lease(self) -> Optional[ReplicaLease]:
        lease, self._serving_lease = self._serving_lease, None
        return lease

    def _send_not_owner_redirect(
        self, sender: NodeId, operation_id: OperationId, shard_id: ShardId
    ) -> None:
        params = self.env.params
        self.env.charge(params.request_overhead_seconds + params.sign_seconds)
        owner = self.map_view.owner_of(shard_id)
        if shard_id in self._migrating:
            owner = self._migrating[shard_id]
        statement = NotOwnerStatement(
            edge=self.node_id,
            operation_id=operation_id,
            shard_id=shard_id,
            owner=owner,
            map_version=self.map_view.version,
            issued_at=self.env.now(),
        )
        self.stats["shard_redirects"] += 1
        self.env.send(
            self.node_id,
            sender,
            NotOwnerRedirect(
                statement=statement,
                signature=self.env.registry.sign(self.node_id, statement),
                shard_map=self.map_view.message,
            ),
        )

    # ------------------------------------------------------------------
    # Cross-shard transactions (participant side, fleet-specific plumbing)
    # ------------------------------------------------------------------
    def _handle_txn_decision_fleet(
        self, sender: NodeId, message: TxnDecisionMessage
    ) -> None:
        statement = message.statement
        owned = [
            state
            for shard_id in statement.participant_shards
            if (state := self._shard_states.get(shard_id)) is not None
        ]
        if not owned:
            # No owned participant shard (e.g. the shard was handed off
            # after its stage resolved): nothing to decide here.
            self.stats.setdefault("txn_decisions_unowned", 0)
            self.stats["txn_decisions_unowned"] += 1
            return
        # One delivered message costs one request overhead and one signature
        # verification however many co-located participant shards apply it;
        # only the staging work scales with the shards' staged writes.
        staged_writes = sum(
            len(state.staged_txns[statement.txn_id].entries)
            for state in owned
            if statement.txn_id in state.staged_txns
        )
        self.env.charge(self.env.params.txn_decision_cost(staged_writes))
        if statement.decision not in (TXN_COMMIT, TXN_ABORT):
            return
        if not message.verify(self.env.registry):
            return
        for state in owned:
            with self._as_active(state):
                self._apply_txn_decision(message)

    def _handle_txn_verdict(
        self, sender: NodeId, verdict: TxnDisputeVerdict
    ) -> None:
        """A conviction naming this edge may prove the coordinator forked.

        The cloud forwards a punishing ``staged-abort-serve`` verdict to
        the accused with the coordinator-signed abort that convicted it.
        If this edge applied the same transaction under a coordinator-
        signed *commit* (kept in the decided-transaction tombstone), it now
        holds two contradictory signed decisions — self-contained evidence
        that convicts the equivocating coordinator.
        """

        if sender != self.cloud:
            return
        self.txn_verdicts.append(verdict)
        if (
            not verdict.punished
            or verdict.accused != self.node_id
            or verdict.decision is None
        ):
            return
        for state in self._shard_states.values():
            decided = state.decided_txns.get(verdict.txn_id)
            if decided is None:
                continue
            _decision, _block_id, _shard_id, acted_on = decided
            if (
                acted_on is not None
                and acted_on.decision != verdict.decision.decision
            ):
                self.stats.setdefault("txn_equivocation_disputes", 0)
                self.stats["txn_equivocation_disputes"] += 1
                self.env.send(
                    self.node_id,
                    self.cloud,
                    TxnDispute(
                        reporter=self.node_id,
                        accused=verdict.txn_id.coordinator,
                        txn_id=verdict.txn_id,
                        kind="coordinator-equivocation",
                        decision=acted_on,
                        second_decision=verdict.decision,
                    ),
                )
                return

    def _txn_shard_ok(self, shard_id: ShardId, key: str) -> bool:
        return self.partitioner.shard_of(key) == shard_id

    def _peek_next_block_id(self) -> BlockId:
        return self._next_block_id

    def _after_txn_resolved(self, shard_id) -> None:
        if shard_id is not None and shard_id in self._migrating:
            self._advance_handoff(shard_id)

    # ------------------------------------------------------------------
    # Block bookkeeping
    # ------------------------------------------------------------------
    def _allocate_block_id(self) -> BlockId:
        block_id = self._next_block_id
        self._next_block_id += 1
        shard_id = self._active.shard_id
        if shard_id is not None:
            self._block_shards[block_id] = shard_id
            self.shard_entry_counts.setdefault(shard_id, 0)
        return block_id

    def _form_block(self, batch) -> None:
        super()._form_block(batch)
        shard_id = self._active.shard_id
        if shard_id is not None:
            self.shard_entry_counts[shard_id] = self.shard_entry_counts.get(
                shard_id, 0
            ) + len(batch.entries)
            if self._metrics is not None:
                self._metrics.gauge("shard_entries", shard=str(shard_id)).set(
                    self.shard_entry_counts[shard_id]
                )

    def _read_record(self, block_id: BlockId):
        record = super()._read_record(block_id)
        if record is None:
            record = self._archived_records.get(block_id)
        return record

    # ------------------------------------------------------------------
    # Handoff retransmission timers
    # ------------------------------------------------------------------
    def _arm_handoff_retry(self, kind: str, shard_id: ShardId, attempt: int, resend) -> None:
        """Arm one retransmission timer for a lossy handoff step.

        ``resend`` re-ships the message and returns ``True`` to keep the
        retry chain alive; returning ``False`` (the step completed or was
        superseded while the timer was pending) ends it.  Exhausting the
        policy leaves the shard for operator/cloud-driven recovery rather
        than retrying forever against a dead peer.
        """

        policy = self.HANDOFF_RETRY_POLICY
        if not policy.allows(attempt):
            return
        key = (kind, shard_id)

        def fire() -> None:
            # A cancelled or superseded timer: ``_cancel_handoff_retry``
            # popped the key, or a newer arm replaced the handle.
            if self._handoff_retries.get(key) is not handle:
                return
            del self._handoff_retries[key]
            if resend():
                self._arm_handoff_retry(kind, shard_id, attempt + 1, resend)

        handle = self.env.schedule(
            policy.delay(attempt), fire, label=f"{self.node_id}:handoff-{kind}-retry"
        )
        self._handoff_retries[key] = handle

    def _cancel_handoff_retry(self, kind: str, shard_id: ShardId) -> None:
        handle = self._handoff_retries.pop((kind, shard_id), None)
        if handle is not None:
            handle.cancel()

    # ------------------------------------------------------------------
    # Handoff: source side
    # ------------------------------------------------------------------
    def _handle_handoff_order(self, sender: NodeId, order: ShardHandoffOrder) -> None:
        if sender != self.cloud or order.source != self.node_id:
            return
        shard_id = order.shard_id
        state = self._shard_states.get(shard_id)
        if state is None or shard_id in self._migrating:
            return
        if self.map_view.owner_of(shard_id) != self.node_id:
            return
        self._migrating[shard_id] = order.dest
        tracer = self._obs_tracer
        if tracer is None:
            self._begin_handoff_drain(state, shard_id)
            return
        # Root span of this handoff's trace: offer, transfer, and install
        # spans (on both edges) link back to the drain that started it.
        with tracer.span(
            "handoff.drain", parent=None, node=str(self.node_id), shard=str(shard_id)
        ) as span:
            self._obs_handoff[shard_id] = span.context
            self._begin_handoff_drain(state, shard_id)

    def _begin_handoff_drain(self, state: PartitionState, shard_id: ShardId) -> None:
        with self._as_active(state):
            if state.staged_txns:
                # Staged cross-shard prepares must resolve (decision or
                # expiry) before the shard can be offered away: their
                # decision records belong in *this* partition's certified
                # log, and the coordinators hold receipts naming this edge.
                self.stats.setdefault("handoff_txn_waits", 0)
                self.stats["handoff_txn_waits"] += 1
            if self.certifier.in_flight_count:
                # A pipelined shard may have a whole window of certify
                # batches outstanding when the order arrives; the drain
                # below waits for the window (certificates keep absorbing
                # out of order and re-advance the handoff as they land).
                self.stats.setdefault("handoff_window_waits", 0)
                self.stats["handoff_window_waits"] += 1
            # Stop accepting new writes (requests now redirect to the dest);
            # flush the partial block so the log prefix is complete.
            batch = self.buffer.flush()
            if batch is not None:
                self._form_block(batch)
            self._advance_handoff(shard_id)

    def _advance_handoff(self, shard_id: ShardId) -> None:
        """Drive the drain state machine; called whenever progress is possible.

        With a pipelined certifier the drain *waits for* the in-flight
        window rather than cancelling it: every member block must be
        certified before the offer anyway (the cloud checks the offer's
        prefix against its certified digests), so cancelling would only
        re-send requests whose answers are already on the wire.  The flush
        below keeps pumping queued digests into freed window slots until
        the partition's certifier runs dry.
        """

        state = self._shard_states.get(shard_id)
        dest = self._migrating.get(shard_id)
        if state is None or dest is None:
            return
        with self._as_active(state):
            if state.staged_txns:
                return  # staged prepares resolve before the shard transfers
            if self.certifier.pending_dispatch_count:
                self._flush_certify_batch()
            if self.certifier.outstanding():
                return  # wait for the cloud's proofs
            if state.merge_in_flight:
                return  # wait for the in-flight merge
            if state.level_zero_blocks or self.index.tree.level_zero.num_pages:
                # Drain level 0 into level 1 so the whole index state is
                # committed under the cloud's digest mirror.
                proposal = self._build_merge_proposal(0)
                if proposal is None:
                    return
                state.merge_in_flight = True
                self.stats["merges_started"] += 1
                self.env.send(
                    self.node_id,
                    self.cloud,
                    MergeRequest(edge=self.node_id, proposal=proposal),
                )
                return
            self._send_handoff_offer(shard_id, state, dest)

    def _send_handoff_offer(
        self, shard_id: ShardId, state: PartitionState, dest: NodeId
    ) -> None:
        blocks = tuple(
            (record.block.block_id, record.block.digest()) for record in state.log
        )
        state_digest = shard_state_digest(
            shard_id, state.index.level_roots(), blocks
        )
        statement = ShardHandoffStatement(
            edge=self.node_id,
            dest=dest,
            shard_id=shard_id,
            blocks=blocks,
            state_digest=state_digest,
            issued_at=self.env.now(),
        )
        request = ShardHandoffRequest(
            statement=statement,
            signature=self.env.registry.sign(self.node_id, statement),
        )
        self.stats["shard_handoffs_offered"] += 1
        tracer = self._obs_tracer
        if tracer is None:
            self._ship_handoff_offer(request)
        else:
            with tracer.span(
                "handoff.offer",
                parent=self._obs_handoff.get(shard_id),
                node=str(self.node_id),
                shard=str(shard_id),
                blocks=len(blocks),
            ):
                self._ship_handoff_offer(request)

        def resend() -> bool:
            # Superseded: the grant (or a crash) retired the drained state,
            # or the cloud re-ordered the shard toward a different dest.
            if (
                self._shard_states.get(shard_id) is not state
                or self._migrating.get(shard_id) != dest
            ):
                return False
            self.stats["shard_offer_retries"] += 1
            self._ship_handoff_offer(request)
            return True

        self._arm_handoff_retry("offer", shard_id, 1, resend)

    def _ship_handoff_offer(self, request: ShardHandoffRequest) -> None:
        self.env.charge(
            self.env.params.handoff_offer_cost(len(request.statement.blocks))
        )
        self.env.send(self.node_id, self.cloud, request)

    def _accept_certified_proof(self, proof) -> None:
        super()._accept_certified_proof(proof)
        shard_id = self._active.shard_id
        if shard_id is not None and shard_id in self._migrating:
            self._advance_handoff(shard_id)

    def _handle_merge_response(self, sender: NodeId, message: MergeResponse) -> None:
        super()._handle_merge_response(sender, message)
        shard_id = self._active.shard_id
        if shard_id is not None and shard_id in self._migrating:
            self._advance_handoff(shard_id)

    def _handle_handoff_rejection(
        self, sender: NodeId, message: ShardHandoffRejection
    ) -> None:
        if sender != self.cloud or message.edge != self.node_id:
            return
        self.stats["shard_handoff_rejections"] += 1
        self._cancel_handoff_retry("offer", message.shard_id)
        # The shard stays migrating (requests keep redirecting) — an honest
        # edge whose offer is rejected needs operator intervention; a clean
        # automatic fallback would mask real divergence.

    def _handle_handoff_grant(self, sender: NodeId, grant: ShardHandoffGrant) -> None:
        if sender != self.cloud:
            return
        certificate = grant.certificate
        if (
            certificate.cloud != self.cloud
            or certificate.source != self.node_id
            or not certificate.verify(self.env.registry)
        ):
            return
        shard_id = certificate.shard_id
        state = self._shard_states.get(shard_id)
        if state is None:
            return
        self._cancel_handoff_retry("offer", shard_id)
        self._handle_shard_map(sender, grant.shard_map)

        # Archive the shard's blocks: they remain certified under this
        # edge's name, so log reads must keep working after the handoff.
        for record in state.log:
            self._archived_records[record.block.block_id] = record

        blocks = tuple(record.block for record in state.log)
        proofs = tuple(record.proof for record in state.log)
        ship_blocks = self._transfer_blocks(blocks)
        level_pages = tuple(
            (level.index, tuple(level.pages))
            for level in state.index.tree.levels[1:]
            if level.pages
        )
        digest_list = tuple(
            (block.block_id, block.digest()) for block in ship_blocks
        )
        roots = level_roots_from_pages(level_pages, self.config.lsmerkle.num_levels)
        statement = ShardTransferStatement(
            source=self.node_id,
            dest=certificate.dest,
            shard_id=shard_id,
            map_version=certificate.statement.map_version,
            blocks=digest_list,
            state_digest=shard_state_digest(shard_id, roots, digest_list),
        )
        transfer = ShardTransferMessage(
            statement=statement,
            signature=self.env.registry.sign(self.node_id, statement),
            certificate=certificate,
            blocks=ship_blocks,
            proofs=proofs,
            level_pages=level_pages,
            signed_root=grant.signed_root,
        )
        self.env.charge(
            self.env.params.handoff_offer_cost(len(ship_blocks))
        )
        tracer = self._obs_tracer
        if tracer is None:
            self.env.send(self.node_id, certificate.dest, transfer)
        else:
            with tracer.span(
                "handoff.transfer",
                parent=self._obs_handoff.get(shard_id),
                node=str(self.node_id),
                shard=str(shard_id),
                blocks=len(ship_blocks),
            ):
                self.env.send(self.node_id, certificate.dest, transfer)
        if state.store is not None:
            # The durable state travels with the shard: retire this
            # incarnation's store so a later re-adoption of the shard starts
            # from a fresh certified transfer, never from stale segments.
            state.store.retire()
        del self._shard_states[shard_id]
        self._migrating.pop(shard_id, None)
        self._obs_handoff.pop(shard_id, None)
        self.stats["shard_handoffs_out"] += 1
        # Keep the transfer for retransmission until the destination's
        # install ack: the live partition is gone as of the line above, so
        # a lost transfer would leave the shard with no owner able to serve.
        self._outgoing_transfers[shard_id] = (transfer, certificate.dest)

        def resend() -> bool:
            if self._outgoing_transfers.get(shard_id) != (transfer, certificate.dest):
                return False
            self.stats["shard_transfer_retries"] += 1
            self.env.charge(
                self.env.params.handoff_offer_cost(len(transfer.blocks))
            )
            self.env.send(self.node_id, certificate.dest, transfer)
            return True

        self._arm_handoff_retry("transfer", shard_id, 1, resend)
        # Requests parked during the drain now resolve to truthful signed
        # redirects under the republished map.
        for parked_sender, parked_message in self._parked_requests.pop(shard_id, []):
            self.on_message(parked_sender, parked_message)

    # Hook overridden by the tampering variant ------------------------------
    def _transfer_blocks(self, blocks: tuple) -> tuple:
        return blocks

    # ------------------------------------------------------------------
    # Handoff: destination side
    # ------------------------------------------------------------------
    def _handle_shard_transfer(
        self, sender: NodeId, message: ShardTransferMessage
    ) -> None:
        tracer = self._obs_tracer
        if tracer is None:
            self._install_shard_transfer(sender, message)
            return
        # Parent is the source's handoff.transfer span (delivery sidecar).
        with tracer.span(
            "handoff.install",
            node=str(self.node_id),
            shard=str(message.certificate.shard_id),
        ):
            self._install_shard_transfer(sender, message)

    def _install_shard_transfer(
        self, sender: NodeId, message: ShardTransferMessage
    ) -> None:
        params = self.env.params
        certificate = message.certificate
        num_pages = sum(len(pages) for _, pages in message.level_pages)
        self.env.charge(
            params.handoff_install_cost(len(message.blocks), num_pages)
        )
        if (
            certificate.cloud != self.cloud
            or certificate.dest != self.node_id
            or not certificate.verify(self.env.registry)
        ):
            return
        if certificate.shard_id in self._shard_states:
            # Already installed (a replayed or duplicated transfer): the
            # live partition has accumulated state since — never overwrite.
            # Re-ack so a source whose first ack was lost stops
            # retransmitting (the cloud deduplicates install acks).
            self.stats.setdefault("shard_transfer_duplicates", 0)
            self.stats["shard_transfer_duplicates"] += 1
            self._send_install_ack(
                certificate.shard_id, certificate.state_digest, sender
            )
            return
        refusal_key = (sender, certificate.shard_id, certificate.state_digest)
        if refusal_key in self._refused_transfers:
            self.stats.setdefault("shard_transfer_duplicates", 0)
            self.stats["shard_transfer_duplicates"] += 1
            return
        statement = message.statement
        shard_id = certificate.shard_id
        if (
            statement.source != sender
            or statement.dest != self.node_id
            or statement.shard_id != shard_id
            or not self.env.registry.verify(message.signature, statement)
        ):
            self._refused_transfers.add(refusal_key)
            return
        if statement.map_version != certificate.statement.map_version:
            # The statement must bind to the exact countersigned handoff:
            # a lied-about version would otherwise point the dispute path
            # at a certificate the cloud never issued, acquitting the liar.
            self.stats["shard_transfer_invalid"] += 1
            self._refused_transfers.add(refusal_key)
            return
        if len(message.proofs) != len(message.blocks):
            # One proof per block, strictly: a short proofs tuple would let
            # the zipped verification loop below silently skip blocks.
            self.stats["shard_transfer_invalid"] += 1
            self._refused_transfers.add(refusal_key)
            return

        # Recompute the state digest from the bytes actually received.
        actual_digests = tuple(
            (block.block_id, block.digest()) for block in message.blocks
        )
        roots = level_roots_from_pages(
            message.level_pages, self.config.lsmerkle.num_levels
        )
        recomputed = shard_state_digest(shard_id, roots, actual_digests)
        if actual_digests != statement.blocks or recomputed != statement.state_digest:
            # The payload disagrees with what the source *signed*: nothing
            # provable either way — refuse the install and wait for a
            # retransmit (the shard stays pending, requests stay parked).
            self.stats["shard_transfer_invalid"] += 1
            self._refused_transfers.add(refusal_key)
            return
        if statement.state_digest != certificate.state_digest:
            # The source signed state that differs from what the cloud
            # countersigned: provable tampering — dispute it (once: a
            # retransmitted copy of the same signed transfer is deduped).
            self._refused_transfers.add(refusal_key)
            self.stats["shard_disputes_sent"] += 1
            self.env.send(
                self.node_id,
                self.cloud,
                ShardDispute(
                    reporter=self.node_id,
                    accused=statement.source,
                    shard_id=shard_id,
                    kind="handoff-digest-mismatch",
                    transfer_statement=statement,
                    transfer_signature=message.signature,
                ),
            )
            return
        if not message.signed_root.verify(self.env.registry, self.cloud):
            self.stats["shard_transfer_invalid"] += 1
            self._refused_transfers.add(refusal_key)
            return
        root_statement = message.signed_root.statement
        if (
            root_statement.edge != self.node_id
            or tuple(root_statement.level_roots) != roots
        ):
            self.stats["shard_transfer_invalid"] += 1
            self._refused_transfers.add(refusal_key)
            return
        for block, proof in zip(message.blocks, message.proofs):
            if (
                proof is None
                or proof.cloud != self.cloud
                or not proof.certifies(block)
                or not proof.verify(self.env.registry)
            ):
                self.stats["shard_transfer_invalid"] += 1
                self._refused_transfers.add(refusal_key)
                return

        # Verified end to end: install and start serving.
        state = self._new_partition(shard_id)
        for level_index, pages in message.level_pages:
            state.index.install_level_pages(level_index, pages)
        state.signed_root = message.signed_root
        if state.store is not None:
            # Seed the durable backend with what was just verified, so a
            # crash after the install recovers the shard to this exact
            # signed state instead of an empty partition.
            try:
                seed_partition_store(
                    state.store,
                    level_pages=message.level_pages,
                    signed_root=message.signed_root,
                    next_block_id=state.log.next_block_id,
                )
            except StorageError:
                self._storage_degraded()
        self._shard_states[shard_id] = state
        for block, proof in zip(message.blocks, message.proofs):
            self._imported_blocks[(statement.source, block.block_id)] = (block, proof)
        self.stats["shard_handoffs_in"] += 1
        self._send_install_ack(shard_id, statement.state_digest, statement.source)
        for queued_sender, queued_message in self._parked_requests.pop(shard_id, []):
            self.on_message(queued_sender, queued_message)

    def _send_install_ack(
        self, shard_id: ShardId, state_digest: str, source: NodeId
    ) -> None:
        """Ack an installed transfer to both the cloud and the source.

        The cloud's copy finalizes its handoff bookkeeping; the source's
        copy stops its transfer-retransmission timer.  Both receivers
        deduplicate, so re-acking a replayed transfer is safe.
        """

        ack = ShardInstallAck(
            dest=self.node_id, shard_id=shard_id, state_digest=state_digest
        )
        self.env.send(self.node_id, self.cloud, ack)
        if source != self.cloud:
            self.env.send(self.node_id, source, ack)

    def _handle_install_ack_from_dest(
        self, sender: NodeId, ack: ShardInstallAck
    ) -> None:
        """Source side: the destination confirmed the install — stop retrying."""

        pending = self._outgoing_transfers.get(ack.shard_id)
        if pending is None:
            return
        transfer, dest = pending
        if (
            sender != dest
            or ack.dest != dest
            or ack.state_digest != transfer.statement.state_digest
        ):
            return
        del self._outgoing_transfers[ack.shard_id]
        self._cancel_handoff_retry("transfer", ack.shard_id)
        self.stats["shard_transfer_acks"] += 1

    # ------------------------------------------------------------------
    # Replica groups: leases
    # ------------------------------------------------------------------
    def _handle_replica_lease(self, sender: NodeId, lease: ReplicaLease) -> None:
        if sender != self.cloud or lease.statement.cloud != self.cloud:
            return
        if lease.replica != self.node_id or not lease.verify(self.env.registry):
            return
        current = self._shard_leases.get(lease.shard_id)
        if current is not None and current.expires_at >= lease.expires_at:
            return
        self._shard_leases[lease.shard_id] = lease
        self.stats["replica_lease_updates"] += 1
        if self.map_view.owner_of(lease.shard_id) == self.node_id:
            # Writes parked behind the writer's lease gate replay under the
            # renewed lease.
            for parked_sender, parked_message in self._parked_requests.pop(
                lease.shard_id, []
            ):
                self.on_message(parked_sender, parked_message)

    # ------------------------------------------------------------------
    # Replica groups: certified log shipping (writer side)
    # ------------------------------------------------------------------
    def _maybe_start_replication(self) -> None:
        """Start the periodic shipping tick once this edge owns a replicated
        shard (idempotent; a ``replication_factor=1`` fleet never starts it)."""

        if self._replication_stopper is not None:
            return
        if not any(
            self.map_view.replicas_of(shard_id)
            for shard_id in self.map_view.shards_owned_by(self.node_id)
        ):
            return
        self._replication_stopper = self.env.schedule_periodic(
            self.config.security.gossip_interval_s,
            self._replication_tick,
            label=f"{self.node_id}:replication",
        )

    def _replication_tick(self) -> None:
        """Ship the certified log prefix of every replicated owned shard.

        Nothing here is newly signed: a shipment carries certified blocks
        with their cloud proofs, the current level pages, and the latest
        cloud-signed root — the replica verifies everything against the
        cloud's signatures before installing.  The heartbeat doubles as the
        cloud's liveness signal for failover detection.
        """

        heartbeat_shards: list[tuple[ShardId, int]] = []
        for shard_id in sorted(self._shard_states):
            if self.map_view.owner_of(shard_id) != self.node_id:
                continue
            replicas = self.map_view.replicas_of(shard_id)
            if not replicas:
                continue
            state = self._shard_states[shard_id]
            if state.quarantined is not None:
                continue
            records = self._certified_prefix(state)
            heartbeat_shards.append((shard_id, len(records)))
            certified_ids = {record.block.block_id for record in records}
            level_zero_ids = tuple(
                block_id
                for block_id in state.level_zero_blocks
                if block_id in certified_ids
            )
            level_pages = tuple(
                (level.index, tuple(level.pages))
                for level in state.index.tree.levels[1:]
                if level.pages
            )
            for replica in replicas:
                self._ship_to_replica(
                    shard_id, state, replica, records, level_zero_ids, level_pages
                )
            if self._metrics is not None:
                slowest = min(
                    self._replica_watermarks.get((shard_id, replica), -1)
                    for replica in replicas
                )
                lag = sum(
                    1 for record in records if record.block.block_id > slowest
                )
                self._metrics.gauge("replication_lag", shard=str(shard_id)).set(lag)
        if heartbeat_shards:
            self.env.charge(self.env.params.request_overhead_seconds)
            self.env.send(
                self.node_id,
                self.cloud,
                WriterHeartbeat(edge=self.node_id, shards=tuple(heartbeat_shards)),
            )

    @staticmethod
    def _certified_prefix(state: PartitionState) -> list[LogRecord]:
        """The longest log prefix where every block carries a cloud proof.

        Only this prefix ships: replicas mirror *certified* state, which is
        what bounds a promotion's data loss to the uncertified backlog —
        precisely the blocks the crashed writer could repudiate anyway.
        """

        records: list[LogRecord] = []
        for record in state.log:
            if record.proof is None:
                break
            records.append(record)
        return records

    def _ship_to_replica(
        self,
        shard_id: ShardId,
        state: PartitionState,
        replica: NodeId,
        records: list[LogRecord],
        level_zero_ids: tuple[BlockId, ...],
        level_pages: tuple,
    ) -> None:
        acked = self._replica_watermarks.get((shard_id, replica), -1)
        fresh = [r for r in records if r.block.block_id > acked]
        shipment = ReplicaLogShipment(
            writer=self.node_id,
            replica=replica,
            shard_id=shard_id,
            blocks=tuple(record.block for record in fresh),
            proofs=tuple(record.proof for record in fresh),
            level_zero_ids=level_zero_ids,
            level_pages=level_pages,
            signed_root=state.signed_root,
            certified_count=len(records),
        )
        self.stats["replica_shipments_sent"] += 1
        self.env.charge(self.env.params.handoff_offer_cost(len(fresh)))
        self.env.send(self.node_id, replica, shipment)

    def _handle_replica_shipment_ack(
        self, sender: NodeId, ack: ReplicaShipmentAck
    ) -> None:
        if ack.replica != sender:
            return
        if sender not in self.map_view.replicas_of(ack.shard_id):
            return
        # Last ack wins (not max): a restarted mirror acks ``-1`` to request
        # a full re-ship of the certified prefix.
        self._replica_watermarks[(ack.shard_id, sender)] = ack.watermark

    # ------------------------------------------------------------------
    # Replica groups: shipment install (replica side)
    # ------------------------------------------------------------------
    def _handle_replica_shipment(
        self, sender: NodeId, message: ReplicaLogShipment
    ) -> None:
        if message.replica != self.node_id or message.writer != sender:
            return
        shard_id = message.shard_id
        if self.map_view.owner_of(shard_id) != sender:
            return  # a deposed writer kept shipping: nothing to install
        if self.node_id not in self.map_view.replicas_of(shard_id):
            return
        state = self._replica_states.get(shard_id)
        if state is None:
            state = self._new_replica_state(shard_id, sender)
            self._replica_states[shard_id] = state
        num_pages = sum(len(pages) for _, pages in message.level_pages)
        self.env.charge(
            self.env.params.handoff_install_cost(len(message.blocks), num_pages)
        )
        if len(message.proofs) != len(message.blocks):
            self.stats["replica_shipments_rejected"] += 1
            return
        allowed = {sender, *self.map_view.provenance_of(shard_id)}
        for block, proof in zip(message.blocks, message.proofs):
            if (
                block.edge not in allowed
                or proof is None
                or proof.cloud != self.cloud
                or not proof.certifies(block)
                or not proof.verify(self.env.registry)
            ):
                self.stats["replica_shipments_rejected"] += 1
                return
        signed_root = message.signed_root
        if signed_root is not None and (
            not signed_root.verify(self.env.registry, self.cloud)
            or signed_root.statement.edge not in allowed
        ):
            self.stats["replica_shipments_rejected"] += 1
            return

        for block, proof in zip(message.blocks, message.proofs):
            if state.log.try_get(block.block_id) is None:
                state.log.append(block)
                state.log.attach_proof(proof)
        missing = [
            block_id
            for block_id in message.level_zero_ids
            if state.log.try_get(block_id) is None
        ]
        if missing:
            # This mirror is behind the writer's shipping watermark (it
            # restarted, or the stream was lossy): ack ``-1`` so the next
            # tick re-ships the full certified prefix.
            self._ack_shipment(shard_id, -1, 0)
            return
        # Rebuild the index as one consistent snapshot of the shipment:
        # merged levels come as pages verified against the cloud-signed
        # root, level 0 re-derives from the shipped blocks themselves.
        rebuilt = MerkleizedLSM(
            config=self.config.lsmerkle,
            page_capacity=self.config.logging.block_size,
        )
        for level_index, pages in message.level_pages:
            rebuilt.install_level_pages(level_index, pages)
        for block_id in message.level_zero_ids:
            page = page_from_block(state.log.block(block_id))
            if page is not None:
                rebuilt.add_level_zero_page(page)
        state.index = rebuilt
        state.level_zero_blocks = list(message.level_zero_ids)
        if signed_root is not None:
            state.signed_root = signed_root
        self.stats["replica_shipments_installed"] += 1
        watermark = max(
            (record.block.block_id for record in state.log), default=-1
        )
        root_version = (
            signed_root.statement.version if signed_root is not None else 0
        )
        self._ack_shipment(shard_id, watermark, root_version)

    def _ack_shipment(
        self, shard_id: ShardId, watermark: int, root_version: int
    ) -> None:
        """Ack to both the writer (shipping watermark) and the cloud (the
        freshness record failover promotion picks the best replica by)."""

        ack = ReplicaShipmentAck(
            replica=self.node_id,
            shard_id=shard_id,
            watermark=watermark,
            root_version=root_version,
        )
        self.env.charge(self.env.params.request_overhead_seconds)
        writer = self.map_view.owner_of(shard_id)
        if writer is not None and writer != self.node_id:
            self.env.send(self.node_id, writer, ack)
        self.env.send(self.node_id, self.cloud, ack)

    # ------------------------------------------------------------------
    # Replica groups: failover promotion (replica side)
    # ------------------------------------------------------------------
    def _handle_promotion_order(
        self, sender: NodeId, order: ReplicaPromotionOrder
    ) -> None:
        """Offer this mirror's state for promotion — data-free, like a
        handoff offer: digests only, nothing the cloud cannot re-verify
        against its own certified-digest map and signatures."""

        if sender != self.cloud or order.cloud != self.cloud:
            return
        if order.dest != self.node_id:
            return
        shard_id = order.shard_id
        state = self._replica_states.get(shard_id)
        if state is None:
            state = self._new_replica_state(shard_id, order.source)
            self._replica_states[shard_id] = state
        blocks = tuple(
            (record.block.block_id, record.block.digest())
            for record in state.log
        )
        statement = ShardHandoffStatement(
            edge=self.node_id,
            dest=self.node_id,
            shard_id=shard_id,
            blocks=blocks,
            state_digest=shard_state_digest(
                shard_id, state.index.level_roots(), blocks
            ),
            issued_at=self.env.now(),
        )
        offer = ReplicaPromotionOffer(
            statement=statement,
            signature=self.env.registry.sign(self.node_id, statement),
            level_page_digests=tuple(
                (level.index, tuple(page.digest() for page in level.pages))
                for level in state.index.tree.levels[1:]
                if level.pages
            ),
            signed_root=state.signed_root,
            watermark=max(
                (record.block.block_id for record in state.log), default=-1
            ),
        )
        self.stats["promotion_offers"] += 1
        self.env.charge(self.env.params.handoff_offer_cost(len(blocks)))
        tracer = self._obs_tracer
        if tracer is None:
            self.env.send(self.node_id, self.cloud, offer)
            return
        with tracer.span(
            "failover.offer",
            node=str(self.node_id),
            shard=str(shard_id),
            blocks=len(blocks),
        ):
            self.env.send(self.node_id, self.cloud, offer)

    def _handle_promotion_grant(
        self, sender: NodeId, grant: ReplicaPromotionGrant
    ) -> None:
        if sender != self.cloud:
            return
        certificate = grant.certificate
        if (
            certificate.cloud != self.cloud
            or certificate.dest != self.node_id
            or not certificate.verify(self.env.registry)
        ):
            return
        shard_id = certificate.shard_id
        if shard_id in self._shard_states:
            return  # duplicate grant: already promoted
        tracer = self._obs_tracer
        if tracer is None:
            self._promote_from_mirror(sender, shard_id, grant)
            return
        with tracer.span(
            "failover.promote", node=str(self.node_id), shard=str(shard_id)
        ):
            self._promote_from_mirror(sender, shard_id, grant)

    def _promote_from_mirror(
        self, sender: NodeId, shard_id: ShardId, grant: ReplicaPromotionGrant
    ) -> None:
        """Convert the mirror into the serving partition under the new map.

        The promoted log is owned by *this* edge with the shard's
        provenance chain as co-owners: the deposed writer's certified
        blocks keep their original ``edge`` field (their certificates bind
        it) while new appends carry this edge's.  Imported block ids live
        in the prior writers' id spaces — the edge-wide allocator skips
        past them but ``_block_shards`` routes only locally formed blocks.
        """

        self._handle_shard_map(sender, grant.shard_map)
        mirror = self._replica_states.pop(shard_id, None)
        if mirror is None:
            return
        state = self._new_partition(shard_id)
        state.log = WedgeLog(
            self.node_id, co_owners=self.map_view.provenance_of(shard_id)
        )
        for record in mirror.log:
            state.log.append(record.block)
            if record.proof is not None:
                state.log.attach_proof(record.proof)
            self._imported_blocks[(record.block.edge, record.block.block_id)] = (
                record.block,
                record.proof,
            )
        state.index = mirror.index
        state.level_zero_blocks = list(mirror.level_zero_blocks)
        state.signed_root = grant.signed_root
        if state.store is not None:
            # Seed the durable backend with the merged levels and the
            # re-signed root.  Imported level-0 records stay volatile until
            # the next merge folds them into manifest-covered pages — the
            # same window the in-memory crash model already accepts.
            level_pages = tuple(
                (level.index, tuple(level.pages))
                for level in state.index.tree.levels[1:]
                if level.pages
            )
            try:
                seed_partition_store(
                    state.store,
                    level_pages=level_pages,
                    signed_root=grant.signed_root,
                    next_block_id=state.log.next_block_id,
                )
            except StorageError:
                self._storage_degraded()
        self._shard_states[shard_id] = state
        self._next_block_id = max(self._next_block_id, state.log.next_block_id)
        self.stats["shard_promotions"] += 1
        self._maybe_start_replication()
        for parked_sender, parked_message in self._parked_requests.pop(shard_id, []):
            self.on_message(parked_sender, parked_message)

    # ------------------------------------------------------------------
    # Crash model (fault injection)
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Drop the sharded node's volatile handoff bookkeeping too.

        Parked requests, drain markers, pending outgoing transfers, and
        retry timers are all volatile.  Losing an outgoing transfer is an
        accepted gap: the archived records survive (reads keep working)
        and the cloud can re-order the handoff; losing a drain marker
        leaves the shard owned and serving, which is safe — the cloud's
        ownership map never moved.
        """

        super().on_crash()
        self._parked_requests.clear()
        self._migrating.clear()
        self._outgoing_transfers.clear()
        for handle in self._handoff_retries.values():
            handle.cancel()
        self._handoff_retries.clear()
        # Replication soft state: leases and shipping watermarks are
        # volatile (the cloud re-issues leases every tick; replicas dedupe
        # re-shipped blocks).  The mirrors themselves survive under the
        # same in-memory durability story as the log and index above.
        self._shard_leases.clear()
        self._serving_lease = None
        self._replica_watermarks.clear()

    def _recover_durable_partitions(self) -> None:
        """Recover the default partition and every owned shard from disk.

        The edge-wide routing tables are then rebuilt from the recovered
        logs — recovery trusts nothing pre-crash: ``_block_shards`` is
        re-derived from what each shard's store actually replayed, and the
        shared block-id allocator resumes past every recovered watermark.
        The allocator only ever moves forward: with a relaxed fsync policy
        an acknowledged-but-lost block id must still never be reissued, so
        a recovered watermark below the in-memory one does not rewind it.
        """

        super()._recover_durable_partitions()
        for shard_id in sorted(self._shard_states):
            fresh, report = self._recover_partition_state(
                self._shard_states[shard_id]
            )
            self._shard_states[shard_id] = fresh
            if report is not None:
                self.last_recovery_reports.append(report)
        self._block_shards = {
            record.block.block_id: shard_id
            for shard_id, state in self._shard_states.items()
            for record in state.log
        }
        watermark = self._default_partition.log.next_block_id
        for state in self._shard_states.values():
            watermark = max(watermark, state.log.next_block_id)
        self._next_block_id = max(self._next_block_id, watermark)
        # A quarantined *replicated* shard is recoverable: its replicas
        # mirror the certified state, so instead of a dead shard (the PR 7
        # dead end) the cloud can promote one.  Tell it.
        for shard_id in sorted(self._shard_states):
            state = self._shard_states[shard_id]
            if state.quarantined is None:
                continue
            if self.map_view.owner_of(shard_id) != self.node_id:
                continue
            if not self.map_view.replicas_of(shard_id):
                continue
            self.stats["shard_quarantine_notices"] += 1
            self.env.send(
                self.node_id,
                self.cloud,
                ShardQuarantineNotice(
                    edge=self.node_id,
                    shard_id=shard_id,
                    reason=state.quarantined,
                ),
            )

    # ------------------------------------------------------------------
    # Per-shard maintenance helpers
    # ------------------------------------------------------------------
    def request_shard_root_refresh(self, shard_id: ShardId) -> None:
        state = self._shard_states[shard_id]
        with self._as_active(state):
            self.request_root_refresh()

    def certify_pipeline_snapshot(self) -> dict:
        """Per-partition certification-pipeline state, for fleet telemetry.

        Keys are shard ids (``"default"`` for the default partition); values
        report the in-flight window occupancy, the queued-but-undispatched
        digests, the retired batch count, and the uncertified block count.

        .. deprecated:: PR 8
            Kept as a thin view for existing callers.  With observability
            enabled the same occupancy numbers live on the metrics registry
            (``certify_in_flight`` / ``certify_queued`` gauges, per-shard
            labels) and render in ``python -m repro.obs.report``.
        """

        snapshot: dict = {}
        for state in self._partition_states():
            key = "default" if state.shard_id is None else state.shard_id
            certifier = state.certifier
            snapshot[key] = {
                "in_flight": certifier.in_flight_count,
                "queued": certifier.pending_dispatch_count,
                "retired_batches": certifier.retired_batch_count,
                "uncertified": len(certifier.outstanding()),
            }
        return snapshot


class TamperingHandoffEdgeNode(ShardedEdgeNode):
    """Ships tampered block content during a shard handoff.

    The tampering is *self-consistent* — the signed transfer statement lists
    the digests of the blocks actually shipped — so the destination's
    payload check passes and the mismatch surfaces exactly where the
    protocol wants it: the signed statement contradicts the cloud's
    countersigned certificate, handing the destination provable evidence.
    """

    def _transfer_blocks(self, blocks: tuple) -> tuple:
        from ..log.block import Block
        from ..nodes.malicious import _tamper_entries

        if not blocks:
            return blocks
        first = blocks[0]
        tampered = Block(
            edge=first.edge,
            block_id=first.block_id,
            entries=_tamper_entries(first.entries),
            created_at=first.created_at,
        )
        return (tampered,) + tuple(blocks[1:])


class TamperingPrepareEdgeNode(ShardedEdgeNode):
    """Signs prepare receipts that misquote the staged write set.

    The coordinator compares the receipt's write list against the statement
    it signed itself: the mismatch is two contradictory signed artifacts —
    the client-signed prepare and the edge-signed receipt — which is
    exactly the evidence pair the ``prepare-receipt-mismatch`` dispute
    needs.  The coordinator aborts the transaction and the cloud convicts
    the edge.
    """

    def _receipt_writes(
        self, writes: tuple[TxnWrite, ...]
    ) -> tuple[TxnWrite, ...]:
        if not writes:
            return writes
        first = writes[0]
        return (TxnWrite(key=first.key, value_digest="0" * 64),) + tuple(writes[1:])


class UnresponsivePrepareEdgeNode(ShardedEdgeNode):
    """Swallows transaction prepares: a crashed or partitioned participant.

    Everything else (puts, gets, certification) keeps working, so the
    coordinator's receipt timer — not some global failure detector — is
    what aborts the transaction on every responsive participant.
    """

    def _handle_txn_prepare(self, sender, request) -> None:
        self.stats.setdefault("txn_prepares_dropped", 0)
        self.stats["txn_prepares_dropped"] += 1


class AbortIgnoringEdgeNode(ShardedEdgeNode):
    """Applies staged writes despite a signed abort, then serves them.

    The node acknowledges the abort (to look honest) but installs the
    staged writes as if the transaction had committed.  Any client that
    later reads one of those keys holds the conviction triple: the edge's
    signed prepare receipt, the coordinator's signed abort, and the edge's
    own signed get response serving the staged value — the
    ``staged-abort-serve`` dispute.
    """

    def _apply_txn_decision(self, message) -> None:
        statement = message.statement
        if statement.decision == TXN_ABORT:
            state = self._active
            staged = state.staged_txns.pop(statement.txn_id, None)
            if staged is not None:
                block_id = self._apply_staged_txn(staged)  # commits anyway
                self._record_txn_decision(
                    state, statement.txn_id, TXN_ABORT, block_id,
                    staged.shard_id, message,
                )
                self._send_txn_ack(
                    statement.txn_id, staged.shard_id, TXN_ABORT, block_id
                )
                self._after_txn_resolved(state.shard_id)
                return
        super()._apply_txn_decision(message)


class StaleShardOwnerEdgeNode(ShardedEdgeNode):
    """Keeps serving a shard from a retained snapshot after handing it off.

    The handoff itself runs honestly (the certified transfer reaches the
    destination untampered), but the node squirrels away a deep copy of the
    partition and keeps answering gets for the shard as if nothing
    happened.  Clients holding the new shard map detect the non-owner
    response; the cloud's ownership history makes the signed response
    provable evidence.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._stale_states: dict[ShardId, PartitionState] = {}

    def _handle_handoff_grant(self, sender: NodeId, grant: ShardHandoffGrant) -> None:
        shard_id = grant.certificate.shard_id
        state = self._shard_states.get(shard_id)
        if state is not None:
            self._stale_states[shard_id] = copy.deepcopy(state)
        super()._handle_handoff_grant(sender, grant)

    def _resolve_serving(
        self,
        sender: NodeId,
        message: Any,
        shard_id: ShardId,
        operation_id: OperationId,
    ) -> Optional[PartitionState]:
        stale = self._stale_states.get(shard_id)
        if stale is not None:
            return stale  # serve the shard it no longer owns
        return super()._resolve_serving(sender, message, shard_id, operation_id)


class DeposedWriterEdgeNode(ShardedEdgeNode):
    """Ignores its own deposition after a failover promotion.

    An honest writer of a replicated shard parks requests the moment its
    serving lease expires and retires the shard when the republished map
    deposes it.  This variant does neither: it pretends its lease never
    expires and discards any map that would take a shard away from it.
    Every signed get response it issues after the promotion is
    self-contained evidence — the cloud's ownership history says someone
    else owned the shard at ``issued_at`` (the ``stale-owner-serve``
    judge, unchanged from plain handoffs, convicts it).
    """

    def _writer_lease_valid(self, shard_id: ShardId) -> bool:
        return True  # serve as if the lease never expired

    def _handle_shard_map(self, sender: NodeId, message: ShardMapMessage) -> None:
        for assignment in message.statement.assignments:
            if (
                assignment.owner != self.node_id
                and assignment.shard_id in self._shard_states
                and assignment.shard_id not in self._migrating
                and assignment.shard_id not in self._outgoing_transfers
            ):
                # The map deposes this edge: pretend it never arrived.
                self.stats.setdefault("maps_ignored", 0)
                self.stats["maps_ignored"] += 1
                return
        super()._handle_shard_map(sender, message)


class ExpiredLeaseReplicaEdgeNode(ShardedEdgeNode):
    """A read replica that keeps serving after its lease expired.

    An honest replica cut off from the cloud redirects reads to the writer
    once its lease runs out.  This variant keeps answering, attaching the
    stale lease it still holds — and that attached lease is exactly what
    convicts it: the client forwards the signed response plus the lease as
    a ``stale-replica-serve`` dispute, and the judge sees a serve
    timestamp past the lease's expiry.
    """

    def _replica_lease_valid(
        self, lease: Optional[ReplicaLease], now: float
    ) -> bool:
        return lease is not None  # expired is good enough to keep serving
