"""Sharded edge fleet: key-space partitioning, routing, certified handoff.

This subsystem turns the paper's single-edge deployment into a fleet:

* :mod:`~repro.sharding.partitioner` — ``KeyPartitioner`` with hash-ring
  and range implementations mapping keys → shard ids;
* :mod:`~repro.sharding.shard_map` — the cloud-signed, versioned shard map
  (authoritative registry + verified monotone views) and the fleet gossip
  view that folds membership into the existing log-size gossip;
* :mod:`~repro.sharding.router` — key → shard → owning edge resolution;
* :mod:`~repro.sharding.client` — the shard-aware client (routing, signed
  redirects, stale-owner detection, per-shard session consistency);
* :mod:`~repro.sharding.edge` — the sharded edge node (one partition of
  log/LSMerkle state per owned shard) and its malicious variants;
* :mod:`~repro.sharding.handoff` — the certified shard-handoff digests;
* :mod:`~repro.sharding.system` — the fleet facade and closed-loop driver.
"""

from .client import ShardedClient
from .edge import (
    AbortIgnoringEdgeNode,
    DeposedWriterEdgeNode,
    ExpiredLeaseReplicaEdgeNode,
    ShardedEdgeNode,
    StaleShardOwnerEdgeNode,
    TamperingHandoffEdgeNode,
    TamperingPrepareEdgeNode,
    UnresponsivePrepareEdgeNode,
)
from .handoff import level_roots_from_pages, shard_state_digest
from .partitioner import (
    HashRingPartitioner,
    KeyPartitioner,
    RangePartitioner,
    make_partitioner,
)
from .router import Route, ShardRouter
from .shard_map import (
    FleetGossipView,
    ShardMapView,
    ShardRegistry,
    build_shard_map_message,
    verify_shard_map,
)
from .system import (
    RebalanceAction,
    ShardedClosedLoopDriver,
    ShardedWedgeSystem,
)
from .transactions import (
    StagedTxn,
    TxnCoordinator,
    TxnRecord,
    decode_txn_decision,
    encode_txn_decision,
    is_txn_decision_payload,
)

__all__ = [
    "AbortIgnoringEdgeNode",
    "DeposedWriterEdgeNode",
    "ExpiredLeaseReplicaEdgeNode",
    "FleetGossipView",
    "HashRingPartitioner",
    "KeyPartitioner",
    "RangePartitioner",
    "RebalanceAction",
    "Route",
    "ShardMapView",
    "ShardRegistry",
    "ShardRouter",
    "ShardedClient",
    "ShardedClosedLoopDriver",
    "ShardedEdgeNode",
    "ShardedWedgeSystem",
    "StagedTxn",
    "StaleShardOwnerEdgeNode",
    "TamperingHandoffEdgeNode",
    "TamperingPrepareEdgeNode",
    "TxnCoordinator",
    "TxnRecord",
    "UnresponsivePrepareEdgeNode",
    "build_shard_map_message",
    "decode_txn_decision",
    "encode_txn_decision",
    "is_txn_decision_payload",
    "level_roots_from_pages",
    "make_partitioner",
    "shard_state_digest",
    "verify_shard_map",
]
