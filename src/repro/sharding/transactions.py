"""Cross-shard atomic transactions: client-coordinated 2PC over certified
Phase I receipts.

The sharded fleet (:mod:`repro.sharding`) routes every operation to one
shard's owning edge, so a multi-key write spanning partitions has no
atomicity story of its own — each owner Phase I commits independently.
This module layers a two-phase commit on the existing certified machinery
without adding any new trusted party:

* **Phase 1 — prepare.**  The coordinating *client* splits the write set
  per shard (redirect-aware, through the same verified shard map puts use)
  and sends each participant edge a signed
  :class:`~repro.messages.txn_messages.TxnPrepareStatement` with the
  client-signed put entries.  The edge stages the writes in its partition's
  staging buffer — invisible to gets, merges, and the log — and answers
  with a signed :class:`~repro.messages.txn_messages.TxnPrepareReceipt`
  bound to the transaction id, the staged write set, the shard's Phase I
  log position, and an expiry deadline.
* **Phase 2 — decision.**  With every receipt verified (and none expired)
  the coordinator signs a commit
  :class:`~repro.messages.txn_messages.TxnDecisionStatement`; any missing,
  rejected, or tampered receipt (or the receipt timer) produces a signed
  abort instead.  Each participant atomically applies or discards its
  staged writes, and the decision enters the partition's *log* as a
  marker entry — on commit, in the same block as the applied writes — so
  lazy certification and the dispute machinery cover the transaction end
  to end.

Trust argument (which signed artifact convicts which misbehaviour):

* a participant that *misquotes* the write set in its receipt is convicted
  by the pair (client-signed prepare statement, edge-signed receipt) —
  ``prepare-receipt-mismatch``;
* a participant that *serves* a staged write after a signed abort is
  convicted by the triple (edge-signed receipt, coordinator-signed abort,
  edge-signed get response) — ``staged-abort-serve``;
* a coordinator that *equivocates* (signs both a commit and an abort) is
  convicted by the contradictory pair of its own signed decisions —
  ``coordinator-equivocation``;
* a participant that commits staged writes and then *lies about them* is
  already covered by the base protocol: the commit block is an ordinary
  block with a Phase I receipt and lazy certification, so digest
  equivocation, omission, and read mismatches convict exactly as before.

2PC's classic blocking window is handled with bounded presumed-abort: the
receipt's ``expires_at`` is part of the signed contract, the coordinator
only commits while every receipt is unexpired, and a participant whose
deadline passes without a decision aborts unilaterally and logs the abort
record (``coordinator abandonment``).  A shard mid-handoff resolves its
staged prepares before the drain can offer the shard away, so a
transaction can never straddle an ownership change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from ..common.config import ShardingConfig
from ..common.errors import ProtocolError, SerializationError
from ..common.identifiers import (
    NodeId,
    OperationId,
    OperationKind,
    SequenceGenerator,
    ShardId,
)
from ..crypto.hashing import digest_value
from ..faults.retry import RetryPolicy
from ..log.entry import LogEntry, make_entry
from ..lsmerkle.codec import SEQUENCE_STRIDE, decode_put, encode_put, is_put_payload
from ..messages.txn_messages import (
    TXN_ABORT,
    TXN_COMMIT,
    TxnDecisionAck,
    TxnDecisionMessage,
    TxnDecisionStatement,
    TxnDispute,
    TxnId,
    TxnPrepareReceipt,
    TxnPrepareRejection,
    TxnPrepareRequest,
    TxnPrepareStatement,
    TxnWrite,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .client import ShardedClient


# ----------------------------------------------------------------------
# Decision records (the log entries Phase 2 appends)
# ----------------------------------------------------------------------
_TXN_DECISION_PREFIX = b"txndec\x00"


def encode_txn_decision(txn_id: TxnId, decision: str, reason: str = "") -> bytes:
    """Encode a transaction decision as a log-entry payload.

    The prefix differs from the ``kvput`` one, so decision records are
    transparently skipped by the LSMerkle page codec — they live in the
    certified log (auditable, dispute-ready) without entering the index.
    """

    if "|" in reason:
        raise SerializationError("decision reasons must not contain '|'")
    body = (
        f"{decision}|{txn_id.coordinator.role.value}:{txn_id.coordinator.name}"
        f"|{txn_id.sequence}|{reason}"
    )
    return _TXN_DECISION_PREFIX + body.encode("utf-8")


def is_txn_decision_payload(payload: bytes) -> bool:
    """Whether a log entry payload encodes a transaction decision record."""

    return payload.startswith(_TXN_DECISION_PREFIX)


def decode_txn_decision(payload: bytes) -> tuple[str, str, int, str]:
    """Decode a decision payload into ``(decision, coordinator, seq, reason)``."""

    if not is_txn_decision_payload(payload):
        raise SerializationError("payload does not encode a transaction decision")
    body = payload[len(_TXN_DECISION_PREFIX) :].decode("utf-8")
    decision, coordinator, sequence, reason = body.split("|", 3)
    return decision, coordinator, int(sequence), reason


# ----------------------------------------------------------------------
# Participant-side staging state (lives on PartitionState)
# ----------------------------------------------------------------------
@dataclass
class StagedTxn:
    """One prepared-but-undecided transaction staged at a participant edge.

    The client-signed entries wait here — outside the log, the buffer, and
    the index — until the signed decision applies or discards them.  The
    receipt the edge answered with is kept so duplicate prepares can be
    re-acknowledged idempotently.
    """

    txn_id: TxnId
    shard_id: Optional[ShardId]
    coordinator: NodeId
    requester: NodeId
    operation_id: OperationId
    entries: tuple[LogEntry, ...]
    writes: tuple[TxnWrite, ...]
    staged_at: float
    expires_at: float
    receipt: TxnPrepareReceipt


# ----------------------------------------------------------------------
# Coordinator-side transaction state
# ----------------------------------------------------------------------
@dataclass
class TxnParticipant:
    """One shard's leg of a transaction, as the coordinator tracks it."""

    shard_id: ShardId
    owner: NodeId
    operation_id: OperationId
    statement: TxnPrepareStatement
    signature: object
    entries: tuple[LogEntry, ...]
    receipt: Optional[TxnPrepareReceipt] = None
    ack: Optional[TxnDecisionAck] = None


@dataclass
class TxnRecord:
    """Everything the coordinator remembers about one transaction."""

    txn_id: TxnId
    participants: dict[ShardId, TxnParticipant]
    started_at: float
    state: str = "preparing"  # preparing | committed | aborted
    decision: Optional[TxnDecisionMessage] = None
    decided_at: Optional[float] = None
    reason: str = ""

    @property
    def all_prepared(self) -> bool:
        return all(p.receipt is not None for p in self.participants.values())

    @property
    def all_acked(self) -> bool:
        return all(p.ack is not None for p in self.participants.values())

    @property
    def participant_shards(self) -> tuple[ShardId, ...]:
        return tuple(sorted(self.participants))


class TxnCoordinator:
    """Drives 2PC for one :class:`~repro.sharding.client.ShardedClient`.

    The coordinator is *the client*: no new trusted party exists, and every
    decision it takes is a signed statement it can be held to.  Participant
    resolution is redirect-aware — a prepare answered with a signed
    ``NotOwnerRedirect`` re-resolves the owner through the client's verified
    shard map and re-sends the same signed prepare, bounded by the client's
    redirect cap.
    """

    def __init__(self, client: "ShardedClient") -> None:
        self.client = client
        self._seq = SequenceGenerator()
        #: Live and recently decided transactions.  Decided records (and
        #: their aborted-write index entries) are evicted once the
        #: retention horizon passes — see :meth:`_arm_record_eviction` —
        #: so coordinator memory is bounded by in-window transactions, not
        #: lifetime count.  The horizon is also the staged-abort-serve
        #: *detection* window: a production deployment would persist the
        #: signed artifacts instead of aging them out.
        self.records: dict[TxnId, TxnRecord] = {}
        #: ``(key, value digest)`` staged by transactions that *aborted* —
        #: the lookup behind staged-abort-serve detection on get responses.
        #: Entries are evicted the moment this client legitimately rewrites
        #: the same pair (see :meth:`note_rewrite`): a retried-after-abort
        #: put must never read back as "serving aborted staged state", or
        #: the auto-dispute would frame an honest edge.
        self.aborted_writes: dict[tuple[str, str], TxnId] = {}
        #: ``(key, value digest)`` of this client's own acknowledged plain
        #: writes, with the ack time (see :meth:`note_entries`): an abort
        #: never registers a pair the client committed itself, however the
        #: plain write and the transaction interleaved.
        self.recent_own_writes: dict[tuple[str, str], float] = {}
        #: Trace context of each live transaction's ``txn.begin`` root span
        #: (observability only); evicted with the record.
        self._obs_txn: dict[TxnId, object] = {}

    def _tracer(self):
        """The shared tracer, or ``None`` when observability is off."""

        obs = self.client.env.obs
        return obs.tracer if obs is not None else None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def _sharding(self) -> ShardingConfig:
        return self.client.config.sharding_or_default()

    def note_rewrite(self, key: str, value: bytes) -> None:
        """Forget an aborted write this client is legitimately re-issuing.

        Called by every write path before the write leaves the client.  The
        guard keeps the hot path free: the digest is only computed while
        the aborted-write index is non-empty.
        """

        if self.aborted_writes:
            self.aborted_writes.pop((key, digest_value(value)), None)

    def note_entries(self, entries) -> None:
        """Record this client's *acknowledged* plain-write pairs.

        Called when an ordinary write completes: the pairs enter
        ``recent_own_writes`` (so an abort deciding later never registers a
        pair this client legitimately committed — the put/txn in-flight
        race) and leave the aborted-write index (the put completed after
        the abort).  Pruned on the same horizon as transaction records.
        """

        for entry in entries:
            if not is_put_payload(entry.payload):
                continue
            key, value = decode_put(entry.payload)
            pair = (key, digest_value(value))
            self.recent_own_writes[pair] = self.client.env.now()
            self.aborted_writes.pop(pair, None)
        if len(self.recent_own_writes) >= 1024:
            # Keep the memory time-bounded even for clients that never run
            # a transaction (no eviction timer ever fires for them).
            self._prune_own_writes()

    def _prune_own_writes(self) -> None:
        horizon = (
            self.client.env.now() - 8 * self._sharding().txn_prepare_timeout_s
        )
        self.recent_own_writes = {
            pair: at
            for pair, at in self.recent_own_writes.items()
            if at >= horizon
        }

    def _has_pending_own_write(self, key: str, value_digest: str) -> bool:
        """Whether a plain write of exactly this pair is still in flight."""

        for record in self.client.tracker.pending_operations():
            if record.details.get("txn_id") is not None:
                continue
            for entry in record.details.get("entries", ()):
                if not is_put_payload(entry.payload):
                    continue
                entry_key, value = decode_put(entry.payload)
                if entry_key == key and digest_value(value) == value_digest:
                    return True
        return False

    # ------------------------------------------------------------------
    # Phase 1: prepare fan-out
    # ------------------------------------------------------------------
    def begin(self, items: Iterable[tuple[str, bytes]]) -> TxnId:
        """Start an atomic multi-key put; returns the transaction id.

        Splits *items* per owning shard, registers one tracked prepare
        operation per participant (so receipts, redirects, and the eventual
        commit acknowledgements flow through the client's ordinary
        verification machinery), and fans the signed prepares out.
        """

        client = self.client
        env = client.env
        now = env.now()
        groups = client.router.split_batch(items)
        if not groups:
            raise ProtocolError("a transaction needs at least one write")
        # Resolve every owner before registering anything: a partial
        # registration would leak forever-pending tracker operations.
        unresolved = sorted(
            shard_id for shard_id, owner in groups if owner is None
        )
        if unresolved:
            raise ProtocolError(
                f"no resolvable owner for shard(s) {unresolved}; cannot prepare"
            )
        txn_id = TxnId(coordinator=client.node_id, sequence=self._seq.next())
        participant_shards = tuple(sorted(shard for shard, _owner in groups))
        participants: dict[ShardId, TxnParticipant] = {}
        for (shard_id, owner), group in sorted(
            groups.items(), key=lambda item: item[0][0]
        ):
            for key, value in group:
                self.note_rewrite(key, value)
            entries = tuple(
                make_entry(
                    registry=env.registry,
                    producer=client.node_id,
                    sequence=client._entry_seq.next(),
                    payload=encode_put(key, value),
                    produced_at=now,
                )
                for key, value in group
            )
            writes = tuple(
                TxnWrite(key=key, value_digest=digest_value(value))
                for key, value in group
            )
            operation_id = client._next_operation_id()
            record = client.tracker.register(
                operation_id,
                OperationKind.PUT,
                now,
                num_entries=len(entries),
                entry_sequences=tuple(entry.sequence for entry in entries),
                edge=owner,
                shard_id=shard_id,
                txn_id=txn_id,
                txn_prepare=True,
            )
            client._annotate_issue(record)
            statement = TxnPrepareStatement(
                coordinator=client.node_id,
                txn_id=txn_id,
                shard_id=shard_id,
                writes=writes,
                participant_shards=participant_shards,
                staged_floor=client._observed_block_ids.get(owner, -1) + 1,
                issued_at=now,
            )
            participants[shard_id] = TxnParticipant(
                shard_id=shard_id,
                owner=owner,
                operation_id=operation_id,
                statement=statement,
                signature=env.registry.sign(client.node_id, statement),
                entries=entries,
            )
        txn = TxnRecord(txn_id=txn_id, participants=participants, started_at=now)
        self.records[txn_id] = txn
        client.stats["txns_started"] += 1
        client.stats["writes_issued"] += len(participants)
        client.stats["entries_sent"] += sum(
            len(p.entries) for p in participants.values()
        )
        tracer = self._tracer()
        if tracer is None:
            for participant in participants.values():
                self._send_prepare(participant)
        else:
            # Root span of the transaction's trace: the prepares carry its
            # context to the participants, and txn.decide parents off it.
            with tracer.span(
                "txn.begin",
                parent=None,
                node=str(client.node_id),
                txn=str(txn_id),
                shards=len(participants),
            ) as span:
                self._obs_txn[txn_id] = span.context
                for participant in participants.values():
                    self._send_prepare(participant)
        env.schedule(
            self._sharding().txn_receipt_timeout_s,
            lambda: self._receipt_timeout(txn_id),
            label=f"{client.node_id}:txn-receipt-timer",
        )
        return txn_id

    def _send_prepare(self, participant: TxnParticipant) -> None:
        client = self.client
        client.env.send(
            client.node_id,
            participant.owner,
            TxnPrepareRequest(
                statement=participant.statement,
                signature=participant.signature,
                operation_id=participant.operation_id,
                entries=participant.entries,
            ),
        )

    def reroute_prepare(
        self, txn_id: TxnId, shard_id: ShardId, owner: NodeId
    ) -> None:
        """Re-send one participant's prepare to a redirected owner.

        The statement is re-derived for the *new* owner: the staging
        watermark is per-edge (one past the highest block id observed from
        that edge), so re-sending the old owner's floor to a fresh edge
        whose log starts lower would be deterministically rejected.  The
        re-signed statement supersedes the old one everywhere the
        coordinator compares against it (receipt digest binding included).
        """

        client = self.client
        txn = self.records.get(txn_id)
        if txn is None or txn.state != "preparing":
            return
        participant = txn.participants.get(shard_id)
        if participant is None:
            return
        participant.owner = owner
        old = participant.statement
        participant.statement = TxnPrepareStatement(
            coordinator=old.coordinator,
            txn_id=old.txn_id,
            shard_id=old.shard_id,
            writes=old.writes,
            participant_shards=old.participant_shards,
            staged_floor=client._observed_block_ids.get(owner, -1) + 1,
            issued_at=client.env.now(),
        )
        participant.signature = client.env.registry.sign(
            client.node_id, participant.statement
        )
        client.stats["txn_prepare_reroutes"] += 1
        self._send_prepare(participant)

    # ------------------------------------------------------------------
    # Receipt collection → decision
    # ------------------------------------------------------------------
    def on_receipt(self, sender: NodeId, receipt: TxnPrepareReceipt) -> None:
        client = self.client
        env = client.env
        env.charge(env.params.verify_seconds)
        txn = self.records.get(receipt.txn_id)
        if txn is None:
            return
        participant = txn.participants.get(receipt.shard_id)
        if participant is None:
            return
        statement = receipt.statement
        if statement.edge != sender or sender != participant.owner:
            return
        if not receipt.verify(env.registry):
            return
        if txn.state != "preparing":
            # A straggler receipt after the decision (e.g. a prepare parked
            # behind a shard handoff): re-send the decision so the orphaned
            # stage resolves instead of waiting for its expiry.
            if txn.decision is not None:
                env.send(client.node_id, sender, txn.decision)
            return
        if (
            statement.txn_id != participant.statement.txn_id
            or statement.prepare_digest != digest_value(participant.statement)
            or statement.writes != participant.statement.writes
        ):
            # The edge signed a receipt for a write set (or a prepare) the
            # coordinator never sent it: a provable lie — dispute and abort.
            client.stats["txn_receipt_mismatches"] += 1
            self._dispute_receipt_mismatch(participant, receipt)
            self._decide(txn, TXN_ABORT, "tampered prepare receipt")
            return
        participant.receipt = receipt
        if not txn.all_prepared:
            return
        now = env.now()
        if any(
            now >= p.receipt.statement.expires_at
            for p in txn.participants.values()
        ):
            # A participant's promise horizon already passed: committing
            # could split the fleet (it may have presumed abort), so the
            # only safe decision is abort.
            self._decide(txn, TXN_ABORT, "prepare receipt expired")
            return
        self._decide(txn, TXN_COMMIT, "all participants prepared")

    def on_rejection(self, sender: NodeId, rejection: TxnPrepareRejection) -> None:
        txn = self.records.get(rejection.txn_id)
        if txn is None or txn.state != "preparing":
            return
        participant = txn.participants.get(rejection.shard_id)
        if participant is None or sender != participant.owner:
            return
        self.client.stats["txn_prepare_rejections"] += 1
        self._decide(txn, TXN_ABORT, f"participant refused: {rejection.reason}")

    def on_ack(self, sender: NodeId, ack: TxnDecisionAck) -> None:
        txn = self.records.get(ack.txn_id)
        if txn is None:
            return
        participant = txn.participants.get(ack.shard_id)
        if participant is None or ack.edge != sender:
            return
        if participant.ack is None:
            participant.ack = ack
            self.client.stats["txn_decision_acks"] += 1

    def _receipt_timeout(self, txn_id: TxnId) -> None:
        txn = self.records.get(txn_id)
        if txn is None or txn.state != "preparing":
            return
        missing = sum(1 for p in txn.participants.values() if p.receipt is None)
        self._decide(
            txn, TXN_ABORT, f"{missing} prepare receipt(s) missing at timeout"
        )

    # ------------------------------------------------------------------
    # Phase 2: the signed decision
    # ------------------------------------------------------------------
    def _decide(self, txn: TxnRecord, decision: str, reason: str) -> None:
        if txn.state != "preparing":
            return
        client = self.client
        env = client.env
        now = env.now()
        statement = TxnDecisionStatement(
            coordinator=client.node_id,
            txn_id=txn.txn_id,
            decision=decision,
            participant_shards=txn.participant_shards,
            decided_at=now,
        )
        message = TxnDecisionMessage(
            statement=statement, signature=env.registry.sign(client.node_id, statement)
        )
        txn.decision = message
        txn.decided_at = now
        txn.reason = reason
        txn.state = "committed" if decision == TXN_COMMIT else "aborted"
        client.stats[
            "txns_committed" if decision == TXN_COMMIT else "txns_aborted"
        ] += 1
        # Every participant gets the decision — including ones whose receipt
        # never arrived: if they staged late (parked request, slow link) the
        # decision cleans the orphan stage instead of leaving it to expire.
        tracer = self._tracer()
        if tracer is None:
            for participant in txn.participants.values():
                env.send(client.node_id, participant.owner, message)
        else:
            with tracer.span(
                "txn.decide",
                parent=self._obs_txn.get(txn.txn_id),
                node=str(client.node_id),
                txn=str(txn.txn_id),
                decision=decision,
            ):
                for participant in txn.participants.values():
                    env.send(client.node_id, participant.owner, message)
        self._arm_decision_retry(txn, attempt=1)
        for participant in txn.participants.values():
            # The signed entries exist to re-send prepares; after the
            # decision they are dead weight — drop them so long-running
            # workloads don't retain every transaction's payloads (the
            # statements, receipts, and acks kept below are tiny).
            participant.entries = ()
        self._arm_record_eviction(txn)
        if decision == TXN_ABORT:
            for participant in txn.participants.values():
                for write in participant.statement.writes:
                    pair = (write.key, write.value_digest)
                    if pair in self.recent_own_writes:
                        # This client committed the same pair itself as a
                        # plain write: a later serve of it is legitimate,
                        # not staged state.
                        continue
                    self.aborted_writes[pair] = txn.txn_id
                record = client.tracker.get(participant.operation_id)
                if record.phase_two_at is None:
                    client.tracker.mark_failed(
                        participant.operation_id, now, f"transaction aborted: {reason}"
                    )

    #: How many times an unacknowledged decision is re-sent before the
    #: coordinator gives up and leaves the participant to its presumed-abort
    #: expiry.
    DECISION_RETRY_LIMIT = 5

    def _decision_retry_policy(self) -> "RetryPolicy":
        """Spacing that lands *every* retry inside the safe delivery window.

        A commit is only signed while each receipt is unexpired, so the
        participants' stages live for at least ``txn_prepare_timeout_s -
        txn_receipt_timeout_s`` more seconds — retries past that horizon
        would hit already-discarded stages (the commit/abort split the
        retransmission exists to prevent).  The whole retry budget is
        therefore spread evenly across that gap: a constant
        :class:`~repro.faults.retry.RetryPolicy` with the budget as its
        attempt cap (exponential backoff would push late attempts out of
        the safe window).  Config guarantees the gap is positive
        (``txn_prepare_timeout_s > txn_receipt_timeout_s``).
        """

        sharding = self._sharding()
        window = sharding.txn_prepare_timeout_s - sharding.txn_receipt_timeout_s
        return RetryPolicy.constant(
            window / (self.DECISION_RETRY_LIMIT + 1),
            max_attempts=self.DECISION_RETRY_LIMIT,
        )

    def _arm_decision_retry(self, txn: TxnRecord, attempt: int) -> None:
        """Re-send the signed decision until every participant acknowledged.

        A decision lost on the wire must not split the transaction: without
        retransmission one participant would presume abort at its expiry
        while the rest committed.  Duplicate deliveries are harmless — the
        participants absorb them idempotently off the decided tombstone.
        """

        policy = self._decision_retry_policy()
        if not policy.allows(attempt) or txn.all_acked:
            return
        client = self.client

        def retry() -> None:
            if txn.all_acked or txn.decision is None:
                return
            for participant in txn.participants.values():
                if participant.ack is None:
                    client.stats["txn_decision_retries"] += 1
                    client.env.send(
                        client.node_id, participant.owner, txn.decision
                    )
            self._arm_decision_retry(txn, attempt + 1)

        client.env.schedule(
            policy.delay(attempt),
            retry,
            label=f"{client.node_id}:txn-decision-retry",
        )

    def _arm_record_eviction(self, txn: TxnRecord) -> None:
        """Age a decided transaction's coordinator state out after a while.

        Mirrors the participant-side tombstone eviction: well past the
        signed timing window nothing protocol-critical can still reference
        the record, so it and its aborted-write index entries go — keeping
        a long-running coordinator's memory proportional to in-window
        transactions.
        """

        def evict() -> None:
            record = self.records.pop(txn.txn_id, None)
            self._obs_txn.pop(txn.txn_id, None)
            if record is None:
                return
            for participant in record.participants.values():
                for write in participant.statement.writes:
                    pair = (write.key, write.value_digest)
                    if self.aborted_writes.get(pair) == txn.txn_id:
                        del self.aborted_writes[pair]
            self._prune_own_writes()

        self.client.env.schedule(
            8 * self._sharding().txn_prepare_timeout_s,
            evict,
            label=f"{self.client.node_id}:txn-record-evict",
        )

    # ------------------------------------------------------------------
    # Disputes
    # ------------------------------------------------------------------
    def _dispute_receipt_mismatch(
        self, participant: TxnParticipant, receipt: TxnPrepareReceipt
    ) -> None:
        client = self.client
        client.stats["txn_disputes_sent"] += 1
        client.env.send(
            client.node_id,
            client.cloud,
            TxnDispute(
                reporter=client.node_id,
                accused=receipt.edge,
                txn_id=receipt.txn_id,
                kind="prepare-receipt-mismatch",
                prepare_statement=participant.statement,
                prepare_signature=participant.signature,
                receipt=receipt,
            ),
        )

    def maybe_dispute_staged_serve(
        self, statement, signature, record_sequence: Optional[int], proof=None
    ) -> bool:
        """Dispute a get response that serves an aborted transaction's write.

        Called by the client after a get response verified: if the served
        ``(key, value digest)`` matches a write staged by a transaction this
        coordinator *aborted*, and the proof places the record at or after
        the prepare receipt's staged log position, the serving edge is
        presenting state the signed abort ordered discarded.  The evidence
        triple (edge-signed receipt, coordinator-signed abort, edge-signed
        serve statement) is self-contained, so the cloud can convict without
        trusting the reporter.  Returns whether a dispute was raised.

        Two guards keep honest edges safe from their own coordinator:
        pairs the client legitimately *rewrites* after the abort leave the
        index (:meth:`note_rewrite`), and a value whose proven sequence
        *predates* the receipt's ``log_position`` is an earlier write that
        happens to share the bytes, never the staged state.  The common
        case stays near-free on the get hot path: the aborted-write lookup
        is a dict miss, and the response signature is only re-verified —
        and its CPU cost charged — once that lookup hits.
        """

        if not statement.found or statement.value_digest is None:
            return False
        if record_sequence is None:
            return False
        txn_id = self.aborted_writes.get((statement.key, statement.value_digest))
        if txn_id is None:
            return False
        if self._has_pending_own_write(statement.key, statement.value_digest):
            # This client's own plain write of the pair is still in flight:
            # the served value may be that legitimate write racing its ack.
            return False
        env = self.client.env
        env.charge(env.params.verify_seconds)
        if signature.signer != statement.edge or not env.registry.verify(
            signature, statement
        ):
            return False
        txn = self.records.get(txn_id)
        if txn is None or txn.decision is None:
            return False
        accused = None
        for participant in txn.participants.values():
            if (
                participant.receipt is not None
                and participant.receipt.edge == statement.edge
                and any(
                    write.key == statement.key
                    and write.value_digest == statement.value_digest
                    for write in participant.receipt.statement.writes
                )
            ):
                accused = participant
                break
        if accused is None:
            return False
        if record_sequence < accused.statement.staged_floor * SEQUENCE_STRIDE:
            # The proven record predates this coordinator's own staging
            # watermark: a legitimate pre-transaction write of the same
            # bytes (the watermark is coordinator-observed, so a lying
            # participant cannot widen this exoneration).
            return False
        client = self.client
        client.stats["txn_disputes_sent"] += 1
        # One dispute per staged pair: the ledger is append-only and the
        # evidence does not improve with repetition — re-reads of the same
        # key must not re-punish.
        del self.aborted_writes[(statement.key, statement.value_digest)]
        client.env.send(
            client.node_id,
            client.cloud,
            TxnDispute(
                reporter=client.node_id,
                accused=statement.edge,
                txn_id=txn_id,
                kind="staged-abort-serve",
                prepare_statement=accused.statement,
                prepare_signature=accused.signature,
                receipt=accused.receipt,
                decision=txn.decision,
                serve_statement=statement,
                serve_signature=signature,
                # The index proof + coordinator-signed floor make the
                # conviction proof-bound at the cloud: neither a backdated
                # issued_at nor an inflated receipt position can shield the
                # edge.
                serve_proof=proof,
            ),
        )
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state_of(self, txn_id: TxnId) -> str:
        return self.records[txn_id].state

    def record(self, txn_id: TxnId) -> TxnRecord:
        return self.records[txn_id]
