"""Key-space partitioning: mapping keys to shard ids.

Two partitioners are provided behind one interface:

``HashRingPartitioner``
    Consistent hashing over a ring of virtual nodes.  Each shard owns
    several deterministic points on a 2^64 ring; a key hashes to a point
    and belongs to the first shard point at or after it.  Load spreads
    uniformly regardless of key skew in *key space* (hot individual keys
    still concentrate on their shard), and shard count changes move only a
    proportional slice of the ring.

``RangePartitioner``
    Contiguous lexicographic ranges over the fixed-width key format of
    :func:`repro.workloads.generator.format_key`.  Ordered scans stay
    shard-local, but skewed workloads (Zipfian over key indices) pile onto
    the low shards — exactly the hotspot case the certified shard-handoff
    protocol rebalances away.

Both are pure functions of their configuration: every node of a fleet
(clients, edges, cloud) instantiates the same partitioner from the shard
map's ``partitioner`` name and agrees on key placement without
communication.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, bisect_right
from typing import Iterable

from ..common.errors import ConfigurationError
from ..common.identifiers import ShardId

#: Virtual ring points per shard (hash-ring only).  Enough to keep the
#: per-shard share of the ring within a few percent of uniform.
DEFAULT_VNODES_PER_SHARD = 32

_RING_BITS = 64
_RING_SIZE = 1 << _RING_BITS


class KeyPartitioner:
    """Interface every partitioner implements: key → shard id."""

    #: Registry name ("hash-ring" / "range"), set by subclasses.
    name: str = ""

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        self.num_shards = num_shards

    def shard_of(self, key: str) -> ShardId:
        """The shard id owning *key*."""

        raise NotImplementedError

    def shards(self) -> range:
        """Every shard id, in order."""

        return range(self.num_shards)

    def group_keys(self, keys: Iterable[str]) -> dict[ShardId, list[str]]:
        """Bucket keys by owning shard (used by batch-splitting clients)."""

        grouped: dict[ShardId, list[str]] = {}
        for key in keys:
            grouped.setdefault(self.shard_of(key), []).append(key)
        return grouped


def _ring_point(label: str) -> int:
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRingPartitioner(KeyPartitioner):
    """Consistent hashing over a 2^64 ring of virtual shard points."""

    name = "hash-ring"

    def __init__(
        self, num_shards: int, vnodes_per_shard: int = DEFAULT_VNODES_PER_SHARD
    ) -> None:
        super().__init__(num_shards)
        if vnodes_per_shard <= 0:
            raise ConfigurationError("vnodes_per_shard must be positive")
        self.vnodes_per_shard = vnodes_per_shard
        points: list[tuple[int, ShardId]] = []
        for shard_id in range(num_shards):
            for vnode in range(vnodes_per_shard):
                points.append((_ring_point(f"shard-{shard_id}:vn-{vnode}"), shard_id))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_of(self, key: str) -> ShardId:
        point = _ring_point(f"key:{key}")
        index = bisect_left(self._points, point)
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._owners[index]


class RangePartitioner(KeyPartitioner):
    """Contiguous lexicographic key ranges, one per shard.

    Split points divide the sorted key universe into ``num_shards`` equal
    slices of the fixed-width decimal suffix produced by ``format_key``.
    Keys outside that format still partition deterministically (by falling
    into whichever range their string sorts into).
    """

    name = "range"

    #: Width of the decimal suffix in ``format_key`` ("key%012d").
    KEY_INDEX_WIDTH = 12

    def __init__(self, num_shards: int, key_space: int = 10**KEY_INDEX_WIDTH) -> None:
        super().__init__(num_shards)
        if key_space < num_shards:
            raise ConfigurationError("key_space must be at least num_shards")
        self.key_space = key_space
        width = self.KEY_INDEX_WIDTH
        #: Lower bound key of each shard after the first.
        self._split_keys = [
            f"key{(shard_id * key_space) // num_shards:0{width}d}"
            for shard_id in range(1, num_shards)
        ]

    def shard_of(self, key: str) -> ShardId:
        return bisect_right(self._split_keys, key)


def make_partitioner(
    name: str, num_shards: int, key_space: int = 10**RangePartitioner.KEY_INDEX_WIDTH
) -> KeyPartitioner:
    """Instantiate a partitioner by registry name."""

    if name == HashRingPartitioner.name:
        return HashRingPartitioner(num_shards)
    if name == RangePartitioner.name:
        return RangePartitioner(num_shards, key_space=key_space)
    raise ConfigurationError(f"unknown partitioner {name!r}")
