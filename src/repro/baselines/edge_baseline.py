"""The Edge-baseline (Section II-C).

Data is certified *synchronously*: the edge node forwards every freshly
formed block — the full data, not a digest — to the cloud, waits for the
cloud's certification, and only then acknowledges the clients.  Reads are
served from the edge with proofs, exactly like Phase II reads in WedgeChain.
This is the "current way of utilizing untrusted nodes" the paper compares
against; its latency grows with batch size because the full-data transfer
and the cloud-side processing sit on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..common.config import SystemConfig
from ..common.errors import ConfigurationError
from ..common.identifiers import NodeId, OperationId
from ..core.commit import CommitTracker
from ..log.block import Block, compute_block_digest
from ..log.proofs import CommitPhase, issue_block_proof
from ..messages.log_messages import AppendBatchResponse, BlockProofMessage
from ..nodes.client import Client
from ..nodes.cloud import CloudNode
from ..nodes.edge import EdgeNode
from ..sim.environment import Environment
from ..sim.parameters import SimulationParameters
from ..sim.topology import Topology


@dataclass(frozen=True)
class FullBlockCertifyRequest:
    """Edge → cloud: certify this block, full contents attached."""

    edge: NodeId
    block: Block

    @property
    def block_id(self) -> int:
        return self.block.block_id

    @property
    def wire_size(self) -> int:
        return 48 + self.block.wire_size


@dataclass(frozen=True)
class CertifiedStateResponse(BlockProofMessage):
    """Cloud → edge: the block proof plus the regenerated trusted state.

    In the edge-baseline the cloud "regenerates the Merkle tree ... and sends
    the Merkle tree to the edge node" (Section II-C), so the response size
    grows with the certified data; ``state_bytes`` models that payload.
    """

    state_bytes: int = 0

    @property
    def wire_size(self) -> int:
        return self.proof.wire_size + 16 + self.state_bytes


class EdgeBaselineCloudNode(CloudNode):
    """A cloud node that additionally certifies full-data blocks."""

    def on_message(self, sender: NodeId, message) -> None:
        if isinstance(message, FullBlockCertifyRequest):
            self._handle_full_certify(sender, message)
        else:
            super().on_message(sender, message)

    def _handle_full_certify(
        self, sender: NodeId, request: FullBlockCertifyRequest
    ) -> None:
        params = self.env.params
        block = request.block
        # The cloud must hash the whole block and rebuild Merkle state: this
        # is the processing cost that, together with the full-data transfer,
        # hurts the baseline at large batch sizes.
        self.env.charge(
            params.full_certification_cost(block.num_entries, block.wire_size)
        )
        if request.edge != sender or block.edge != sender:
            return
        digest = compute_block_digest(block.edge, block.block_id, block.entries)
        edge_digests = self._certified.setdefault(request.edge, {})
        existing = edge_digests.get(block.block_id)
        if existing is not None and existing != digest:
            self.stats["certify_conflicts"] += 1
            self._punish(
                request.edge,
                reason="conflicting full-data certification",
                block_id=block.block_id,
            )
            return
        edge_digests[block.block_id] = digest
        proof = issue_block_proof(
            registry=self.env.registry,
            cloud=self.node_id,
            edge=request.edge,
            block_id=block.block_id,
            block_digest=digest,
            certified_at=self.env.now(),
        )
        self._proofs[(request.edge, block.block_id)] = proof
        self.stats["certifications"] += 1
        self.env.send(
            self.node_id,
            sender,
            CertifiedStateResponse(proof=proof, state_bytes=block.wire_size),
        )


class EdgeBaselineEdgeNode(EdgeNode):
    """An edge node that waits for cloud certification before acknowledging."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Phase I responses deferred until the cloud certifies the block.
        self._deferred: dict[int, tuple[list[tuple[NodeId, OperationId]], Block, object]] = {}

    # The synchronous baseline ships the whole block to the cloud …
    def _send_certify_request(self, block: Block, digest: str) -> None:
        self.stats["certify_requests"] += 1
        self.env.send(
            self.node_id,
            self.cloud,
            FullBlockCertifyRequest(edge=self.node_id, block=block),
        )

    # … and postpones client acknowledgements until certification returns.
    def _dispatch_phase_one_responses(self, requesters, block, receipt) -> None:
        self._deferred[block.block_id] = (list(requesters), block, receipt)

    def _handle_block_proof(self, sender: NodeId, message: BlockProofMessage) -> None:
        super()._handle_block_proof(sender, message)
        deferred = self._deferred.pop(message.proof.block_id, None)
        if deferred is None:
            return
        requesters, block, receipt = deferred
        # Installing the regenerated trusted state at the edge costs time
        # proportional to the certified data (Section II-C).
        self.env.charge(
            self.env.params.merkle_rebuild_seconds_per_entry * block.num_entries
        )
        for requester, operation_id in requesters:
            response = AppendBatchResponse(
                edge=self.node_id,
                operation_id=operation_id,
                block_id=block.block_id,
                receipt=receipt,
                block=self._block_for_response(block),
            )
            self.env.send(self.node_id, requester, response)


class EdgeBaselineSystem:
    """Deployment facade for the edge-baseline."""

    name = "edge-baseline"

    def __init__(
        self,
        env: Environment,
        config: SystemConfig,
        cloud: EdgeBaselineCloudNode,
        edges: Sequence[EdgeBaselineEdgeNode],
        clients: Sequence[Client],
    ) -> None:
        self.env = env
        self.config = config
        self.cloud = cloud
        self.edges = list(edges)
        self.clients = list(clients)

    @classmethod
    def build(
        cls,
        config: Optional[SystemConfig] = None,
        num_clients: int = 1,
        env: Optional[Environment] = None,
        topology: Optional[Topology] = None,
        params: Optional[SimulationParameters] = None,
        seed: int = 7,
    ) -> "EdgeBaselineSystem":
        config = config if config is not None else SystemConfig.paper_default()
        if num_clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        if env is None:
            env = Environment(
                topology=topology,
                params=params,
                signature_scheme=config.security.signature_scheme,
                seed=seed,
            )
        cloud = EdgeBaselineCloudNode(env=env, config=config, name="cloud-0")
        edges = [
            EdgeBaselineEdgeNode(
                env=env,
                cloud=cloud.node_id,
                config=config,
                name=f"edge-{index}",
                region=config.placement.edge_region,
            )
            for index in range(config.num_edge_nodes)
        ]
        clients = []
        for index in range(num_clients):
            edge = edges[index % len(edges)]
            clients.append(
                Client(
                    env=env,
                    edge=edge.node_id,
                    cloud=cloud.node_id,
                    config=config,
                    name=f"client-{index}",
                    region=config.placement.client_region,
                )
            )
        return cls(env=env, config=config, cloud=cloud, edges=edges, clients=clients)

    # ------------------------------------------------------------------
    def client(self, index: int = 0) -> Client:
        return self.clients[index]

    def edge(self, index: int = 0) -> EdgeBaselineEdgeNode:
        return self.edges[index]

    def trackers(self) -> list[CommitTracker]:
        return [client.tracker for client in self.clients]

    def run(self, max_events: Optional[int] = None) -> int:
        return self.env.run(max_events)

    def run_for(self, duration_s: float) -> int:
        return self.env.run_until(self.env.now() + duration_s)

    def wait_for_all(
        self,
        operations: Iterable[tuple[Client, OperationId]],
        phase: CommitPhase = CommitPhase.PHASE_TWO,
        max_time_s: float = 300.0,
    ) -> bool:
        pairs = list(operations)

        def done() -> bool:
            for client, operation_id in pairs:
                current = client.tracker.get(operation_id).phase
                if current not in (CommitPhase.PHASE_TWO, CommitPhase.FAILED):
                    return False
            return True

        return self.env.run_until_condition(done, self.env.now() + max_time_s)
