"""The Cloud-only baseline (Section VI).

All requests are served by the trusted cloud node: clients pay the wide-area
round trip on every operation, but results need no verification because no
untrusted party handled them.  The cloud keeps the log and a plain (trusted,
non-Merkle) LSM index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from ..common.config import SystemConfig
from ..common.errors import ConfigurationError
from ..common.identifiers import (
    BlockId,
    NodeId,
    OperationId,
    OperationKind,
    SequenceGenerator,
    client_id,
    cloud_id,
)
from ..common.regions import Region
from ..core.commit import CommitTracker
from ..log.block import Block, build_block
from ..log.buffer import BlockBuffer
from ..log.proofs import CommitPhase
from ..log.wedge_log import WedgeLog
from ..lsm.lsm_tree import LSMTree
from ..lsmerkle.codec import encode_put, page_from_block
from ..log.entry import make_entry
from ..messages.kv_messages import GetRequest
from ..messages.log_messages import AppendBatchRequest, ReadRequest
from ..sim.environment import Environment
from ..sim.parameters import SimulationParameters
from ..sim.topology import Topology


# ----------------------------------------------------------------------
# Baseline-specific response messages (no proofs needed: the cloud is trusted)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CloudWriteResponse:
    operation_id: OperationId
    block_id: BlockId

    @property
    def wire_size(self) -> int:
        return 48


@dataclass(frozen=True)
class CloudReadResponse:
    operation_id: OperationId
    block_id: BlockId
    found: bool
    block: Optional[Block] = None

    @property
    def wire_size(self) -> int:
        return 48 + (self.block.wire_size if self.block is not None else 0)


@dataclass(frozen=True)
class CloudGetResponse:
    operation_id: OperationId
    key: str
    found: bool
    value: Optional[bytes] = None

    @property
    def wire_size(self) -> int:
        return 48 + len(self.key) + (len(self.value) if self.value is not None else 0)


class CloudStoreNode:
    """The trusted cloud store serving every request directly."""

    def __init__(
        self,
        env: Environment,
        config: Optional[SystemConfig] = None,
        name: str = "cloud-store",
        region: Optional[Region] = None,
    ) -> None:
        self.env = env
        self.config = config if config is not None else SystemConfig.paper_default()
        self.node_id = cloud_id(name)
        self.region = region if region is not None else self.config.placement.cloud_region
        self.log = WedgeLog(self.node_id)
        self.buffer = BlockBuffer(self.config.logging.block_size)
        self.index = LSMTree(
            config=self.config.lsmerkle,
            page_capacity=self.config.logging.block_size,
        )
        self.stats = {"blocks_formed": 0, "entries_logged": 0, "reads": 0, "gets": 0}
        env.attach(self)

    def on_message(self, sender: NodeId, message: Any) -> None:
        if isinstance(message, AppendBatchRequest):
            self._handle_append(sender, message)
        elif isinstance(message, ReadRequest):
            self._handle_read(sender, message)
        elif isinstance(message, GetRequest):
            self._handle_get(sender, message)

    # ------------------------------------------------------------------
    def _handle_append(self, sender: NodeId, request: AppendBatchRequest) -> None:
        params = self.env.params
        payload_bytes = sum(len(entry.payload) for entry in request.entries)
        self.env.charge(
            params.request_overhead_seconds
            + params.verify_seconds
            + params.append_seconds_per_op * len(request.entries)
            + params.hash_cost(payload_bytes)
        )
        now = self.env.now()
        batch = None
        for entry in request.entries:
            batch = self.buffer.append(
                entry, now=now, operation_id=request.operation_id, requester=sender
            )
            if batch is not None:
                self._form_block(batch)
        if batch is None and not self.buffer.is_empty:
            # Light load: flush immediately so the client is not left waiting.
            leftover = self.buffer.flush()
            if leftover is not None:
                self._form_block(leftover)

    def _form_block(self, batch) -> None:
        params = self.env.params
        now = self.env.now()
        block_id = self.log.allocate_block_id()
        block = build_block(self.node_id, block_id, batch.log_entries, now)
        self.env.charge(params.block_build_cost(block.num_entries, block.wire_size))
        self.log.append(block)
        self.stats["blocks_formed"] += 1
        self.stats["entries_logged"] += block.num_entries

        page = page_from_block(block)
        if page is not None:
            if self.index.add_level_zero_page(page):
                merges = self.index.compact_all(now)
                merged_records = sum(result.records_in for result in merges)
                self.env.charge(params.merge_seconds_per_entry * merged_records)

        notified = set()
        for item in batch.entries:
            if item.requester is None or item.operation_id is None:
                continue
            key = (item.requester, item.operation_id)
            if key in notified:
                continue
            notified.add(key)
            self.env.send(
                self.node_id,
                item.requester,
                CloudWriteResponse(operation_id=item.operation_id, block_id=block_id),
            )

    def _handle_read(self, sender: NodeId, request: ReadRequest) -> None:
        params = self.env.params
        self.stats["reads"] += 1
        self.env.charge(params.request_overhead_seconds + params.lookup_seconds_per_op)
        record = self.log.try_get(request.block_id)
        self.env.send(
            self.node_id,
            sender,
            CloudReadResponse(
                operation_id=request.operation_id,
                block_id=request.block_id,
                found=record is not None,
                block=record.block if record is not None else None,
            ),
        )

    def _handle_get(self, sender: NodeId, request: GetRequest) -> None:
        params = self.env.params
        self.stats["gets"] += 1
        self.env.charge(params.request_overhead_seconds + params.lookup_seconds_per_op)
        result = self.index.get(request.key)
        self.env.send(
            self.node_id,
            sender,
            CloudGetResponse(
                operation_id=request.operation_id,
                key=request.key,
                found=result.found,
                value=result.record.value if result.found else None,
            ),
        )


class CloudOnlyClient:
    """A client of the cloud-only baseline (no edge node, no verification)."""

    def __init__(
        self,
        env: Environment,
        cloud: NodeId,
        config: Optional[SystemConfig] = None,
        name: str = "client-0",
        region: Optional[Region] = None,
    ) -> None:
        self.env = env
        self.config = config if config is not None else SystemConfig.paper_default()
        self.node_id = client_id(name)
        self.region = region if region is not None else self.config.placement.client_region
        self.cloud = cloud
        self.tracker = CommitTracker()
        self._operation_seq = SequenceGenerator()
        self._entry_seq = SequenceGenerator()
        self.stats = {"writes_issued": 0, "reads_issued": 0, "gets_issued": 0}
        env.attach(self)

    # ------------------------------------------------------------------
    def put_batch(self, items: Iterable[tuple[str, bytes]]) -> OperationId:
        payloads = [encode_put(key, value) for key, value in items]
        return self._append(payloads, OperationKind.PUT)

    def add_batch(self, payloads: Sequence[bytes]) -> OperationId:
        return self._append(list(payloads), OperationKind.ADD)

    def get(self, key: str) -> OperationId:
        now = self.env.now()
        operation_id = self._next_operation_id()
        self.tracker.register(operation_id, OperationKind.GET, now, key=key)
        self.stats["gets_issued"] += 1
        self.env.send(
            self.node_id,
            self.cloud,
            GetRequest(requester=self.node_id, operation_id=operation_id, key=key),
        )
        return operation_id

    def read(self, block_id: BlockId) -> OperationId:
        now = self.env.now()
        operation_id = self._next_operation_id()
        self.tracker.register(operation_id, OperationKind.READ, now, block_id=block_id)
        self.stats["reads_issued"] += 1
        self.env.send(
            self.node_id,
            self.cloud,
            ReadRequest(
                requester=self.node_id, operation_id=operation_id, block_id=block_id
            ),
        )
        return operation_id

    def _append(self, payloads: list[bytes], kind: OperationKind) -> OperationId:
        now = self.env.now()
        operation_id = self._next_operation_id()
        entries = tuple(
            make_entry(
                registry=self.env.registry,
                producer=self.node_id,
                sequence=self._entry_seq.next(),
                payload=payload,
                produced_at=now,
            )
            for payload in payloads
        )
        self.tracker.register(operation_id, kind, now, num_entries=len(entries))
        self.stats["writes_issued"] += 1
        self.env.send(
            self.node_id,
            self.cloud,
            AppendBatchRequest(
                requester=self.node_id,
                operation_id=operation_id,
                kind=kind,
                entries=entries,
            ),
        )
        return operation_id

    def _next_operation_id(self) -> OperationId:
        return OperationId(client=self.node_id, sequence=self._operation_seq.next())

    # ------------------------------------------------------------------
    def on_message(self, sender: NodeId, message: Any) -> None:
        now = self.env.now()
        if isinstance(message, CloudWriteResponse):
            if message.operation_id in self.tracker:
                self.tracker.mark_phase_one(
                    message.operation_id, now, block_id=message.block_id
                )
                self.tracker.mark_phase_two(message.operation_id, now)
        elif isinstance(message, CloudReadResponse):
            if message.operation_id in self.tracker:
                record = self.tracker.get(message.operation_id)
                record.details["found"] = message.found
                if message.block is not None:
                    record.details["num_entries"] = message.block.num_entries
                if message.found:
                    self.tracker.mark_phase_one(
                        message.operation_id, now, block_id=message.block_id
                    )
                    self.tracker.mark_phase_two(message.operation_id, now)
                else:
                    self.tracker.mark_failed(message.operation_id, now, "not found")
        elif isinstance(message, CloudGetResponse):
            if message.operation_id in self.tracker:
                record = self.tracker.get(message.operation_id)
                record.details["found"] = message.found
                record.details["value"] = message.value
                self.tracker.mark_phase_one(message.operation_id, now)
                self.tracker.mark_phase_two(message.operation_id, now)

    def value_of(self, operation_id: OperationId) -> Optional[bytes]:
        return self.tracker.get(operation_id).details.get("value")


class CloudOnlySystem:
    """Deployment facade for the cloud-only baseline."""

    name = "cloud-only"

    def __init__(
        self,
        env: Environment,
        config: SystemConfig,
        cloud: CloudStoreNode,
        clients: Sequence[CloudOnlyClient],
    ) -> None:
        self.env = env
        self.config = config
        self.cloud = cloud
        self.clients = list(clients)

    @classmethod
    def build(
        cls,
        config: Optional[SystemConfig] = None,
        num_clients: int = 1,
        env: Optional[Environment] = None,
        topology: Optional[Topology] = None,
        params: Optional[SimulationParameters] = None,
        seed: int = 7,
    ) -> "CloudOnlySystem":
        config = config if config is not None else SystemConfig.paper_default()
        if num_clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        if env is None:
            env = Environment(
                topology=topology,
                params=params,
                signature_scheme=config.security.signature_scheme,
                seed=seed,
            )
        cloud = CloudStoreNode(env=env, config=config)
        clients = [
            CloudOnlyClient(
                env=env,
                cloud=cloud.node_id,
                config=config,
                name=f"client-{index}",
                region=config.placement.client_region,
            )
            for index in range(num_clients)
        ]
        return cls(env=env, config=config, cloud=cloud, clients=clients)

    # ------------------------------------------------------------------
    def client(self, index: int = 0) -> CloudOnlyClient:
        return self.clients[index]

    def trackers(self) -> list[CommitTracker]:
        return [client.tracker for client in self.clients]

    def run(self, max_events: Optional[int] = None) -> int:
        return self.env.run(max_events)

    def run_for(self, duration_s: float) -> int:
        return self.env.run_until(self.env.now() + duration_s)

    def wait_for_all(
        self,
        operations: Iterable[tuple[CloudOnlyClient, OperationId]],
        phase: CommitPhase = CommitPhase.PHASE_TWO,
        max_time_s: float = 300.0,
    ) -> bool:
        pairs = list(operations)

        def done() -> bool:
            for client, operation_id in pairs:
                current = client.tracker.get(operation_id).phase
                if current not in (CommitPhase.PHASE_TWO, CommitPhase.FAILED):
                    return False
            return True

        return self.env.run_until_condition(done, self.env.now() + max_time_s)
