"""Baseline systems the paper compares WedgeChain against."""

from .cloud_only import (
    CloudGetResponse,
    CloudOnlyClient,
    CloudOnlySystem,
    CloudReadResponse,
    CloudStoreNode,
    CloudWriteResponse,
)
from .edge_baseline import (
    EdgeBaselineCloudNode,
    EdgeBaselineEdgeNode,
    EdgeBaselineSystem,
    FullBlockCertifyRequest,
)

__all__ = [
    "CloudGetResponse",
    "CloudOnlyClient",
    "CloudOnlySystem",
    "CloudReadResponse",
    "CloudStoreNode",
    "CloudWriteResponse",
    "EdgeBaselineCloudNode",
    "EdgeBaselineEdgeNode",
    "EdgeBaselineSystem",
    "FullBlockCertifyRequest",
]
