"""Discrete-event simulation substrate for the edge-cloud environment."""

from .clock import Clock, ManualClock, SimulatedClock, WallClock
from .environment import Environment, EnvironmentNode, local_environment
from .events import EventHandle, EventScheduler
from .network import NetworkStats, SimNetwork, message_wire_size
from .parameters import SimulationParameters, paper_parameters
from .rng import DeterministicRng
from .topology import (
    DEFAULT_CLIENT_EDGE_RTT_MS,
    DEFAULT_INTRA_DC_RTT_MS,
    PAPER_RTT_MS,
    Topology,
    paper_topology,
)

__all__ = [
    "Clock",
    "DEFAULT_CLIENT_EDGE_RTT_MS",
    "DEFAULT_INTRA_DC_RTT_MS",
    "DeterministicRng",
    "Environment",
    "EnvironmentNode",
    "EventHandle",
    "EventScheduler",
    "ManualClock",
    "NetworkStats",
    "PAPER_RTT_MS",
    "SimNetwork",
    "SimulatedClock",
    "SimulationParameters",
    "Topology",
    "WallClock",
    "local_environment",
    "message_wire_size",
    "paper_parameters",
    "paper_topology",
]
