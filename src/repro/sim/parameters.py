"""Calibration parameters for the simulated edge-cloud environment.

The paper ran on AWS m5d.xlarge VMs; we cannot measure that hardware, so the
simulator charges explicit, documented costs for network transfer and for
CPU-bound work (hashing, signature verification, merges).  The defaults are
calibrated so the *relative* results match the paper (see DESIGN.md §5 and
EXPERIMENTS.md): WedgeChain put latency stays within tens of milliseconds,
cloud-only tracks the client-cloud RTT, and the edge-baseline degrades with
batch size because synchronous full-data certification is bandwidth bound.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..common.errors import ConfigurationError


@dataclass(frozen=True)
class SimulationParameters:
    """All tunable cost constants of the simulated environment."""

    # ---------------------------------------------------------------- network
    #: Effective WAN bandwidth in bytes/second (100 Mbit/s).  Calibrated so
    #: that Cloud-only stays close to its round-trip time across batch sizes
    #: while the Edge-baseline — which ships every block across the WAN twice
    #: (edge→cloud data, cloud→edge certified state) — degrades markedly as
    #: batches grow, reproducing the shape of Figure 4(a).
    wan_bandwidth_bytes_per_s: float = 100_000_000 / 8
    #: Client-edge (metro) bandwidth in bytes/second (1 Gbit/s).
    lan_bandwidth_bytes_per_s: float = 1_000_000_000 / 8
    #: Fixed per-message overhead added to every transfer (headers, framing).
    per_message_overhead_bytes: int = 256
    #: Random jitter applied to one-way latencies, as a fraction (0.05 = ±5%).
    latency_jitter_fraction: float = 0.02
    #: Concurrent serialization lanes per sender uplink (multiplexed streams
    #: / parallel TCP connections).  ``1`` keeps the single-FIFO uplink the
    #: paper's figures were calibrated with; more lanes let the in-flight
    #: batches of a pipelined certification window serialize concurrently
    #: instead of queueing behind each other, which is what makes the
    #: overlapped WAN round-trips actually overlap on a busy uplink.
    uplink_channels: int = 1

    # ------------------------------------------------------------ CPU costs
    #: Time to hash one byte of payload (≈1 GB/s SHA-256 on the paper's VMs).
    hash_seconds_per_byte: float = 1.0e-9
    #: Fixed cost of producing one signature.
    sign_seconds: float = 40e-6
    #: Fixed cost of verifying one signature.  Figure 5(d) attributes 0.19 ms
    #: of the 0.71 ms best-case edge read to client-side verification.
    verify_seconds: float = 60e-6
    #: Per-operation cost of appending an entry into the edge buffer.
    append_seconds_per_op: float = 1.5e-6
    #: Per-operation cost of an index lookup at the edge or cloud.
    lookup_seconds_per_op: float = 8e-6
    #: Per key-value pair cost of an LSM merge at the cloud.
    merge_seconds_per_entry: float = 2e-6
    #: Fixed request-handling overhead charged by every node per message.
    request_overhead_seconds: float = 150e-6
    #: Extra per-block processing at the cloud when it must rebuild Merkle
    #: structure for full-data (edge-baseline) certification.
    merkle_rebuild_seconds_per_entry: float = 3e-6

    # ------------------------------------------------- pipelined certification
    #: Worker lanes of the cloud's parallel certify engine the cost model
    #: assumes: the per-block marginal cost of a batch certification charge
    #: divides by this (verification/signing of independent shards' batches
    #: proceeds concurrently); the fixed per-request overhead and signature
    #: costs stay serial.  ``1`` (default) keeps the committed figures
    #: byte-identical.
    cloud_certify_workers: int = 1

    # --------------------------------------------- cross-shard transactions
    #: Per-write CPU cost of staging (or applying) one transactional write
    #: at a participant edge, on top of the signature charges the 2PC
    #: messages themselves pay.
    txn_stage_seconds_per_write: float = 2e-6

    # -------------------------------------------------------- shard handoff
    #: Per-block CPU cost of packaging/ingesting shard state during a
    #: certified shard handoff (serialization, proof bundling) on top of the
    #: bandwidth charge the transfer itself pays.
    shard_transfer_seconds_per_block: float = 4e-6
    #: Per-page CPU cost of re-deriving level Merkle roots while verifying a
    #: received shard snapshot at the destination edge.
    shard_verify_seconds_per_page: float = 3e-6

    # ------------------------------------------------------------- workload
    #: Interval at which a closed-loop client can produce operations: used to
    #: model client-side pacing in the commit-rate experiment (Figure 6).
    client_think_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.wan_bandwidth_bytes_per_s <= 0 or self.lan_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if self.latency_jitter_fraction < 0 or self.latency_jitter_fraction >= 1:
            raise ConfigurationError("latency_jitter_fraction must be in [0, 1)")
        if self.uplink_channels <= 0:
            raise ConfigurationError("uplink_channels must be positive")
        if self.cloud_certify_workers <= 0:
            raise ConfigurationError("cloud_certify_workers must be positive")
        for name in (
            "hash_seconds_per_byte",
            "sign_seconds",
            "verify_seconds",
            "append_seconds_per_op",
            "lookup_seconds_per_op",
            "merge_seconds_per_entry",
            "request_overhead_seconds",
            "merkle_rebuild_seconds_per_entry",
            "txn_stage_seconds_per_write",
            "shard_transfer_seconds_per_block",
            "shard_verify_seconds_per_page",
            "client_think_time_s",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def with_overrides(self, **changes) -> "SimulationParameters":
        """Return a copy of the parameters with the given fields replaced."""

        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Derived cost helpers
    # ------------------------------------------------------------------
    def hash_cost(self, num_bytes: int) -> float:
        """CPU time to hash *num_bytes* bytes."""

        return self.hash_seconds_per_byte * max(num_bytes, 0)

    def transfer_time(self, num_bytes: int, wan: bool) -> float:
        """Serialization time of a message of *num_bytes* on a link."""

        bandwidth = (
            self.wan_bandwidth_bytes_per_s if wan else self.lan_bandwidth_bytes_per_s
        )
        return (num_bytes + self.per_message_overhead_bytes) / bandwidth

    def block_build_cost(self, num_entries: int, num_bytes: int) -> float:
        """CPU time for an edge node to build and digest a block."""

        return (
            self.append_seconds_per_op * num_entries
            + self.hash_cost(num_bytes)
            + self.sign_seconds
        )

    def certification_cost(self) -> float:
        """CPU time for the cloud to certify one digest (data-free path)."""

        return self.request_overhead_seconds + self.verify_seconds + self.sign_seconds

    def batch_certification_cost(
        self, num_blocks: int, workers: "int | None" = None
    ) -> float:
        """CPU time for the cloud to certify a whole digest batch at once.

        One request overhead, one signature verification (the edge's batch
        signature), and one signature (the batch root) regardless of the
        batch size; each block adds only a digest lookup and the Merkle leaf
        hashing — this is where batching beats ``num_blocks`` separate
        :meth:`certification_cost` charges.  The per-block marginal term
        divides by the certify-engine worker count (*workers*, defaulting to
        :attr:`cloud_certify_workers`): independent batches' leaf hashing
        and digest lookups proceed on parallel lanes, while the serial
        per-request overhead and signatures do not.
        """

        lanes = max(workers if workers is not None else self.cloud_certify_workers, 1)
        return self.certification_cost() + self.lookup_seconds_per_op * max(
            num_blocks, 0
        ) / lanes

    def window_certification_cost(
        self, num_batches: int, num_blocks: int, workers: "int | None" = None
    ) -> float:
        """CPU time for the cloud to certify a whole window envelope.

        One request overhead and one verification (the envelope signature
        covers every batch), but one batch-root *signature per inner batch*
        — window slots retire independently, so the cloud cannot collapse
        them into one certificate.  Signing and the per-block marginal work
        are independent across batches, so both divide by the certify-engine
        worker count.
        """

        lanes = max(workers if workers is not None else self.cloud_certify_workers, 1)
        return (
            self.request_overhead_seconds
            + self.verify_seconds
            + self.sign_seconds * max(num_batches, 1) / lanes
            + self.lookup_seconds_per_op * max(num_blocks, 0) / lanes
        )

    def batch_proof_derivation_cost(self, num_blocks: int) -> float:
        """CPU time for the edge to verify a batch certificate and derive
        every per-block proof from it (one signature verification plus
        O(num_blocks) hashing)."""

        return self.verify_seconds + self.lookup_seconds_per_op * max(num_blocks, 0)

    def txn_prepare_cost(self, num_writes: int) -> float:
        """CPU time for a participant edge to handle one txn-prepare: verify
        the coordinator's signature, validate and stage the writes, and sign
        the prepare receipt."""

        return (
            self.request_overhead_seconds
            + self.verify_seconds
            + self.txn_stage_seconds_per_write * max(num_writes, 0)
            + self.sign_seconds
        )

    def txn_decision_cost(self, num_writes: int) -> float:
        """CPU time for a participant edge to handle one txn-decision: verify
        the coordinator's signature and apply (or discard) the staged
        writes.  The decision record's own signing and the block build on
        the commit path are charged by the ordinary block machinery."""

        return (
            self.request_overhead_seconds
            + self.verify_seconds
            + self.txn_stage_seconds_per_write * max(num_writes, 0)
        )

    def handoff_offer_cost(self, num_blocks: int) -> float:
        """CPU time for the source edge to assemble and sign a handoff offer."""

        return (
            self.sign_seconds
            + self.shard_transfer_seconds_per_block * max(num_blocks, 0)
        )

    def handoff_countersign_cost(self, num_blocks: int) -> float:
        """CPU time for the cloud to verify an offer against its certified
        digests and mirror, reassign the shard, and countersign (one
        verification, two signatures: certificate + refreshed shard map)."""

        return (
            self.request_overhead_seconds
            + self.verify_seconds
            + 2 * self.sign_seconds
            + self.lookup_seconds_per_op * max(num_blocks, 0)
        )

    def handoff_install_cost(self, num_blocks: int, num_pages: int) -> float:
        """CPU time for the destination edge to verify and install a shard
        snapshot: certificate + transfer-statement verification, per-block
        digest checks, and per-page level-root recomputation."""

        return (
            2 * self.verify_seconds
            + self.shard_transfer_seconds_per_block * max(num_blocks, 0)
            + self.shard_verify_seconds_per_page * max(num_pages, 0)
        )

    def full_certification_cost(self, num_entries: int, num_bytes: int) -> float:
        """CPU time for the cloud to certify a full block (edge-baseline)."""

        return (
            self.certification_cost()
            + self.hash_cost(num_bytes)
            + self.merkle_rebuild_seconds_per_entry * num_entries
        )


def paper_parameters() -> SimulationParameters:
    """Default calibration used for every reproduced experiment."""

    return SimulationParameters()
