"""The execution environment shared by all nodes of a deployment.

An :class:`Environment` bundles the event scheduler, the simulated network,
the calibration parameters, the key registry, and a deterministic RNG.  Node
implementations never talk to these directly; they use the small API exposed
here (``send``, ``schedule``, ``charge``, ``now``), which keeps protocol code
independent of the simulation machinery and makes it trivially testable.

CPU accounting: while a node handler runs, calls to :meth:`Environment.charge`
accumulate simulated CPU time.  Outgoing messages sent from the handler leave
the node only after the accumulated CPU time, and the node stays busy (FIFO,
single server) until the handler's charges are paid — matching the single
request-processing loop of the paper's prototype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Protocol

from ..common.errors import SimulationError, TransportError
from ..common.identifiers import NodeId
from ..common.regions import Region
from ..crypto.signatures import KeyRegistry
from .events import EventHandle, EventScheduler
from .network import SimNetwork
from .parameters import SimulationParameters
from .rng import DeterministicRng
from .topology import Topology, paper_topology


class EnvironmentNode(Protocol):
    """What the environment expects of an attached node."""

    node_id: NodeId
    region: Region

    def on_message(self, sender: NodeId, message: Any) -> None:
        """Handle a delivered message (may call back into the environment)."""


@dataclass
class _Invocation:
    node_id: NodeId
    start: float
    charged: float = 0.0


class _EndpointAdapter:
    """Adapts an :class:`EnvironmentNode` to the network endpoint interface,
    inserting the CPU/queueing model between delivery and handling."""

    def __init__(self, env: "Environment", node: EnvironmentNode) -> None:
        self._env = env
        self.node = node
        self.node_id = node.node_id
        self.region = node.region

    def deliver(self, sender: NodeId, message: Any) -> None:
        self._env._enqueue_handling(self.node, sender, message)


class Environment:
    """Scheduler + network + crypto registry + calibration, in one place."""

    def __init__(
        self,
        topology: Optional[Topology] = None,
        params: Optional[SimulationParameters] = None,
        signature_scheme: str = "hmac",
        seed: int = 7,
        start_time: float = 0.0,
    ) -> None:
        self.topology = topology if topology is not None else paper_topology()
        self.params = params if params is not None else SimulationParameters()
        self.scheduler = EventScheduler(start_time)
        self.rng = DeterministicRng(seed)
        self.network = SimNetwork(self.scheduler, self.topology, self.params, self.rng)
        self.registry = KeyRegistry(signature_scheme)
        self._adapters: Dict[NodeId, _EndpointAdapter] = {}
        self._busy_until: Dict[NodeId, float] = {}
        self._current: Optional[_Invocation] = None
        #: Shared observability bundle; ``None`` until a node is built with
        #: an enabled :class:`~repro.common.config.ObservabilityConfig`
        #: (the paper-default deployment never sets it).
        self.obs = None

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def attach(self, node: EnvironmentNode) -> None:
        """Register *node* with the network and the key registry."""

        adapter = _EndpointAdapter(self, node)
        self.network.register(adapter)
        self._adapters[node.node_id] = adapter
        self._busy_until[node.node_id] = 0.0
        self.registry.register(node.node_id)

    def ensure_observability(self, config) -> Optional[Any]:
        """The shared :class:`~repro.obs.Observability` bundle, or ``None``.

        Nodes call this from their constructors with their
        ``config.observability``.  A disabled (or absent) config returns
        ``None`` — that node carries no instrumentation.  The first enabled
        config lazily creates the bundle, hands it to the network (which
        starts carrying trace-context sidecars and per-message-type byte
        counters), and every later caller shares it.
        """

        if config is None or not config.enabled:
            return None
        if self.obs is None:
            from ..obs import Observability

            self.obs = Observability(config, clock=self.now)
            self.network.attach_observability(self.obs)
        return self.obs

    def node(self, node_id: NodeId) -> EnvironmentNode:
        try:
            return self._adapters[node_id].node
        except KeyError as exc:
            raise TransportError(f"unknown node {node_id}") from exc

    def node_ids(self) -> tuple:
        """Every attached node id, in attachment order."""

        return tuple(self._adapters)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self.scheduler.now()

    # ------------------------------------------------------------------
    # CPU model
    # ------------------------------------------------------------------
    def charge(self, seconds: float) -> None:
        """Charge simulated CPU time to the node whose handler is running.

        Outside a handler invocation (e.g. workload setup code) the charge is
        silently ignored, which keeps harness code simple.
        """

        if seconds < 0:
            raise SimulationError("cannot charge negative CPU time")
        if self._current is not None:
            self._current.charged += seconds

    def _enqueue_handling(
        self, node: EnvironmentNode, sender: NodeId, message: Any
    ) -> None:
        start = max(self.now(), self._busy_until.get(node.node_id, 0.0))
        # Trace context crosses the delivery->handling hop as a closure
        # variable, never on the message (wire payloads stay untouched).
        ctx = None
        if self.obs is not None and self.obs.tracer is not None:
            ctx = self.obs.tracer.current_context()
        self.scheduler.schedule_at(
            start,
            lambda: self._invoke(node, sender, message, ctx),
            label=f"handle@{node.node_id}:{type(message).__name__}",
        )

    def _invoke(
        self, node: EnvironmentNode, sender: NodeId, message: Any, ctx: Any = None
    ) -> None:
        previous = self._current
        invocation = _Invocation(node_id=node.node_id, start=self.now())
        self._current = invocation
        tracer = self.obs.tracer if (ctx is not None and self.obs is not None) else None
        if tracer is not None:
            tracer.push(ctx)
        try:
            node.on_message(sender, message)
        finally:
            if tracer is not None:
                tracer.pop()
            self._current = previous
        finish = invocation.start + invocation.charged
        self._busy_until[node.node_id] = max(
            self._busy_until.get(node.node_id, 0.0), finish
        )

    def busy_until(self, node_id: NodeId) -> float:
        """Simulated time until which *node_id* is busy processing."""

        return self._busy_until.get(node_id, 0.0)

    # ------------------------------------------------------------------
    # Communication and timers
    # ------------------------------------------------------------------
    def send(self, src: NodeId, dst: NodeId, message: Any) -> float:
        """Send a message; it departs after the sender's accrued CPU time."""

        depart_at = None
        if self._current is not None and self._current.node_id == src:
            depart_at = self._current.start + self._current.charged
        return self.network.send(src, dst, message, depart_at=depart_at)

    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule a callback *delay* seconds in the future."""

        return self.scheduler.schedule_after(delay, callback, label)

    def schedule_periodic(
        self, interval: float, callback: Callable[[], None], label: str = ""
    ) -> Callable[[], None]:
        """Schedule a periodic callback; returns a stopper function."""

        return self.scheduler.schedule_periodic(interval, callback, label)

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the event queue (optionally bounded by *max_events*)."""

        return self.scheduler.run(max_events)

    def run_until(self, deadline: float) -> int:
        return self.scheduler.run_until(deadline)

    def run_until_condition(self, condition: Callable[[], bool], max_time: float) -> bool:
        return self.scheduler.run_until_condition(condition, max_time)


def local_environment(
    params: Optional[SimulationParameters] = None,
    signature_scheme: str = "hmac",
    seed: int = 7,
) -> Environment:
    """An environment where every node is co-located (negligible latency).

    Unit and integration tests use this to exercise full protocol flows
    without wide-area delays dominating; the protocol logic is identical.
    """

    topology = Topology(intra_region_rtt_ms=0.1, client_edge_rtt_ms=0.2)
    effective = params if params is not None else SimulationParameters(
        latency_jitter_fraction=0.0
    )
    return Environment(
        topology=topology,
        params=effective,
        signature_scheme=signature_scheme,
        seed=seed,
    )
