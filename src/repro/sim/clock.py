"""Simulated and wall-clock time sources.

The protocol code asks a :class:`Clock` for the current time instead of
calling :func:`time.monotonic` directly.  Under the discrete-event simulator
the clock is a :class:`SimulatedClock` advanced by the scheduler; under
direct in-process execution (unit tests, micro-benchmarks) a
:class:`WallClock` or a manually controlled clock can be used instead.
"""

from __future__ import annotations

import time
from typing import Protocol

from ..common.errors import SimulationError


class Clock(Protocol):
    """Anything that can report the current time in seconds."""

    def now(self) -> float:
        """Return the current time in seconds."""


class WallClock:
    """Real time, for micro-benchmarks that measure actual CPU cost."""

    def now(self) -> float:
        return time.monotonic()


class ManualClock:
    """A clock advanced explicitly by tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by *delta* seconds and return the new time."""

        if delta < 0:
            raise SimulationError("cannot move a clock backwards")
        self._now += delta
        return self._now

    def set(self, value: float) -> None:
        """Jump the clock to an absolute (non-decreasing) time."""

        if value < self._now:
            raise SimulationError("cannot move a clock backwards")
        self._now = float(value)


class AnchoredWallClock:
    """Real time re-based to zero at construction.

    The live service harness (:mod:`repro.service`) runs the same node code
    as the simulator, and that code treats timestamps as small
    seconds-since-start floats (lease expiries, dispute deadlines, gossip
    ages).  Anchoring the monotonic clock at the fleet's start keeps those
    semantics — and keeps live traces comparable to sim traces — without
    touching protocol code.
    """

    def __init__(self) -> None:
        self._anchor = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._anchor


class SimulatedClock:
    """The clock owned by the event scheduler.

    Only the scheduler advances it; everything else treats it as read-only.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def _advance_to(self, value: float) -> None:
        if value < self._now:
            raise SimulationError(
                f"event time {value} precedes current simulated time {self._now}"
            )
        self._now = value
