"""Deterministic random number generation for simulations and workloads.

All stochastic behaviour in the simulator (latency jitter, key selection,
value payloads) flows through a :class:`DeterministicRng` seeded explicitly,
so experiments are exactly reproducible run to run.
"""

from __future__ import annotations

import random
import string
from typing import Sequence

from ..common.errors import ConfigurationError


class DeterministicRng:
    """A seeded random source with helpers used across the code base."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent, reproducible child stream.

        Forking by label lets each client/node own a private stream whose
        draws do not depend on the interleaving of other components.
        """

        child_seed = hash((self._seed, label)) & 0xFFFFFFFF
        return DeterministicRng(child_seed)

    # ------------------------------------------------------------------
    # Basic draws
    # ------------------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, items: Sequence):
        return self._random.choice(items)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def bytes(self, length: int) -> bytes:
        return self._random.getrandbits(length * 8).to_bytes(length, "big") if length else b""

    def token(self, length: int = 12) -> str:
        alphabet = string.ascii_lowercase + string.digits
        return "".join(self._random.choice(alphabet) for _ in range(length))

    # ------------------------------------------------------------------
    # Domain helpers
    # ------------------------------------------------------------------
    def jitter(self, value: float, fraction: float) -> float:
        """Return *value* perturbed by up to ±``fraction`` of itself."""

        if fraction < 0 or fraction >= 1:
            raise ConfigurationError("jitter fraction must be in [0, 1)")
        if fraction == 0:
            return value
        return value * (1.0 + self._random.uniform(-fraction, fraction))

    def zipf_index(self, population: int, theta: float) -> int:
        """Draw a Zipfian-distributed index in ``[0, population)``.

        Uses the standard rejection-free inverse power approximation, which
        is adequate for workload skew (it does not need to be an exact
        Zipf sampler).
        """

        if population <= 0:
            raise ConfigurationError("population must be positive")
        if theta <= 0:
            return self._random.randrange(population)
        u = self._random.random()
        # Inverse-CDF of a truncated power-law: raising the uniform draw to a
        # power > 1 concentrates probability mass on small indices.
        index = int(population * (u ** (1.0 + theta)))
        return min(population - 1, index)
