"""The simulated edge-cloud network.

Messages between nodes experience:

* a propagation delay of half the region-to-region RTT (Table I), with a
  small configurable jitter;
* a serialization delay of ``bytes / bandwidth`` on the sender's uplink,
  where the WAN bandwidth (edge ↔ cloud) is far smaller than the metro
  bandwidth (client ↔ edge) — this is what makes *data-free* certification
  matter and what degrades the synchronous edge-baseline at large batches;
* FIFO ordering per sender uplink lane (transfers on the same lane queue
  behind each other).  ``SimulationParameters.uplink_channels`` sets how
  many lanes a sender has: one (the default) reproduces the single-FIFO
  uplink the figures were calibrated with; more lanes model multiplexed
  streams, letting the overlapped WAN round-trips of a pipelined
  certification window serialize concurrently.

Message sizes come from the message's ``wire_size`` attribute when present
(protocol messages compute a realistic payload size cheaply) and otherwise
from the canonical encoding.

Fault injection composes on the network through two public surfaces:

* **Send hooks** (:meth:`SimNetwork.add_send_hook`): named, composable
  predicates consulted for every send *before* any latency or bandwidth
  accounting.  A hook returning ``False`` vetoes the delivery (the send
  reports an infinite delivery time and the message is never scheduled);
  the message travels normally only when every hook approves it.  Hooks
  run in registration order and must be deterministic — the fault
  subsystem (:mod:`repro.faults`) derives all its randomness from seeded
  streams.  The legacy single-slot ``send_interceptor`` attribute is kept
  as a property aliasing a reserved hook name.
* **Offline nodes** (:meth:`SimNetwork.set_offline`): a crashed node
  neither receives traffic already in flight (deliveries scheduled before
  the crash are dropped at delivery time) nor emits new traffic (sends
  from an offline node are vetoed at the source).  Restarting clears the
  flag; nothing is replayed — lost messages stay lost, exactly like a
  real crash.

Both surfaces are strict no-ops while unused: the hot send path checks one
empty dict and one empty set.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..common.errors import TransportError
from ..common.identifiers import NodeId, NodeRole
from ..transport import (
    NetworkEndpoint,
    NetworkStats,
    SendHook,
    message_wire_size,
)
from .events import EventScheduler
from .parameters import SimulationParameters
from .rng import DeterministicRng
from .topology import Topology

__all__ = [
    "NetworkEndpoint",
    "NetworkStats",
    "SendHook",
    "SimNetwork",
    "message_wire_size",
]

#: Reserved hook name backing the legacy ``send_interceptor`` attribute.
_LEGACY_INTERCEPTOR = "legacy-send-interceptor"


class SimNetwork:
    """Latency- and bandwidth-aware message delivery between registered nodes.

    The simulated implementation of the :class:`repro.transport.Transport`
    boundary; its behaviour is pinned byte-identical by the figure-4/5
    regression suite and the golden digest vectors.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        topology: Topology,
        params: SimulationParameters,
        rng: DeterministicRng,
    ) -> None:
        self._scheduler = scheduler
        self._topology = topology
        self._params = params
        self._rng = rng
        self._nodes: Dict[NodeId, NetworkEndpoint] = {}
        #: Time until which each of a sender's uplink lanes is busy
        #: serializing data (one slot per ``params.uplink_channels``).
        self._uplink_busy: Dict[NodeId, list[float]] = {}
        self.stats = NetworkStats()
        #: Named send hooks, consulted in registration order for every send.
        self._send_hooks: Dict[str, SendHook] = {}
        #: Nodes currently crashed: sends from them are vetoed and pending
        #: deliveries to them are dropped at delivery time.
        self._offline: set[NodeId] = set()
        #: Observability bundle (set by the environment when enabled).  While
        #: ``None`` — the default — the send path pays one attribute check.
        self._obs = None
        self._obs_registry = None

    def attach_observability(self, obs) -> None:
        """Start recording per-message-type traffic and carrying trace
        context sidecars on deliveries.  Called once by
        :meth:`repro.sim.environment.Environment.ensure_observability`."""

        self._obs = obs
        self._obs_registry = obs.registry_for("network")

    # ------------------------------------------------------------------
    # Send hooks (public fault-injection surface)
    # ------------------------------------------------------------------
    def add_send_hook(self, name: str, hook: SendHook) -> None:
        """Register a named send hook; rejects duplicate names.

        Hooks compose by conjunction: a message is delivered only when every
        registered hook approves it.  They run in registration order, before
        any bandwidth or latency accounting, so a vetoed message consumes no
        simulated network resources.
        """

        if not name:
            raise TransportError("send hook name must be non-empty")
        if name in self._send_hooks:
            raise TransportError(f"send hook {name!r} already registered")
        self._send_hooks[name] = hook

    def remove_send_hook(self, name: str) -> None:
        """Unregister a hook by name (idempotent)."""

        self._send_hooks.pop(name, None)

    def send_hook_names(self) -> tuple[str, ...]:
        return tuple(self._send_hooks)

    @property
    def send_interceptor(self) -> Callable[[NodeId, NodeId, Any], bool] | None:
        """Legacy single-slot interceptor, aliased onto the named-hook API."""

        return self._send_hooks.get(_LEGACY_INTERCEPTOR)

    @send_interceptor.setter
    def send_interceptor(
        self, hook: Callable[[NodeId, NodeId, Any], bool] | None
    ) -> None:
        self._send_hooks.pop(_LEGACY_INTERCEPTOR, None)
        if hook is not None:
            self._send_hooks[_LEGACY_INTERCEPTOR] = hook

    # ------------------------------------------------------------------
    # Node liveness (crash / restart support)
    # ------------------------------------------------------------------
    def set_offline(self, node_id: NodeId, offline: bool = True) -> None:
        """Mark a node crashed (or back up).  Offline nodes lose all traffic:
        sends from them are vetoed and in-flight deliveries to them are
        dropped when their delivery event fires."""

        self.node(node_id)  # raising on unknown nodes keeps plans honest
        if offline:
            self._offline.add(node_id)
        else:
            self._offline.discard(node_id)

    def is_offline(self, node_id: NodeId) -> bool:
        return node_id in self._offline

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, node: NetworkEndpoint) -> None:
        if node.node_id in self._nodes:
            raise TransportError(f"node {node.node_id} already registered")
        self._nodes[node.node_id] = node
        self._uplink_busy[node.node_id] = [0.0] * max(self._params.uplink_channels, 1)

    def node(self, node_id: NodeId) -> NetworkEndpoint:
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise TransportError(f"unknown node {node_id}") from exc

    def knows(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    # ------------------------------------------------------------------
    # Latency model
    # ------------------------------------------------------------------
    def _is_wan(self, src: NetworkEndpoint, dst: NetworkEndpoint) -> bool:
        return src.region != dst.region

    def _propagation_delay(self, src: NetworkEndpoint, dst: NetworkEndpoint) -> float:
        if src.region != dst.region:
            base = self._topology.one_way_latency_s(src.region, dst.region)
        else:
            roles = {src.node_id.role, dst.node_id.role}
            if roles == {NodeRole.CLIENT, NodeRole.EDGE}:
                base = self._topology.client_edge_latency_s()
            else:
                base = self._topology.intra_region_rtt_ms / 2.0 / 1000.0
        return self._rng.jitter(base, self._params.latency_jitter_fraction)

    def one_way_delay_estimate(self, src_id: NodeId, dst_id: NodeId) -> float:
        """Jitter-free one-way delay between two registered nodes (seconds)."""

        src, dst = self.node(src_id), self.node(dst_id)
        if src.region != dst.region:
            return self._topology.one_way_latency_s(src.region, dst.region)
        roles = {src.node_id.role, dst.node_id.role}
        if roles == {NodeRole.CLIENT, NodeRole.EDGE}:
            return self._topology.client_edge_latency_s()
        return self._topology.intra_region_rtt_ms / 2.0 / 1000.0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        src_id: NodeId,
        dst_id: NodeId,
        message: Any,
        depart_at: float | None = None,
    ) -> float:
        """Send *message* from *src_id* to *dst_id*.

        Returns the simulated delivery time.  ``depart_at`` lets the caller
        model CPU time spent before the message leaves the sender (defaults
        to "now").
        """

        src = self.node(src_id)
        dst = self.node(dst_id)
        if self._offline and src_id in self._offline:
            # A crashed node emits nothing (stray timers may still fire).
            self.stats.dropped_sends += 1
            return float("inf")
        if self._send_hooks:
            for hook in tuple(self._send_hooks.values()):
                if not hook(src_id, dst_id, message):
                    # Hook vetoed the message (partition / fault injection).
                    self.stats.dropped_sends += 1
                    return float("inf")

        now = self._scheduler.now()
        depart = max(now, depart_at if depart_at is not None else now)
        size = message_wire_size(message)
        wan = self._is_wan(src, dst)
        self.stats.record(src_id, dst_id, size, wan)
        ctx = None
        if self._obs is not None:
            self._obs_traffic(message, size, wan)
            if self._obs.tracer is not None:
                ctx = self._obs.tracer.current_context()

        # Uplink serialization: transfers from the same sender queue up per
        # lane; the message takes the lane that frees up first.
        transfer = self._params.transfer_time(size, wan)
        lanes = self._uplink_busy[src_id]
        lane = min(range(len(lanes)), key=lanes.__getitem__)
        uplink_free = max(depart, lanes[lane])
        serialization_done = uplink_free + transfer
        lanes[lane] = serialization_done

        delivery_time = serialization_done + self._propagation_delay(src, dst)
        self._schedule_delivery(src_id, dst, message, delivery_time, ctx)
        return delivery_time

    def _obs_traffic(self, message: Any, size: int, wan: bool) -> None:
        registry = self._obs_registry
        if registry is None:
            return
        link = "wan" if wan else "lan"
        mtype = type(message).__name__
        registry.counter("net_bytes", link=link, type=mtype).inc(size)
        registry.counter("net_messages", link=link, type=mtype).inc()

    def _schedule_delivery(
        self,
        src_id: NodeId,
        dst: NetworkEndpoint,
        message: Any,
        when: float,
        ctx: Any = None,
    ) -> None:
        def deliver() -> None:
            if self._offline and dst.node_id in self._offline:
                # The destination crashed while the message was in flight.
                self.stats.dropped_deliveries += 1
                return
            # Re-activate the sender's trace context around the receiver's
            # handling.  The context is a sidecar on this closure — it never
            # rides inside the message, so wire bytes are identical with
            # tracing on or off.
            if ctx is not None and self._obs is not None and self._obs.tracer is not None:
                tracer = self._obs.tracer
                tracer.push(ctx)
                try:
                    dst.deliver(src_id, message)
                finally:
                    tracer.pop()
            else:
                dst.deliver(src_id, message)

        self._scheduler.schedule_at(
            when,
            deliver,
            label=f"{src_id}->{dst.node_id}:{type(message).__name__}",
        )

    def inject_delivery(
        self, src_id: NodeId, dst_id: NodeId, message: Any, at: float
    ) -> float:
        """Schedule a delivery directly, bypassing send hooks and the
        latency/bandwidth model.

        This is the fault injector's re-entry point: a hook that vetoed a
        send to *delay*, *duplicate*, or *reorder* it re-materializes the
        delivery here at a time of its choosing (so it is not re-intercepted
        by the very hook that took it over).  Traffic accounting still
        happens — a duplicated message really does cross the wire twice —
        and the offline gate still applies at delivery time.
        """

        src = self.node(src_id)
        dst = self.node(dst_id)
        size = message_wire_size(message)
        wan = self._is_wan(src, dst)
        self.stats.record(src_id, dst_id, size, wan)
        ctx = None
        if self._obs is not None:
            self._obs_traffic(message, size, wan)
            if self._obs.tracer is not None:
                # The injector's hook runs while the original sender's span
                # is still active, so delayed/duplicated/reordered messages
                # keep their causal context.
                ctx = self._obs.tracer.current_context()
        when = max(at, self._scheduler.now())
        self._schedule_delivery(src_id, dst, message, when, ctx)
        return when
