"""The discrete-event scheduler at the heart of the simulator.

The simulator is a classic event-driven design: a priority queue of
``(time, sequence, callback)`` entries.  Running the simulation pops the
earliest event, advances the simulated clock to its timestamp, and invokes
the callback, which typically schedules further events (message deliveries,
timeouts, periodic gossip, ...).

Determinism: ties on the timestamp are broken by insertion order, and no
wall-clock or global randomness is consulted, so a simulation with a fixed
seed is exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..common.errors import SimulationDeadlockError, SimulationError
from .clock import SimulatedClock

EventCallback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; allows cancelling."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event's callback from running (idempotent)."""

        self._event.cancelled = True


class EventScheduler:
    """A deterministic discrete-event scheduler with a simulated clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = SimulatedClock(start_time)
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current simulated time in seconds."""

        return self.clock.now()

    def schedule_at(
        self, when: float, callback: EventCallback, label: str = ""
    ) -> EventHandle:
        """Schedule *callback* to run at absolute simulated time *when*."""

        if when < self.now():
            raise SimulationError(
                f"cannot schedule event at {when} before current time {self.now()}"
            )
        event = _ScheduledEvent(
            time=when, sequence=next(self._sequence), callback=callback, label=label
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_after(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> EventHandle:
        """Schedule *callback* to run *delay* seconds from now."""

        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now() + delay, callback, label)

    def schedule_periodic(
        self,
        interval: float,
        callback: EventCallback,
        label: str = "",
        first_delay: Optional[float] = None,
    ) -> Callable[[], None]:
        """Run *callback* every *interval* seconds until the returned stopper
        is called."""

        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        stopped = {"value": False}

        def tick() -> None:
            if stopped["value"]:
                return
            callback()
            self.schedule_after(interval, tick, label)

        self.schedule_after(
            interval if first_delay is None else first_delay, tick, label
        )

        def stop() -> None:
            stopped["value"] = True

        return stop

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""

        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""

        return self._events_processed

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` if the queue is empty."""

        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock._advance_to(event.time)
            event.callback()
            self._events_processed += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until no events remain (or *max_events* were processed)."""

        processed = 0
        while self.step():
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        return processed

    def run_until(self, deadline: float, require_progress: bool = False) -> int:
        """Run events with timestamps up to and including *deadline*.

        If *require_progress* is true and no event exists at or before the
        deadline, a :class:`SimulationDeadlockError` is raised — useful to
        catch experiments that silently stall.
        """

        processed = 0
        while self._queue:
            upcoming = self._peek_time()
            if upcoming is None or upcoming > deadline:
                break
            self.step()
            processed += 1
        if require_progress and processed == 0:
            raise SimulationDeadlockError(
                f"no events before deadline {deadline} (now={self.now()})"
            )
        if self.now() < deadline:
            self.clock._advance_to(deadline)
        return processed

    def run_until_condition(
        self,
        condition: Callable[[], bool],
        max_time: float,
        poll_events: int = 1,
    ) -> bool:
        """Run events until *condition* holds or *max_time* is reached.

        Returns whether the condition became true.
        """

        if condition():
            return True
        while self._queue and self.now() <= max_time:
            upcoming = self._peek_time()
            if upcoming is None or upcoming > max_time:
                break
            for _ in range(poll_events):
                if not self.step():
                    break
            if condition():
                return True
        return condition()

    def _peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time
