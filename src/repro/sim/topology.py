"""Region topology and the round-trip-time matrix of Table I.

Table I of the paper reports average RTTs from California to the other four
datacenters::

            C    O    V    I    M
    C       0   19   61  141  238

The remaining pairs are not reported; we fill them with public AWS
inter-region measurements of the same era so that the experiments that move
the edge or cloud node (Figure 7) have a complete matrix.  The substitution
only affects pairs the paper never exercises with both endpoints away from
California — the figures it reports depend on the California row, which is
reproduced exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from ..common.errors import ConfigurationError
from ..common.regions import PAPER_REGION_ORDER, Region

#: Round-trip times in milliseconds.  The California row is Table I verbatim.
PAPER_RTT_MS: Dict[Tuple[Region, Region], float] = {
    (Region.CALIFORNIA, Region.CALIFORNIA): 0.0,
    (Region.CALIFORNIA, Region.OREGON): 19.0,
    (Region.CALIFORNIA, Region.VIRGINIA): 61.0,
    (Region.CALIFORNIA, Region.IRELAND): 141.0,
    (Region.CALIFORNIA, Region.MUMBAI): 238.0,
    # Pairs below are not in Table I; filled from public measurements.
    (Region.OREGON, Region.OREGON): 0.0,
    (Region.OREGON, Region.VIRGINIA): 70.0,
    (Region.OREGON, Region.IRELAND): 130.0,
    (Region.OREGON, Region.MUMBAI): 222.0,
    (Region.VIRGINIA, Region.VIRGINIA): 0.0,
    (Region.VIRGINIA, Region.IRELAND): 80.0,
    (Region.VIRGINIA, Region.MUMBAI): 190.0,
    (Region.IRELAND, Region.IRELAND): 0.0,
    (Region.IRELAND, Region.MUMBAI): 112.0,
    (Region.MUMBAI, Region.MUMBAI): 0.0,
}

#: Round trip between a client and a *nearby* edge node (same metro area but
#: not the same machine).  Calibrated so that WedgeChain's Phase I commit
#: latency lands in the paper's 15-20 ms band (Figure 4a).
DEFAULT_CLIENT_EDGE_RTT_MS = 12.0

#: Round trip between two co-located services inside one datacenter.
DEFAULT_INTRA_DC_RTT_MS = 0.5


@dataclass(frozen=True)
class Topology:
    """A symmetric RTT matrix over a set of regions.

    The matrix is stored as one-way pairs in milliseconds; lookups symmetrize
    automatically.  ``intra_region_rtt_ms`` is used when both endpoints are
    in the same region but are distinct nodes (e.g. an edge node co-located
    with the cloud node in Figure 7(b)'s last configuration).
    """

    rtt_ms: Dict[Tuple[Region, Region], float] = field(
        default_factory=lambda: dict(PAPER_RTT_MS)
    )
    intra_region_rtt_ms: float = DEFAULT_INTRA_DC_RTT_MS
    client_edge_rtt_ms: float = DEFAULT_CLIENT_EDGE_RTT_MS

    def __post_init__(self) -> None:
        for (a, b), value in self.rtt_ms.items():
            if value < 0:
                raise ConfigurationError(f"negative RTT for {a}->{b}")

    def regions(self) -> Iterable[Region]:
        seen = []
        for a, b in self.rtt_ms:
            for region in (a, b):
                if region not in seen:
                    seen.append(region)
        return tuple(seen)

    def rtt(self, a: Region, b: Region) -> float:
        """Round-trip time between regions *a* and *b* in milliseconds."""

        if a == b:
            stored = self.rtt_ms.get((a, b))
            if stored is not None and stored > 0:
                return stored
            return self.intra_region_rtt_ms
        if (a, b) in self.rtt_ms:
            return self.rtt_ms[(a, b)]
        if (b, a) in self.rtt_ms:
            return self.rtt_ms[(b, a)]
        raise ConfigurationError(f"no RTT configured between {a} and {b}")

    def one_way_latency_s(self, a: Region, b: Region) -> float:
        """One-way latency in *seconds* (half the RTT)."""

        return self.rtt(a, b) / 2.0 / 1000.0

    def client_edge_latency_s(self) -> float:
        """One-way client-to-nearby-edge latency in seconds."""

        return self.client_edge_rtt_ms / 2.0 / 1000.0

    def table_row(self, origin: Region = Region.CALIFORNIA) -> Dict[str, float]:
        """Return a Table-I style row of RTTs from *origin* to every region."""

        return {
            region.short_code: self.rtt(origin, region) if region != origin else 0.0
            for region in PAPER_REGION_ORDER
        }


def paper_topology() -> Topology:
    """The topology used throughout the paper's evaluation."""

    return Topology()
