"""Honest design-ablation variants of the edge node.

These are *not* malicious — they isolate individual design decisions of
WedgeChain so the ablation benchmarks can quantify each one:

``FullDataLazyEdgeNode``
    Keeps lazy (asynchronous) certification but ships the whole block to the
    cloud instead of only its digest.  Comparing it with the honest edge node
    isolates the benefit of *data-free* certification (WAN bytes and Phase II
    latency) while the client-visible Phase I latency stays the same.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..log.block import Block
from ..messages.log_messages import BlockCertifyRequest, CertifyStatement
from .edge import EdgeNode


@dataclass(frozen=True)
class FullDataCertifyRequest(BlockCertifyRequest):
    """A block-certify request that (wastefully) also carries the block.

    The cloud handles it exactly like a digest-only request — it only looks
    at the signed statement — but the network must carry the whole block
    across the WAN, which is what the data-free ablation measures.
    """

    block: Block = None  # type: ignore[assignment]

    @property
    def wire_size(self) -> int:
        base = 64 + 64 + 80
        return base + (self.block.wire_size if self.block is not None else 0)


class FullDataLazyEdgeNode(EdgeNode):
    """Lazy certification without the data-free optimisation."""

    def _send_certify_request(self, block: Block, digest: str) -> None:
        statement = CertifyStatement(
            edge=self.node_id,
            block_id=block.block_id,
            block_digest=digest,
            num_entries=block.num_entries,
        )
        signature = self.env.registry.sign(self.node_id, statement)
        self.stats["certify_requests"] += 1
        self.env.send(
            self.node_id,
            self.cloud,
            FullDataCertifyRequest(
                statement=statement, signature=signature, block=block
            ),
        )
