"""The (honest) untrusted edge node.

The edge node is where all client requests are served.  It batches incoming
entries into blocks, Phase I commits them by returning signed receipts, and
lazily certifies block digests with the cloud in the background (Section IV).
For key-value workloads it additionally maintains the LSMerkle index whose
level 0 is backed by the same blocks, serves ``get`` requests with index
proofs, and coordinates merges with the cloud (Section V).

All mutable per-partition state (log, buffer, certifier, LSMerkle index,
merge bookkeeping) lives in a :class:`PartitionState`.  The honest edge node
of the paper owns exactly one partition; the sharded fleet
(:mod:`repro.sharding`) subclasses this node with one ``PartitionState`` per
owned shard and routes each message to the right one — every handler below
reads and writes partition state through ``self``-level properties that
resolve to the *active* partition, so the protocol logic is written once.

Malicious behaviours are implemented as subclasses in
:mod:`repro.nodes.malicious`; the hooks they override are small and explicit
so the honest logic stays readable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..common.config import SystemConfig
from ..common.errors import (
    PartitionQuarantinedError,
    ProofVerificationError,
    ProtocolError,
    StorageError,
)
from ..common.identifiers import (
    BlockId,
    NodeId,
    OperationId,
    SequenceGenerator,
    ShardId,
    edge_id,
)
from ..common.regions import Region
from ..core.certification import LazyCertifier
from ..crypto.hashing import digest_value
from ..faults.retry import RetryPolicy
from ..log.block import Block, build_block
from ..log.buffer import BlockBuffer, PendingBatch
from ..log.proofs import issue_phase_one_receipt
from ..log.entry import LogEntry, make_entry
from ..log.wedge_log import WedgeLog
from ..lsmerkle.codec import decode_put, is_put_payload, page_from_block
from ..lsmerkle.merge import MergeProposal
from ..lsmerkle.mlsm import MerkleizedLSM, SignedGlobalRoot
from ..lsmerkle.read_proof import build_get_proof
from ..messages.kv_messages import (
    GetRequest,
    GetResponse,
    GetResponseStatement,
    MergeRejection,
    MergeRequest,
    MergeResponse,
    RootRefreshRequest,
    RootRefreshResponse,
)
from ..log.proofs import AnyBlockProof, derive_batched_proofs
from ..messages.log_messages import (
    AppendBatchRequest,
    AppendBatchResponse,
    BatchCertificateMessage,
    BlockCertifyRequest,
    BlockProofMessage,
    CertifyBatchRequest,
    CertifyBatchStatement,
    CertifyRejection,
    CertifyStatement,
    CertifyWindowRequest,
    CertifyWindowStatement,
    DegradedModeNotice,
    ReadRequest,
    ReadResponse,
    ReadResponseStatement,
)
from ..messages.txn_messages import (
    TXN_ABORT,
    TXN_COMMIT,
    TxnDecisionAck,
    TxnDecisionMessage,
    TxnId,
    TxnPrepareReceipt,
    TxnPrepareReceiptStatement,
    TxnPrepareRejection,
    TxnPrepareRequest,
    TxnPrepareStatement,
    TxnWrite,
)
from ..sim.environment import Environment
from ..storage.recovery import RecoveryReport, recover_partition
from ..storage.store import PartitionStore


@dataclass
class PartitionState:
    """All mutable state of one served partition (the whole key space for
    the paper's single-partition edge; one shard of it in a sharded fleet)."""

    owner: NodeId
    config: SystemConfig
    #: ``None`` for the single-partition deployment; the shard id otherwise.
    shard_id: Optional[ShardId] = None
    log: WedgeLog = field(init=False)
    buffer: BlockBuffer = field(init=False)
    certifier: LazyCertifier = field(init=False)
    index: MerkleizedLSM = field(init=False)
    #: Block ids backing the current level-0 pages, in arrival order.
    level_zero_blocks: list[BlockId] = field(default_factory=list)
    #: Latest cloud-signed global root (None before the first merge).
    signed_root: Optional[SignedGlobalRoot] = None
    #: Replay protection (Section IV-E): where each client entry landed,
    #: and the Phase I receipt of every formed block so that replayed
    #: requests can be answered idempotently instead of re-appended.
    entry_locations: dict[tuple[NodeId, int], BlockId] = field(default_factory=dict)
    receipts: dict[BlockId, object] = field(default_factory=dict)
    merge_in_flight: bool = False
    merge_source_bids: tuple[BlockId, ...] = ()
    #: Root version of the last *merge outcome* installed (root refreshes
    #: advance ``signed_root`` too, so duplicate-merge detection must not
    #: compare against it).  ``-1`` before the first merge.
    merge_installed_version: int = -1
    flush_timer_active: bool = False
    certify_flush_timer: Optional[Any] = None
    #: Prepared-but-undecided cross-shard transactions
    #: (:mod:`repro.sharding.transactions`): txn id → ``StagedTxn``.  The
    #: client-signed entries wait here — outside the log, the buffer, and
    #: the index — until the coordinator's signed decision applies or
    #: discards them (or the staged prepare expires).
    staged_txns: dict = field(default_factory=dict)
    #: Decided transactions: txn id → ``(decision, block id of the decision
    #: record, shard id)``.  Duplicate prepares and decisions resolve
    #: against this tombstone idempotently, and a late prepare for an
    #: already-aborted transaction can never orphan-stage writes.
    #: Tombstones are evicted once the transaction's signed timing window
    #: is long past (see ``EdgeNode._record_txn_decision``), so the table
    #: stays bounded by in-window transactions, not lifetime count.
    decided_txns: dict = field(default_factory=dict)
    #: Degraded-mode signal (cloud outage backpressure): whether this
    #: partition's uncertified backlog currently exceeds
    #: ``LoggingConfig.max_uncertified_backlog``, and which clients were
    #: told so (they get the all-clear when the backlog drains).
    degraded: bool = False
    degraded_notified: set = field(default_factory=set)
    #: Durable backing (``None`` for the default in-memory deployment).
    #: Attached by ``EdgeNode._new_partition`` when ``StorageConfig`` opts
    #: this deployment into the disk backend.
    store: Optional[PartitionStore] = None
    #: Set when crash recovery found this partition's store unverifiable
    #: (checksum or signed-root failure): the reason string.  A quarantined
    #: partition refuses every request instead of serving data the edge can
    #: no longer prove.
    quarantined: Optional[str] = None

    def __post_init__(self) -> None:
        self.log = WedgeLog(self.owner)
        self.buffer = BlockBuffer(self.config.logging.block_size)
        self.certifier = LazyCertifier()
        self.index = MerkleizedLSM(
            config=self.config.lsmerkle,
            page_capacity=self.config.logging.block_size,
        )


class EdgeNode:
    """An honest edge node serving one partition of clients."""

    def __init__(
        self,
        env: Environment,
        cloud: NodeId,
        config: Optional[SystemConfig] = None,
        name: str = "edge-0",
        region: Optional[Region] = None,
    ) -> None:
        self.env = env
        self.config = config if config is not None else SystemConfig.paper_default()
        self.node_id = edge_id(name)
        self.region = region if region is not None else self.config.placement.edge_region
        self.cloud = cloud

        #: Observability (``None`` with the paper-default config).  The
        #: tracer alias is the single-attribute-check guard every
        #: instrumented hot path tests before doing any tracing work.
        self.obs = env.ensure_observability(self.config.observability)
        self._metrics = (
            self.obs.registry_for(str(self.node_id)) if self.obs is not None else None
        )
        self._obs_tracer = self.obs.tracer if self.obs is not None else None
        #: Phase I span contexts by block id, so the Phase II absorption
        #: span can link the certificate back to the put that formed the
        #: block (popped on absorption; bounded by uncertified blocks).
        self._obs_phase1: dict = {}

        self._default_partition = self._new_partition(shard_id=None)
        #: The partition the currently running handler operates on; every
        #: state property below resolves through it.
        self._active: PartitionState = self._default_partition

        stats_init = {
            "append_requests": 0,
            "blocks_formed": 0,
            "entries_logged": 0,
            "reads": 0,
            "gets": 0,
            "certify_requests": 0,
            "certify_batches": 0,
            "certify_retries": 0,
            "proofs_received": 0,
            "proofs_forwarded": 0,
            "batch_cert_mismatches": 0,
            "merges_started": 0,
            "merges_completed": 0,
            "merges_rejected": 0,
            "root_refreshes": 0,
            "timeout_flushes": 0,
        }
        self.stats = self._make_stats(stats_init)
        #: Sequence numbers for edge-produced transaction decision records.
        self._txn_record_seq = SequenceGenerator()
        #: Reports from the last durable restart recovery (diagnostics).
        self.last_recovery_reports: list[RecoveryReport] = []
        env.attach(self)

    # ------------------------------------------------------------------
    # Observability plumbing (no-ops with the paper-default config)
    # ------------------------------------------------------------------
    def _make_stats(self, initial: dict, prefix: str = "") -> dict:
        """A plain dict, or a registry-mirroring one when metrics are on."""

        if self._metrics is None:
            return initial
        from ..obs.metrics import StatsDict

        return StatsDict(self._metrics, initial, prefix=prefix)

    def _obs_phase1_links(self, block_ids) -> list:
        """Phase I span contexts for *block_ids* (those still tracked)."""

        phase1 = self._obs_phase1
        return [phase1[bid] for bid in block_ids if bid in phase1]

    # ------------------------------------------------------------------
    # Partition state plumbing
    # ------------------------------------------------------------------
    def _new_partition(
        self,
        shard_id: Optional[ShardId],
        store: Optional[PartitionStore] = None,
    ) -> PartitionState:
        state = PartitionState(
            owner=self.node_id, config=self.config, shard_id=shard_id
        )
        state.store = store if store is not None else self._open_partition_store(shard_id)
        return state

    def _open_partition_store(
        self, shard_id: Optional[ShardId]
    ) -> Optional[PartitionStore]:
        """Open this partition's durable store (``None`` = in-memory backend,
        the paper-exact default)."""

        storage = self.config.storage
        if not storage.is_durable:
            return None
        partition = "default" if shard_id is None else f"shard-{shard_id:04d}"
        directory = os.path.join(storage.root_dir, self.node_id.name, partition)
        store = PartitionStore(directory, storage)
        if self._metrics is not None:
            # Mirror the store's counters into this edge's registry under a
            # ``storage_`` prefix (``storage_blocks_appended``, ...).
            store.stats = self._make_stats(dict(store.stats), prefix="storage_")
        return store

    def _partition_states(self) -> Iterable[PartitionState]:
        """Every partition this edge serves (one for the honest base node)."""

        return (self._default_partition,)

    def _partition_for_message(
        self, sender: NodeId, message: Any
    ) -> Optional[PartitionState]:
        """Resolve which partition a message concerns.

        Returning ``None`` means the message was fully handled during
        resolution (e.g. answered with a redirect) and dispatch should stop.
        """

        return self._default_partition

    @contextmanager
    def _as_active(self, state: PartitionState):
        """Run a code block with *state* as the active partition."""

        previous, self._active = self._active, state
        try:
            yield state
        finally:
            self._active = previous

    # State properties: the public per-partition attributes.  Subclass code,
    # malicious variants, and tests read (and occasionally swap) these; they
    # always resolve against the active partition.
    @property
    def log(self) -> WedgeLog:
        return self._active.log

    @property
    def buffer(self) -> BlockBuffer:
        return self._active.buffer

    @property
    def certifier(self) -> LazyCertifier:
        return self._active.certifier

    @property
    def index(self) -> MerkleizedLSM:
        return self._active.index

    @index.setter
    def index(self, value: MerkleizedLSM) -> None:
        self._active.index = value

    @property
    def level_zero_blocks(self) -> list[BlockId]:
        return self._active.level_zero_blocks

    @level_zero_blocks.setter
    def level_zero_blocks(self, value: list[BlockId]) -> None:
        self._active.level_zero_blocks = value

    @property
    def signed_root(self) -> Optional[SignedGlobalRoot]:
        return self._active.signed_root

    @signed_root.setter
    def signed_root(self, value: Optional[SignedGlobalRoot]) -> None:
        self._active.signed_root = value

    @property
    def _certify_flush_timer(self) -> Optional[Any]:
        return self._active.certify_flush_timer

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, sender: NodeId, message: Any) -> None:
        state = self._partition_for_message(sender, message)
        if state is None:
            return
        if state.quarantined is not None:
            # The partition's store failed verification at recovery: refusing
            # service is the only honest answer — anything served from it
            # would be unprovable (and disputes over it unwinnable).
            self.stats.setdefault("quarantined_refusals", 0)
            self.stats["quarantined_refusals"] += 1
            return
        with self._as_active(state):
            self._dispatch(sender, message)

    def _dispatch(self, sender: NodeId, message: Any) -> None:
        if isinstance(message, AppendBatchRequest):
            self._handle_append(sender, message)
        elif isinstance(message, ReadRequest):
            self._handle_read(sender, message)
        elif isinstance(message, GetRequest):
            self._handle_get(sender, message)
        elif isinstance(message, BlockProofMessage):
            self._handle_block_proof(sender, message)
        elif isinstance(message, BatchCertificateMessage):
            self._handle_batch_certificate(sender, message)
        elif isinstance(message, MergeResponse):
            self._handle_merge_response(sender, message)
        elif isinstance(message, MergeRejection):
            self._handle_merge_rejection(sender, message)
        elif isinstance(message, RootRefreshResponse):
            self._handle_root_refresh_response(sender, message)
        elif isinstance(message, CertifyRejection):
            self._handle_certify_rejection(sender, message)
        elif isinstance(message, TxnPrepareRequest):
            self._handle_txn_prepare(sender, message)
        elif isinstance(message, TxnDecisionMessage):
            self._handle_txn_decision(sender, message)

    # ------------------------------------------------------------------
    # Appending (add / put)
    # ------------------------------------------------------------------
    def _handle_append(self, sender: NodeId, request: AppendBatchRequest) -> None:
        params = self.env.params
        self.stats["append_requests"] += 1
        payload_bytes = sum(len(entry.payload) for entry in request.entries)
        self.env.charge(
            params.request_overhead_seconds
            + params.verify_seconds
            + params.append_seconds_per_op * len(request.entries)
            + params.hash_cost(payload_bytes)
        )

        now = self.env.now()
        fresh_entries = []
        replayed_blocks: set[BlockId] = set()
        for entry in request.entries:
            location = self._active.entry_locations.get((entry.producer, entry.sequence))
            if location is not None:
                # Replay protection (Section IV-E): the same signed entry was
                # appended before — applying it again would duplicate data.
                replayed_blocks.add(location)
                continue
            if self.buffer.contains(entry.producer, entry.sequence):
                # The original copy is still buffered (block not yet formed);
                # it will answer the operation when the block forms.
                self.stats.setdefault("buffered_duplicate_entries", 0)
                self.stats["buffered_duplicate_entries"] += 1
                continue
            fresh_entries.append(entry)
        if replayed_blocks:
            self.stats.setdefault("replayed_entries", 0)
            self.stats["replayed_entries"] += len(request.entries) - len(fresh_entries)
            self._answer_replay(sender, request, replayed_blocks)

        batch: Optional[PendingBatch] = None
        for entry in fresh_entries:
            batch = self.buffer.append(
                entry,
                now=now,
                operation_id=request.operation_id,
                requester=sender,
            )
            if batch is not None:
                self._form_block(batch)
        if not self.buffer.is_empty:
            self._arm_flush_timer()

    def _answer_replay(
        self,
        sender: NodeId,
        request: AppendBatchRequest,
        replayed_blocks: set[BlockId],
    ) -> None:
        """Answer a replayed request idempotently with the original receipt."""

        for block_id in sorted(replayed_blocks):
            receipt = self._active.receipts.get(block_id)
            record = self.log.try_get(block_id)
            if receipt is None or record is None:
                continue
            response = AppendBatchResponse(
                edge=self.node_id,
                operation_id=request.operation_id,
                block_id=block_id,
                receipt=receipt,
                block=self._block_for_response(record.block),
            )
            self.env.send(self.node_id, sender, response)
            if block_id in self.certifier:
                self.certifier.subscribe(block_id, sender, request.operation_id)
            if record.proof is not None:
                self.env.send(self.node_id, sender, BlockProofMessage(proof=record.proof))

    def _arm_flush_timer(self) -> None:
        state = self._active
        if state.flush_timer_active:
            return
        state.flush_timer_active = True
        timeout = self.config.logging.block_timeout_s

        def flush() -> None:
            with self._as_active(state):
                state.flush_timer_active = False
                batch = self.buffer.flush()
                if batch is not None:
                    self.stats["timeout_flushes"] += 1
                    self._form_block(batch)
                if not self.buffer.is_empty:
                    self._arm_flush_timer()

        self.env.schedule(timeout, flush, label=f"{self.node_id}:flush")

    def _allocate_block_id(self) -> BlockId:
        """Reserve the next block id (edge-wide in sharded subclasses)."""

        return self.log.allocate_block_id()

    def _form_block(self, batch: PendingBatch) -> None:
        """Build a block from a full batch, Phase I commit it, start Phase II."""

        now = self.env.now()
        block_id = self._allocate_block_id()
        tracer = self._obs_tracer
        if tracer is None:
            self._commit_block(batch, block_id, now)
            return
        # Root span of this put's trace: the certify dispatch below, the
        # cloud's verification, the absorption of the certificate, and any
        # merge it triggers all hang off (or link back to) this context.
        with tracer.span(
            "phase1.commit", node=str(self.node_id), block_id=str(block_id)
        ) as span:
            self._obs_phase1[block_id] = span.context
            self._commit_block(batch, block_id, now)

    def _commit_block(self, batch: PendingBatch, block_id: BlockId, now: float) -> None:
        params = self.env.params
        block = self._build_block_for(batch, block_id, now)
        self.env.charge(params.block_build_cost(block.num_entries, block.wire_size))

        self.log.append(block)
        self.stats["blocks_formed"] += 1
        self.stats["entries_logged"] += block.num_entries

        receipt = issue_phase_one_receipt(self.env.registry, self.node_id, block, now)
        digest = self._digest_to_certify(block)
        self.certifier.track(block.block_id, digest, now)
        self._active.receipts[block.block_id] = receipt
        self._persist_block(block, receipt)
        for entry in block.entries:
            self._active.entry_locations[(entry.producer, entry.sequence)] = block.block_id

        # Respond to every distinct (requester, operation) in the batch and
        # subscribe them to the eventual block proof.
        requesters = self._batch_requesters(batch)
        for requester, operation_id in requesters:
            self.certifier.subscribe(block.block_id, requester, operation_id)
        self._dispatch_phase_one_responses(requesters, block, receipt)
        self._signal_degraded_mode([requester for requester, _op in requesters])

        # Index the block's put operations into LSMerkle level 0.
        page = page_from_block(block)
        if page is not None:
            self.index.add_level_zero_page(page)
            self.level_zero_blocks.append(block.block_id)

        # Lazy certification: data-free digest to the cloud, off the critical path.
        self._send_certify_request(block, digest)
        self._maybe_start_merge()

    @staticmethod
    def _batch_requesters(batch: PendingBatch) -> list[tuple[NodeId, OperationId]]:
        """Distinct (requester, operation) pairs contributing to a batch."""

        seen: list[tuple[NodeId, OperationId]] = []
        for item in batch.entries:
            if item.requester is None or item.operation_id is None:
                continue
            pair = (item.requester, item.operation_id)
            if pair not in seen:
                seen.append(pair)
        return seen

    def _dispatch_phase_one_responses(
        self,
        requesters: list[tuple[NodeId, OperationId]],
        block: Block,
        receipt,
    ) -> None:
        """Send the signed Phase I acknowledgements (overridden by baselines)."""

        for requester, operation_id in requesters:
            response = AppendBatchResponse(
                edge=self.node_id,
                operation_id=operation_id,
                block_id=block.block_id,
                receipt=receipt,
                block=self._block_for_response(block),
            )
            self.env.send(self.node_id, requester, response)

    # Hooks overridden by malicious subclasses -------------------------------
    def _build_block_for(
        self, batch: PendingBatch, block_id: BlockId, now: float
    ) -> Block:
        return build_block(self.node_id, block_id, batch.log_entries, now)

    def _block_for_response(self, block: Block) -> Optional[Block]:
        return block if self.config.logging.return_block_on_add else None

    def _digest_to_certify(self, block: Block) -> str:
        return block.digest()

    def _certify_pipeline_depth(self) -> int:
        """In-flight window bound for the active partition's certifier.

        Shard partitions may override the logging-level depth through
        ``ShardingConfig.certify_pipeline_depth``; the default partition
        always uses ``LoggingConfig.certify_pipeline_depth``.
        """

        sharding = self.config.sharding
        if (
            self._active.shard_id is not None
            and sharding is not None
            and sharding.certify_pipeline_depth is not None
        ):
            return sharding.certify_pipeline_depth
        return self.config.logging.certify_pipeline_depth

    def _send_certify_request(self, block: Block, digest: str) -> None:
        batch_size = self.config.logging.certify_batch_size
        if batch_size <= 1:
            # Unbatched wire format: one signed request per block, exactly
            # the protocol the paper's figures were measured with.
            self._send_single_certify_request(
                block.block_id, digest, block.num_entries
            )
            return
        # Lazy certification is asynchronous, so the digest can wait for its
        # batch: queue it, ship full batches while the in-flight window has
        # room, and bound whatever stays queued (a partial batch, or a full
        # window) with the flush timer.  A size-triggered dispatch that
        # empties the queue cancels the timer so the next digest starts a
        # fresh full window instead of inheriting a near-expired deadline.
        self.certifier.enqueue_for_dispatch(block.block_id)
        self._pump_certify_pipeline()
        if self.certifier.pending_dispatch_count:
            self._arm_certify_flush_timer()
        else:
            self._cancel_certify_flush_timer()

    def _pump_certify_pipeline(self, allow_partial: bool = False) -> int:
        """Ship queued digests while the in-flight window has room.

        Full batches ship immediately; a trailing partial batch only ships
        when *allow_partial* is set (the timeout flush and the handoff
        drain), so steady load keeps producing full-size batches.  Returns
        how many batch requests left the edge.  When digests stay queued
        because the window is full, the next certificate retirement pumps
        again — batch formation overlaps the outstanding round-trips.
        """

        depth = self._certify_pipeline_depth()
        groups = self.certifier.drain_window_groups(
            depth=depth,
            batch_size=self.config.logging.certify_batch_size,
            now=self.env.now(),
            allow_partial=allow_partial,
        )
        shipped = len(groups)
        if len(groups) == 1:
            self._send_certify_batch_request(groups[0])
        elif groups:
            # Several batches leave in one pump: one window envelope
            # signature covers them all; the cloud still answers with one
            # certificate per batch, so the slots retire independently.
            self._send_certify_window_request(groups)
        if (
            self.certifier.pending_dispatch_count
            and self.certifier.in_flight_count >= depth
        ):
            self.stats.setdefault("certify_window_stalls", 0)
            self.stats["certify_window_stalls"] += 1
        peak = self.stats.setdefault("certify_inflight_peak", 0)
        if self.certifier.in_flight_count > peak:
            self.stats["certify_inflight_peak"] = self.certifier.in_flight_count
        if self._metrics is not None:
            shard = (
                "default" if self._active.shard_id is None else str(self._active.shard_id)
            )
            self._metrics.gauge("certify_in_flight", shard=shard).set(
                self.certifier.in_flight_count
            )
            self._metrics.gauge("certify_queued", shard=shard).set(
                self.certifier.pending_dispatch_count
            )
        return shipped

    def _send_single_certify_request(
        self, block_id: BlockId, digest: str, num_entries: int
    ) -> None:
        statement = CertifyStatement(
            edge=self.node_id,
            block_id=block_id,
            block_digest=digest,
            num_entries=num_entries,
        )
        signature = self.env.registry.sign(self.node_id, statement)
        self.stats["certify_requests"] += 1
        message = BlockCertifyRequest(statement=statement, signature=signature)
        tracer = self._obs_tracer
        if tracer is None:
            self.env.send(self.node_id, self.cloud, message)
            return
        with tracer.span(
            "certify.dispatch",
            node=str(self.node_id),
            links=self._obs_phase1_links((block_id,)),
            blocks=1,
        ):
            self.env.send(self.node_id, self.cloud, message)

    def _arm_certify_flush_timer(self) -> None:
        state = self._active
        if state.certify_flush_timer is not None:
            return
        timeout = self.config.logging.certify_flush_timeout_s

        def flush() -> None:
            with self._as_active(state):
                state.certify_flush_timer = None
                self._flush_certify_batch()

        state.certify_flush_timer = self.env.schedule(
            timeout, flush, label=f"{self.node_id}:certify-flush"
        )

    def _num_entries_for(self, block_id: BlockId) -> int:
        """Entry count reported in certify statements (0 for absent blocks)."""

        return self.log.block(block_id).num_entries if block_id in self.log else 0

    def _certify_items_for(self, tasks) -> tuple[CertifyStatement, ...]:
        return tuple(
            CertifyStatement(
                edge=self.node_id,
                block_id=task.block_id,
                block_digest=task.block_digest,
                num_entries=self._num_entries_for(task.block_id),
            )
            for task in tasks
        )

    def _send_certify_batch_request(self, tasks) -> None:
        """Ship the given certification tasks as one signed batch request."""

        statement = CertifyBatchStatement(
            edge=self.node_id, items=self._certify_items_for(tasks)
        )
        signature = self.env.registry.sign(self.node_id, statement)
        self.stats["certify_requests"] += 1
        self.stats["certify_batches"] += 1
        message = CertifyBatchRequest(statement=statement, signature=signature)
        tracer = self._obs_tracer
        if tracer is None:
            self.env.send(self.node_id, self.cloud, message)
            return
        with tracer.span(
            "certify.dispatch",
            node=str(self.node_id),
            links=self._obs_phase1_links([task.block_id for task in tasks]),
            blocks=len(tasks),
        ):
            self.env.send(self.node_id, self.cloud, message)

    def _send_certify_window_request(self, groups) -> None:
        """Ship several batches under one window-envelope signature.

        The envelope amortizes the edge's asymmetric signature over every
        batch the pump dispatched together; selective retries later re-send
        individual batches as plain :class:`CertifyBatchRequest`\\ s.
        """

        batches = tuple(
            CertifyBatchStatement(
                edge=self.node_id, items=self._certify_items_for(tasks)
            )
            for tasks in groups
        )
        statement = CertifyWindowStatement(edge=self.node_id, batches=batches)
        signature = self.env.registry.sign(self.node_id, statement)
        self.stats["certify_requests"] += 1
        self.stats["certify_batches"] += len(groups)
        self.stats.setdefault("certify_windows", 0)
        self.stats["certify_windows"] += 1
        message = CertifyWindowRequest(statement=statement, signature=signature)
        tracer = self._obs_tracer
        if tracer is None:
            self.env.send(self.node_id, self.cloud, message)
            return
        with tracer.span(
            "certify.dispatch",
            node=str(self.node_id),
            links=self._obs_phase1_links(
                [task.block_id for tasks in groups for task in tasks]
            ),
            blocks=sum(len(tasks) for tasks in groups),
            window=len(groups),
        ):
            self.env.send(self.node_id, self.cloud, message)

    def _cancel_certify_flush_timer(self) -> None:
        state = self._active
        if state.certify_flush_timer is not None:
            state.certify_flush_timer.cancel()
            state.certify_flush_timer = None

    def _flush_certify_batch(self) -> None:
        """Flush the dispatch queue into the in-flight window, stragglers too.

        The timeout flush (and the handoff drain, which calls this directly)
        ships partial batches; queued digests the full window leaves behind
        get a fresh timer so their wait stays bounded — certificate
        retirements pump the pipeline in between.
        """

        self._cancel_certify_flush_timer()
        self._pump_certify_pipeline(allow_partial=True)
        if self.certifier.pending_dispatch_count:
            self._arm_certify_flush_timer()

    # ------------------------------------------------------------------
    # Degraded mode (graceful cloud-outage backpressure)
    # ------------------------------------------------------------------
    def _uncertified_backlog(self) -> int:
        """Phase-I-committed blocks of the active partition still awaiting
        their cloud certificate."""

        certifier = self.certifier
        return certifier.tracked_count - certifier.certified_count

    def _signal_degraded_mode(self, requesters: Iterable[NodeId]) -> None:
        """Maintain the partition's degraded flag and tell clients about it.

        Phase I service never stops — the paper's lazy-certification model
        explicitly tolerates an unreachable cloud — but past the configured
        backlog the edge owes its clients an honest signal that proofs will
        be late.  Entering degraded mode notifies each client as it next
        appends (*requesters*); leaving it (backlog drained to half the
        threshold, hysteresis against flapping) notifies everyone previously
        warned.  A ``None`` threshold disables all of this.
        """

        limit = self.config.logging.max_uncertified_backlog
        if limit is None:
            return
        state = self._active
        backlog = self._uncertified_backlog()
        if not state.degraded and backlog > limit:
            state.degraded = True
            self.stats.setdefault("degraded_entries", 0)
            self.stats["degraded_entries"] += 1
        elif state.degraded and backlog <= limit // 2:
            state.degraded = False
            self.stats.setdefault("degraded_recoveries", 0)
            self.stats["degraded_recoveries"] += 1
            notice = DegradedModeNotice(
                edge=self.node_id, degraded=False, backlog=backlog, limit=limit
            )
            for client in sorted(state.degraded_notified, key=str):
                self.env.send(self.node_id, client, notice)
            state.degraded_notified.clear()
            return
        if not state.degraded:
            return
        notice = DegradedModeNotice(
            edge=self.node_id, degraded=True, backlog=backlog, limit=limit
        )
        for requester in requesters:
            if requester in state.degraded_notified:
                continue
            state.degraded_notified.add(requester)
            self.env.send(self.node_id, requester, notice)

    # ------------------------------------------------------------------
    # Durable storage (no-ops for the paper-exact in-memory backend)
    # ------------------------------------------------------------------
    def _storage_degraded(self) -> None:
        """A durable write failed (full disk, injected fault): count it.

        Availability wins over durability — the edge keeps serving Phase I
        commits exactly as it does through a cloud outage; the operator
        signal is the stat (and, on the next crash, a smaller recovered
        state).
        """

        self.stats.setdefault("storage_write_errors", 0)
        self.stats["storage_write_errors"] += 1

    def _persist_block(self, block: Block, receipt) -> None:
        store = self._active.store
        if store is None:
            return
        try:
            store.append_block(block, receipt)
        except StorageError:
            self._storage_degraded()

    def _persist_proof(self, proof: AnyBlockProof) -> None:
        store = self._active.store
        if store is None:
            return
        try:
            store.append_proof(proof)
        except StorageError:
            self._storage_degraded()

    def _persist_manifest(self) -> None:
        """Snapshot the active partition's index state into its store.

        Called after every installed merge and root refresh.  The write also
        computes the snapshot-truncation floor: the lowest block id that
        must stay replayable is the minimum over uncertified blocks, blocks
        still backing level-0 pages, and the allocator watermark — sealed
        segments entirely below it carry only blocks whose data now lives in
        the manifest's (just-fsynced) pages.
        """

        state = self._active
        store = state.store
        if store is None:
            return
        level_pages = {
            index: list(state.index.tree.levels[index].pages)
            for index in range(1, state.index.num_levels)
        }
        floor = state.log.next_block_id
        uncertified = state.log.uncertified_block_ids()
        if uncertified:
            floor = min(floor, uncertified[0])
        if state.level_zero_blocks:
            floor = min(floor, min(state.level_zero_blocks))
        try:
            store.write_manifest(
                next_block_id=state.log.next_block_id,
                level_pages=level_pages,
                level_zero_blocks=tuple(state.level_zero_blocks),
                signed_root=state.signed_root,
                truncate_floor=floor,
            )
        except StorageError:
            self._storage_degraded()
        else:
            state.log.mark_truncated(floor)

    def quarantine_reports(self) -> dict:
        """Quarantined partitions of this edge: ``{shard_id: reason}``."""

        return {
            state.shard_id: state.quarantined
            for state in self._partition_states()
            if state.quarantined is not None
        }

    def assert_serving(self) -> None:
        """Raise :class:`PartitionQuarantinedError` if any partition refuses
        service (corruption detected at recovery)."""

        reports = self.quarantine_reports()
        if reports:
            raise PartitionQuarantinedError(
                f"{self.node_id} quarantined partitions: {reports}"
            )

    def _recover_durable_partitions(self) -> None:
        """Replace every stored partition with one rebuilt from disk.

        The pre-crash state objects are abandoned wholesale — recovery
        trusts nothing but the store.  Timers armed against the old objects
        fire against orphaned state and no-op harmlessly (same contract the
        in-memory crash model has always had).
        """

        self.last_recovery_reports = []
        fresh, report = self._recover_partition_state(self._default_partition)
        self._default_partition = fresh
        self._active = fresh
        if report is not None:
            self.last_recovery_reports.append(report)

    def _recover_partition_state(
        self, old_state: PartitionState
    ) -> tuple[PartitionState, Optional[RecoveryReport]]:
        store = old_state.store
        if store is None:
            return old_state, None
        fresh = self._new_partition(old_state.shard_id, store=store)
        report = recover_partition(fresh, store, self.env.registry, self.cloud)
        self.stats.setdefault("partitions_recovered", 0)
        self.stats["partitions_recovered"] += 1
        if self._metrics is not None:
            # Deterministic recovery-size distribution (simulated runs have
            # no meaningful wall-clock; the replay volume is the cost proxy).
            self._metrics.histogram(
                "storage_recovery_blocks", bounds=(1, 4, 16, 64, 256, 1024)
            ).observe(report.blocks_replayed)
        if report.quarantined is not None:
            self.stats.setdefault("partitions_quarantined", 0)
            self.stats["partitions_quarantined"] += 1
        return fresh, report

    # ------------------------------------------------------------------
    # Crash / restart (the fault injector's node lifecycle)
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """Lose all volatile state, keep everything the trust model calls
        durable.

        Survives (the edge's persisted artifacts): the certified log with
        its proofs, the LSMerkle index and signed root, Phase I receipts,
        and the replay-protection entry locations — all reconstructible
        from (or equal to) what a real edge fsyncs.  Lost: the append
        buffer, the certifier's dispatch queue and in-flight window, staged
        and decided 2PC transaction state, and merge bookkeeping.  The wipe
        happens at *crash* time so timers that were armed before the crash
        fire against fresh, empty state and no-op harmlessly.
        """

        self.stats.setdefault("crashes", 0)
        self.stats["crashes"] += 1
        for state in self._partition_states():
            with self._as_active(state):
                state.buffer = BlockBuffer(self.config.logging.block_size)
                state.certifier.reset_window()
                state.staged_txns.clear()
                state.decided_txns.clear()
                state.merge_in_flight = False
                state.merge_source_bids = ()
                state.flush_timer_active = False
                if state.certify_flush_timer is not None:
                    state.certify_flush_timer.cancel()
                    state.certify_flush_timer = None
                state.degraded = False
                state.degraded_notified.clear()
                if state.store is not None:
                    # Model the kill against the disk too: unsynced segment
                    # bytes half-survive, producing the torn tails recovery
                    # must repair.
                    state.store.simulate_crash()

    def on_restart(self) -> None:
        """Resume after a crash: re-request certification of every
        uncertified block in the durable log.

        With the disk backend, restart first *replaces* every partition with
        one rebuilt purely from its store (verified against the durable
        signed root, quarantined on corruption) — the preserved in-memory
        objects are not trusted.  Either way, the crash wiped the in-flight
        window, so every uncertified block is simply overdue at timeout
        zero — restart recovery *is* the ordinary overdue scan, no special
        path.
        """

        self.stats.setdefault("restarts", 0)
        self.stats["restarts"] += 1
        if self.config.storage.is_durable:
            self._recover_durable_partitions()
        for state in self._partition_states():
            if state.quarantined is not None:
                continue
            with self._as_active(state):
                self._retry_overdue_for_active(0.0)

    # ------------------------------------------------------------------
    # Block proofs from the cloud
    # ------------------------------------------------------------------
    def _handle_block_proof(self, sender: NodeId, message: BlockProofMessage) -> None:
        params = self.env.params
        self.env.charge(params.verify_seconds)
        proof = message.proof
        # Pin the issuer: a proof must name this edge's actual cloud node,
        # not merely carry a self-consistent signature from its claimed
        # signer (any registered node can sign statements naming itself).
        if (
            proof.edge != self.node_id
            or proof.cloud != self.cloud
            or not proof.verify(self.env.registry)
        ):
            return
        self._accept_certified_proof(proof)
        self._maybe_start_merge()
        self._pump_certify_pipeline()

    def _accept_certified_proof(self, proof: AnyBlockProof) -> None:
        """Record a verified proof and forward it to waiting subscribers."""

        tracer = self._obs_tracer
        if tracer is None:
            self._absorb_certified_proof(proof)
            return
        # The acceptance linkage of the whole trace: this span's parent is
        # the cloud's certify span (via the delivery sidecar) and its link
        # is the Phase I span of the block being certified — so a Phase II
        # certificate always resolves back to the put that caused it.
        links = self._obs_phase1_links((proof.block_id,))
        with tracer.span(
            "certify.absorb",
            node=str(self.node_id),
            links=links,
            block_id=str(proof.block_id),
        ):
            if self._metrics is not None and links:
                origin = tracer.find(links[0].span_id)
                if origin is not None:
                    self._metrics.histogram("certify_latency_s").observe(
                        self.env.now() - origin.start
                    )
            self._obs_phase1.pop(proof.block_id, None)
            self._absorb_certified_proof(proof)

    def _absorb_certified_proof(self, proof: AnyBlockProof) -> None:
        record = self.log.try_get(proof.block_id)
        if record is not None and record.block.digest() == proof.block_digest:
            self.log.attach_proof(proof)
            self._persist_proof(proof)
        self.stats["proofs_received"] += 1
        try:
            subscribers = self.certifier.complete(proof)
        except ProtocolError:
            subscribers = []
        for client, _operation in subscribers:
            self.env.send(self.node_id, client, BlockProofMessage(proof=proof))
            self.stats["proofs_forwarded"] += 1
        self._signal_degraded_mode(())

    def _handle_batch_certificate(
        self, sender: NodeId, message: BatchCertificateMessage
    ) -> None:
        """Derive per-block proofs locally from one signed batch root.

        The certificate's single signature is verified once; every per-block
        proof below it costs only leaf hashing and an O(log N) path.  Any
        returned item whose digest does not match what this edge asked to
        certify (a malicious or confused cloud) is rejected individually,
        and a certificate whose root does not commit to exactly the returned
        item list is rejected outright.

        Under pipelining, certificates for different in-flight batches
        arrive in whatever order the WAN delivers them — and a certificate
        may arrive twice when a selective retry races the original answer.
        Absorption is per block and idempotent, so out-of-order and
        duplicate certificates need no special casing; retiring a batch
        frees a window slot, and the pump below ships the next queued batch
        into it.
        """

        params = self.env.params
        certificate = message.certificate
        self.env.charge(params.batch_proof_derivation_cost(len(message.blocks)))
        if (
            certificate.edge != self.node_id
            or certificate.cloud != self.cloud
            or not certificate.verify(self.env.registry)
        ):
            return
        try:
            proofs = derive_batched_proofs(certificate, message.blocks)
        except ProofVerificationError:
            # Root does not commit to the returned items: the certificate is
            # unusable as evidence — drop the whole message.
            self.stats["batch_cert_mismatches"] += 1
            return
        for proof in proofs:
            task = self.certifier.task(proof.block_id)
            if task is None or task.block_digest != proof.block_digest:
                # The cloud claims to have certified a digest this edge never
                # sent for that block id (malicious-cloud path): reject the
                # item, keep the rest of the batch.
                self.stats["batch_cert_mismatches"] += 1
                continue
            self._accept_certified_proof(proof)
        self._maybe_start_merge()
        self._pump_certify_pipeline()

    def retry_overdue_certifications(self, timeout_s: "float | RetryPolicy") -> int:
        """Re-send certification requests pending longer than *timeout_s*.

        Retry granularity is *per lost batch*: an overdue in-flight batch is
        re-sent as exactly that batch (its still-uncertified members under a
        fresh signature) — never folded into a whole-overdue-set re-chunk,
        so one lost request costs one retry message however deep the
        pipeline is, and a duplicate late certificate (the original answer
        racing the retry's) is absorbed idempotently.

        Overdue digests that ride no in-flight batch (e.g. requested through
        the single-block path) fall back to the pre-pipeline behaviour: the
        single-block path with ``certify_batch_size`` of 1, re-batched
        :class:`CertifyBatchRequest` chunks otherwise.  Returns how many
        block retries were sent.  Blocks still sitting in the dispatch queue
        are skipped — their first request has not left the edge yet, so
        there is nothing to retry (the pending batch flush covers them).

        *timeout_s* may also be a :class:`~repro.faults.retry.RetryPolicy`:
        each batch/task then waits out the policy's backoff step for its own
        retry count before going overdue again (sustained cloud outages see
        exponentially thinning retransmissions instead of a flat hammer),
        and anything past the policy's attempt budget stops retrying.
        """

        total = 0
        for state in self._partition_states():
            with self._as_active(state):
                total += self._retry_overdue_for_active(timeout_s)
        return total

    def _retry_overdue_for_active(self, timeout_s: "float | RetryPolicy") -> int:
        policy = timeout_s if isinstance(timeout_s, RetryPolicy) else None
        horizon = policy.timeout_for if policy is not None else timeout_s
        now = self.env.now()
        sent = 0
        # Selective per-batch retries first: only the lost batches re-ship.
        for batch in self.certifier.overdue_batches(now, horizon):
            if policy is not None and policy.exhausted(batch.retries):
                continue
            tasks = self.certifier.record_batch_retry(batch.batch_id, now)
            if not tasks:
                continue
            self.stats["certify_retries"] += len(tasks)
            self.stats.setdefault("certify_batch_retries", 0)
            self.stats["certify_batch_retries"] += 1
            self._send_certify_batch_request(tasks)
            sent += len(tasks)
        overdue = [
            task
            for task in self.certifier.overdue(now, horizon)
            if not self.certifier.queued_for_dispatch(task.block_id)
            and not self.certifier.in_flight(task.block_id)
            and not (policy is not None and policy.exhausted(task.retries))
        ]
        if not overdue:
            return sent
        overdue.sort(key=lambda task: task.block_id)
        for task in overdue:
            self.certifier.record_retry(task.block_id, now)
            self.stats["certify_retries"] += 1
        batch_size = self.config.logging.certify_batch_size
        if batch_size <= 1:
            for task in overdue:
                self._send_single_certify_request(
                    task.block_id, task.block_digest, self._num_entries_for(task.block_id)
                )
        else:
            for start in range(0, len(overdue), batch_size):
                self._send_certify_batch_request(overdue[start : start + batch_size])
        return sent + len(overdue)

    def _handle_certify_rejection(
        self, sender: NodeId, message: CertifyRejection
    ) -> None:
        # An honest edge should never be rejected; record it for diagnostics.
        self.stats.setdefault("certify_rejections", 0)
        self.stats["certify_rejections"] += 1
        if sender != self.cloud:
            return
        # A definitively refused block will never produce a certificate:
        # release its in-flight batch slot so the window cannot wedge on it,
        # and let the freed slot pull the next queued batch forward.
        self.certifier.abandon_in_flight(message.block_id)
        self._pump_certify_pipeline()

    # ------------------------------------------------------------------
    # Cross-shard transactions: the participant side
    # (:mod:`repro.sharding.transactions` holds the coordinator and the
    # protocol rationale; the staged state lives on ``PartitionState``.)
    # ------------------------------------------------------------------
    def _txn_prepare_timeout(self) -> float:
        """The staged-prepare expiry horizon advertised in receipts."""

        return self.config.sharding_or_default().txn_prepare_timeout_s

    def _txn_shard_ok(self, shard_id: ShardId, key: str) -> bool:
        """Whether *key* belongs to *shard_id* (partitioner-aware subclasses)."""

        return True

    def _peek_next_block_id(self) -> BlockId:
        """The Phase I log position a prepare receipt binds to (no allocation)."""

        return self.log.next_block_id

    def _after_txn_resolved(self, shard_id: Optional[ShardId]) -> None:
        """Hook: a staged transaction was decided or expired.

        The sharded edge uses this to re-advance a handoff drain that was
        waiting for the shard's staged prepares to resolve.
        """

    def _handle_txn_prepare(self, sender: NodeId, request: TxnPrepareRequest) -> None:
        tracer = self._obs_tracer
        if tracer is None:
            self._process_txn_prepare(sender, request)
            return
        with tracer.span(
            "txn.prepare",
            node=str(self.node_id),
            txn=str(request.statement.txn_id),
        ):
            self._process_txn_prepare(sender, request)

    def _process_txn_prepare(self, sender: NodeId, request: TxnPrepareRequest) -> None:
        params = self.env.params
        self.stats.setdefault("txn_prepares", 0)
        self.stats["txn_prepares"] += 1
        statement = request.statement
        self.env.charge(params.txn_prepare_cost(len(request.entries)))
        if (
            statement.coordinator != sender
            or statement.txn_id.coordinator != sender
            or not self.env.registry.verify(request.signature, statement)
        ):
            return
        state = self._active
        txn_id = statement.txn_id
        decided = state.decided_txns.get(txn_id)
        if decided is not None:
            # The transaction was already decided here (e.g. an abort raced
            # ahead of a redirected prepare): answer with the outcome.
            decision, block_id, shard_id, _message = decided
            self._send_txn_ack(
                txn_id,
                shard_id if shard_id is not None else statement.shard_id,
                decision,
                block_id,
            )
            return
        staged = state.staged_txns.get(txn_id)
        if staged is not None:
            # Duplicate prepare (a redirect loop or retry): idempotently
            # re-send the original signed receipt.
            self.env.send(self.node_id, sender, staged.receipt)
            return
        reason = self._validate_txn_writes(sender, statement, request.entries)
        if reason is not None:
            self.stats.setdefault("txn_prepare_rejections", 0)
            self.stats["txn_prepare_rejections"] += 1
            self.env.send(
                self.node_id,
                sender,
                TxnPrepareRejection(
                    edge=self.node_id,
                    txn_id=txn_id,
                    shard_id=statement.shard_id,
                    reason=reason,
                ),
            )
            return

        from ..sharding.transactions import StagedTxn

        now = self.env.now()
        expires_at = now + self._txn_prepare_timeout()
        receipt = self._build_prepare_receipt(statement, now, expires_at)
        state.staged_txns[txn_id] = StagedTxn(
            txn_id=txn_id,
            shard_id=statement.shard_id,
            coordinator=sender,
            requester=sender,
            operation_id=request.operation_id,
            entries=request.entries,
            writes=statement.writes,
            staged_at=now,
            expires_at=expires_at,
            receipt=receipt,
        )
        self._arm_txn_expiry(state, txn_id, expires_at - now)
        self.env.send(self.node_id, sender, receipt)

    def _validate_txn_writes(
        self,
        sender: NodeId,
        statement: TxnPrepareStatement,
        entries: tuple[LogEntry, ...],
    ) -> Optional[str]:
        """Why the prepare cannot be staged, or ``None`` when it can.

        Every entry must be a coordinator-produced put whose ``(key, value
        digest)`` matches the signed write summary, and every key must
        belong to the prepared shard — a write smuggled onto the wrong
        shard would escape that shard's decision record.

        Two self-protection rules guard the *edge* against a malicious
        coordinator's dispute machinery: the coordinator-signed
        ``staged_floor`` must not exceed the partition's actual log
        position (an absurd floor could only exist to skew later
        adjudication), and no staged write may duplicate a ``(key, value)``
        already committed in the partition — serving the pre-existing value
        would be indistinguishable from serving staged state.
        """

        if not entries or len(entries) != len(statement.writes):
            return "write-set-mismatch"
        if statement.staged_floor > self._peek_next_block_id():
            return "staged floor beyond the partition's log position"
        for entry, write in zip(entries, statement.writes):
            if entry.producer != sender:
                return "entries not produced by the coordinator"
            if not is_put_payload(entry.payload):
                return "non-put payload in a transactional write"
            key, value = decode_put(entry.payload)
            if key != write.key or digest_value(value) != write.value_digest:
                return "write-set-mismatch"
            if not self._txn_shard_ok(statement.shard_id, key):
                return "key outside the prepared shard"
            result = self._index_lookup(key)
            if result.found and digest_value(result.record.value) == write.value_digest:
                return "write already committed in the partition"
        return None

    # Hook overridden by the malicious tampering variant --------------------
    def _receipt_writes(
        self, writes: tuple[TxnWrite, ...]
    ) -> tuple[TxnWrite, ...]:
        return writes

    def _build_prepare_receipt(
        self, statement: TxnPrepareStatement, now: float, expires_at: float
    ) -> TxnPrepareReceipt:
        receipt_statement = TxnPrepareReceiptStatement(
            edge=self.node_id,
            txn_id=statement.txn_id,
            shard_id=statement.shard_id,
            log_position=self._peek_next_block_id(),
            writes=self._receipt_writes(statement.writes),
            prepare_digest=digest_value(statement),
            prepared_at=now,
            expires_at=expires_at,
        )
        return TxnPrepareReceipt(
            statement=receipt_statement,
            signature=self.env.registry.sign(self.node_id, receipt_statement),
        )

    def _arm_txn_expiry(
        self, state: PartitionState, txn_id: TxnId, delay: float
    ) -> None:
        """Presumed abort: an undecided stage is discarded at its deadline.

        The deadline is the ``expires_at`` the receipt *signed*, so the
        coordinator (which only commits while every receipt is unexpired)
        and the participant can never disagree about the horizon.
        """

        def expire() -> None:
            with self._as_active(state):
                staged = state.staged_txns.pop(txn_id, None)
                if staged is None:
                    return  # decided in time
                self.stats.setdefault("txn_prepares_expired", 0)
                self.stats["txn_prepares_expired"] += 1
                block_id = self._log_txn_decision(
                    txn_id, TXN_ABORT, reason="prepare-expired"
                )
                self._record_txn_decision(
                    state, txn_id, TXN_ABORT, block_id, staged.shard_id
                )
                self._after_txn_resolved(state.shard_id)

        self.env.schedule(delay, expire, label=f"{self.node_id}:txn-expiry")

    def _record_txn_decision(
        self,
        state: PartitionState,
        txn_id: TxnId,
        decision: str,
        block_id: Optional[BlockId],
        shard_id: Optional[ShardId],
        message: Optional[TxnDecisionMessage] = None,
    ) -> None:
        """Tombstone a decided transaction and schedule the tombstone away.

        The tombstone only matters while a duplicate decision or a late
        prepare could still arrive — both are bounded by the transaction's
        signed timing window.  Evicting well past that horizon keeps
        ``decided_txns`` proportional to in-window transactions instead of
        growing with every transaction the partition ever decided.
        ``message`` keeps the coordinator-signed decision this partition
        acted on — the edge's half of an equivocation counter-dispute.
        """

        state.decided_txns[txn_id] = (decision, block_id, shard_id, message)

        def evict() -> None:
            state.decided_txns.pop(txn_id, None)

        self.env.schedule(
            4 * self._txn_prepare_timeout(),
            evict,
            label=f"{self.node_id}:txn-tombstone-evict",
        )

    def _handle_txn_decision(
        self, sender: NodeId, message: TxnDecisionMessage
    ) -> None:
        params = self.env.params
        statement = message.statement
        staged = self._active.staged_txns.get(statement.txn_id)
        self.env.charge(
            params.txn_decision_cost(len(staged.entries) if staged else 0)
        )
        if statement.decision not in (TXN_COMMIT, TXN_ABORT):
            return
        # The signed statement is self-certifying (the signer must be the
        # transaction's coordinator), so relayed decisions are as good as
        # direct ones — what matters is the signature, not the bearer.
        if not message.verify(self.env.registry):
            return
        self._apply_txn_decision(message)

    def _apply_txn_decision(self, message: TxnDecisionMessage) -> None:
        """Apply an already-verified decision to the active partition."""

        tracer = self._obs_tracer
        if tracer is None:
            self._apply_txn_decision_inner(message)
            return
        with tracer.span(
            "txn.apply",
            node=str(self.node_id),
            txn=str(message.statement.txn_id),
            decision=message.statement.decision,
        ):
            self._apply_txn_decision_inner(message)

    def _apply_txn_decision_inner(self, message: TxnDecisionMessage) -> None:
        statement = message.statement
        state = self._active
        staged = state.staged_txns.get(statement.txn_id)
        txn_id = statement.txn_id
        decided = state.decided_txns.get(txn_id)
        if decided is not None:
            # Duplicate decision: absorbed idempotently, original outcome
            # re-acknowledged, staged state untouched (there is none).
            self.stats.setdefault("txn_duplicate_decisions", 0)
            self.stats["txn_duplicate_decisions"] += 1
            decision, block_id, shard_id, _message = decided
            self._send_txn_ack(
                txn_id,
                shard_id if shard_id is not None else state.shard_id,
                decision,
                block_id,
            )
            return
        if staged is None:
            if statement.decision == TXN_ABORT:
                # Abort for a transaction never staged here (its prepare may
                # still be parked or in flight): tombstone it so a late
                # prepare cannot orphan-stage writes that already aborted.
                self._record_txn_decision(
                    state, txn_id, TXN_ABORT, None, state.shard_id, message
                )
                self.stats.setdefault("txn_aborts_applied", 0)
                self.stats["txn_aborts_applied"] += 1
                self._send_txn_ack(txn_id, state.shard_id, TXN_ABORT, None)
            else:
                # A commit with nothing staged is unanswerable: this edge
                # holds no writes to apply (e.g. its stage already expired
                # and presumed abort).  The abort record is already in the
                # certified log for the coordinator to audit.
                self.stats.setdefault("txn_stale_commits", 0)
                self.stats["txn_stale_commits"] += 1
            return
        del state.staged_txns[txn_id]
        if statement.decision == TXN_COMMIT:
            block_id = self._apply_staged_txn(staged)
            self.stats.setdefault("txn_commits_applied", 0)
            self.stats["txn_commits_applied"] += 1
            self._record_txn_decision(
                state, txn_id, TXN_COMMIT, block_id, staged.shard_id, message
            )
            self._send_txn_ack(txn_id, staged.shard_id, TXN_COMMIT, block_id)
        else:
            block_id = self._log_txn_decision(
                txn_id, TXN_ABORT, reason="coordinator-abort"
            )
            self.stats.setdefault("txn_aborts_applied", 0)
            self.stats["txn_aborts_applied"] += 1
            self._record_txn_decision(
                state, txn_id, TXN_ABORT, block_id, staged.shard_id, message
            )
            self._send_txn_ack(txn_id, staged.shard_id, TXN_ABORT, block_id)
        self._after_txn_resolved(state.shard_id)

    def _apply_staged_txn(self, staged) -> BlockId:
        """Atomically apply a committed transaction's staged writes.

        The staged client-signed entries and the commit decision record
        enter the partition buffer together and the buffer is flushed
        immediately, so they Phase I commit as one block (plus any
        co-buffered entries), flow through the ordinary certification /
        index / merge machinery, and the coordinator receives the standard
        signed ``AppendBatchResponse`` for its tracked prepare operation —
        Phase I and Phase II commitment of the transaction reuse the
        paper's receipts and proofs unchanged.
        """

        params = self.env.params
        now = self.env.now()
        payload_bytes = sum(len(entry.payload) for entry in staged.entries)
        self.env.charge(
            params.append_seconds_per_op * len(staged.entries)
            + params.hash_cost(payload_bytes)
        )
        for entry in staged.entries:
            batch = self.buffer.append(
                entry,
                now=now,
                operation_id=staged.operation_id,
                requester=staged.requester,
            )
            if batch is not None:
                self._form_block(batch)
        return self._log_txn_decision(staged.txn_id, TXN_COMMIT, reason="")

    def _log_txn_decision(self, txn_id: TxnId, decision: str, reason: str) -> BlockId:
        """Append the decision record and flush it into a Phase I block.

        Returns the id of the block carrying the record.  The record enters
        the *certified log* (lazy certification covers it like any block)
        but not the index — its payload prefix is invisible to the LSMerkle
        page codec.
        """

        from ..sharding.transactions import encode_txn_decision

        params = self.env.params
        now = self.env.now()
        self.env.charge(params.sign_seconds)
        entry = make_entry(
            registry=self.env.registry,
            producer=self.node_id,
            sequence=self._txn_record_seq.next(),
            payload=encode_txn_decision(txn_id, decision, reason),
            produced_at=now,
        )
        batch = self.buffer.append(entry, now=now)
        if batch is not None:
            self._form_block(batch)
        batch = self.buffer.flush()
        if batch is not None:
            self._form_block(batch)
        return self.log.next_block_id - 1

    def _send_txn_ack(
        self,
        txn_id: TxnId,
        shard_id: Optional[ShardId],
        decision: str,
        block_id: Optional[BlockId],
    ) -> None:
        self.env.send(
            self.node_id,
            txn_id.coordinator,
            TxnDecisionAck(
                edge=self.node_id,
                txn_id=txn_id,
                shard_id=shard_id,
                applied=decision == TXN_COMMIT,
                status="committed" if decision == TXN_COMMIT else "aborted",
                block_id=block_id,
            ),
        )

    # ------------------------------------------------------------------
    # Log reads
    # ------------------------------------------------------------------
    def _handle_read(self, sender: NodeId, request: ReadRequest) -> None:
        params = self.env.params
        self.stats["reads"] += 1
        self.env.charge(
            params.request_overhead_seconds
            + params.lookup_seconds_per_op
            + params.sign_seconds
        )
        record = self._read_record(request.block_id)
        now = self.env.now()
        if record is None:
            statement = ReadResponseStatement(
                edge=self.node_id,
                operation_id=request.operation_id,
                block_id=request.block_id,
                found=False,
                block_digest=None,
                issued_at=now,
            )
            response = ReadResponse(
                statement=statement,
                signature=self.env.registry.sign(self.node_id, statement),
            )
            self.env.send(self.node_id, sender, response)
            return

        block = self._block_for_read(record.block)
        statement = ReadResponseStatement(
            edge=self.node_id,
            operation_id=request.operation_id,
            block_id=request.block_id,
            found=True,
            block_digest=block.digest(),
            issued_at=now,
        )
        response = ReadResponse(
            statement=statement,
            signature=self.env.registry.sign(self.node_id, statement),
            block=block,
            proof=record.proof,
        )
        self.env.send(self.node_id, sender, response)
        if record.proof is None and request.block_id in self.certifier:
            # Phase I read: forward the proof once it arrives.
            self.certifier.subscribe(request.block_id, sender, request.operation_id)

    # Hooks overridden by malicious subclasses -------------------------------
    def _read_record(self, block_id: BlockId):
        return self.log.try_get(block_id)

    def _block_for_read(self, block: Block) -> Block:
        return block

    # ------------------------------------------------------------------
    # Key-value gets
    # ------------------------------------------------------------------
    def _handle_get(self, sender: NodeId, request: GetRequest) -> None:
        params = self.env.params
        self.stats["gets"] += 1
        level_zero_pages = self.index.tree.level_zero.num_pages
        self.env.charge(
            params.request_overhead_seconds
            + params.lookup_seconds_per_op * (1 + level_zero_pages)
            + params.sign_seconds
        )
        now = self.env.now()
        result = self._index_lookup(request.key)
        found = result.found
        value = result.record.value if found else None

        evidence = self._level_zero_evidence()
        proof = build_get_proof(
            key=request.key,
            index=self.index,
            level_zero_blocks=evidence,
            signed_root=self.signed_root,
            found_level=result.level_index,
        )
        statement = GetResponseStatement(
            edge=self.node_id,
            operation_id=request.operation_id,
            key=request.key,
            found=found,
            value_digest=digest_value(value) if value is not None else None,
            issued_at=now,
        )
        response = GetResponse(
            statement=statement,
            signature=self.env.registry.sign(self.node_id, statement),
            value=value,
            proof=proof,
            lease=self._response_lease(),
        )
        self.env.send(self.node_id, sender, response)

        # Phase I gets: forward proofs of the still-uncertified blocks.
        for block_id in proof.uncertified_block_ids:
            if block_id in self.certifier:
                self.certifier.subscribe(block_id, sender, request.operation_id)

    def _response_lease(self):
        """Serving lease to attach to get responses.

        ``None`` for the base node (and for a shard's writer): only a read
        replica of a replicated shard attaches the cloud-signed lease that
        authorizes it to answer (see ``sharding.edge``).
        """

        return None

    # Hooks overridden by malicious subclasses -------------------------------
    def _index_lookup(self, key: str):
        return self.index.get(key)

    def _level_zero_evidence(self) -> list[tuple[Block, Optional[Any]]]:
        return [
            (self.log.block(block_id), self.log.proof_for(block_id))
            for block_id in self.level_zero_blocks
        ]

    # ------------------------------------------------------------------
    # Merges
    # ------------------------------------------------------------------
    def _merge_shard_id(self) -> Optional[ShardId]:
        """Shard id stamped on merge proposals (the active partition's)."""

        return self._active.shard_id

    def _maybe_start_merge(self) -> None:
        if self._active.merge_in_flight:
            return
        levels_due = self.index.levels_needing_merge()
        if not levels_due:
            return
        level_index = levels_due[0]
        proposal = self._build_merge_proposal(level_index)
        if proposal is None:
            return
        self._active.merge_in_flight = True
        self.stats["merges_started"] += 1
        request = MergeRequest(edge=self.node_id, proposal=proposal)
        tracer = self._obs_tracer
        if tracer is None:
            self.env.send(self.node_id, self.cloud, request)
            return
        with tracer.span(
            "merge.propose", node=str(self.node_id), level=proposal.level_index
        ):
            self.env.send(self.node_id, self.cloud, request)

    def _build_merge_proposal(self, level_index: int) -> Optional[MergeProposal]:
        if level_index == 0:
            certified_bids = [
                block_id
                for block_id in self.level_zero_blocks
                if self.log.proof_for(block_id) is not None
            ]
            if not certified_bids:
                # Nothing certified yet; retry when block proofs arrive.
                return None
            source_blocks = tuple(self.log.block(block_id) for block_id in certified_bids)
            self._active.merge_source_bids = tuple(certified_bids)
            return MergeProposal(
                edge=self.node_id,
                level_index=0,
                source_blocks=source_blocks,
                target_pages=tuple(self.index.tree.levels[1].pages),
                shard_id=self._merge_shard_id(),
            )
        return MergeProposal(
            edge=self.node_id,
            level_index=level_index,
            source_pages=tuple(self.index.tree.levels[level_index].pages),
            target_pages=tuple(self.index.tree.levels[level_index + 1].pages),
            shard_id=self._merge_shard_id(),
        )

    def _handle_merge_response(self, sender: NodeId, message: MergeResponse) -> None:
        tracer = self._obs_tracer
        if tracer is None:
            self._install_merge_response(sender, message)
            return
        with tracer.span("merge.install", node=str(self.node_id)):
            self._install_merge_response(sender, message)

    def _install_merge_response(self, sender: NodeId, message: MergeResponse) -> None:
        params = self.env.params
        outcome = message.outcome
        self.env.charge(
            params.verify_seconds
            + params.append_seconds_per_op * sum(
                page.num_records for page in outcome.merged_pages
            )
        )
        if not outcome.signed_root.verify(self.env.registry, self.cloud):
            self._active.merge_in_flight = False
            return
        if not self._active.merge_in_flight:
            # No merge outstanding: a duplicate delivery of an outcome that
            # already cleared the flag.  ``merge_source_bids`` was consumed
            # by the first apply, so re-running the level-0 filter would
            # re-install the merged pages on top of themselves.
            self.stats.setdefault("merge_duplicates", 0)
            self.stats["merge_duplicates"] += 1
            return
        if outcome.signed_root.statement.version <= self._active.merge_installed_version:
            # A stale outcome (duplicate of an older merge racing a newer
            # request): already installed.  Root versions increase with
            # every merge, so the comparison is exact; the flag stays set —
            # the *current* merge's answer is still owed.
            self.stats.setdefault("merge_duplicates", 0)
            self.stats["merge_duplicates"] += 1
            return

        if outcome.level_index == 0:
            merged_bids = set(self._active.merge_source_bids)
            self._active.merge_source_bids = ()
            remaining_pages = [
                page
                for page in self.index.tree.levels[0].pages
                if page.source_block_id not in merged_bids
            ]
            self.index.install_merge(0, outcome.merged_pages, remaining_pages)
            self.level_zero_blocks = [
                block_id
                for block_id in self.level_zero_blocks
                if block_id not in merged_bids
            ]
        else:
            self.index.install_merge(outcome.level_index, outcome.merged_pages, ())

        self.signed_root = outcome.signed_root
        self._active.merge_installed_version = outcome.signed_root.statement.version
        self.stats["merges_completed"] += 1
        self._active.merge_in_flight = False
        self._persist_manifest()
        self._maybe_start_merge()

    def _handle_merge_rejection(self, sender: NodeId, message: MergeRejection) -> None:
        self.stats["merges_rejected"] += 1
        self._active.merge_in_flight = False

    # ------------------------------------------------------------------
    # Root refresh (freshness support)
    # ------------------------------------------------------------------
    def request_root_refresh(self) -> None:
        """Ask the cloud to re-sign the current roots with a fresh timestamp."""

        self.env.send(
            self.node_id,
            self.cloud,
            RootRefreshRequest(edge=self.node_id, shard_id=self._active.shard_id),
        )

    def _handle_root_refresh_response(
        self, sender: NodeId, message: RootRefreshResponse
    ) -> None:
        if message.edge != self.node_id:
            return
        if message.signed_root.verify(self.env.registry, self.cloud):
            self.signed_root = message.signed_root
            self.stats["root_refreshes"] += 1
            self._persist_manifest()
