"""The trusted cloud node.

The cloud node never sits in the execution path of client requests.  Its
jobs are (Section III & IV):

* certify block digests (at most one digest per ``(edge, block id)``) —
  flagging edge nodes that try to certify two different digests;
* execute and certify LSMerkle merges, signing the new per-level Merkle
  roots and global root;
* judge disputes raised by clients and punish proven misbehaviour;
* periodically gossip the certified log size of each edge so clients can
  detect omission attacks.
"""

from __future__ import annotations

from typing import Any, Optional

from ..common.config import SystemConfig
from ..common.identifiers import BlockId, NodeId, cloud_id
from ..common.regions import Region
from ..lsmerkle.merge import CloudIndexMirror
from ..messages.kv_messages import (
    MergeRejection,
    MergeRequest,
    MergeResponse,
    RootRefreshRequest,
    RootRefreshResponse,
)
from ..messages.log_messages import (
    BatchCertificateMessage,
    BlockCertifyRequest,
    BlockProofMessage,
    CertifyBatchRequest,
    CertifyRejection,
    DisputeRequest,
    DisputeVerdict,
)
from ..common.errors import MergeProtocolError
from ..core.dispute import PunishmentLedger, judge_dispute
from ..core.gossip import build_gossip, build_gossip_batch
from ..log.proofs import (
    AnyBlockProof,
    build_certify_batch_tree,
    derive_batched_proofs,
    issue_batch_certificate,
    issue_block_proof,
)
from ..sim.environment import Environment


class CloudNode:
    """Trusted certifier, merger, judge, and gossip source."""

    def __init__(
        self,
        env: Environment,
        config: Optional[SystemConfig] = None,
        name: str = "cloud-0",
        region: Optional[Region] = None,
    ) -> None:
        self.env = env
        self.config = config if config is not None else SystemConfig.paper_default()
        self.node_id = cloud_id(name)
        self.region = region if region is not None else self.config.placement.cloud_region
        self.ledger = PunishmentLedger(self.config.security.punishment_score)

        #: Certified digests: edge -> block id -> digest.
        self._certified: dict[NodeId, dict[BlockId, str]] = {}
        #: Issued proofs: (edge, block id) -> proof (per-block or batched).
        self._proofs: dict[tuple[NodeId, BlockId], AnyBlockProof] = {}
        #: Digest-level index mirrors used to validate merges.
        self._mirrors: dict[NodeId, CloudIndexMirror] = {}
        #: Clients that receive gossip.
        self._gossip_targets: list[NodeId] = []
        self._gossip_stopper = None

        self.stats = {
            "certifications": 0,
            "certify_conflicts": 0,
            "certify_batches": 0,
            "merges": 0,
            "merge_rejections": 0,
            "disputes": 0,
            "punishments": 0,
            "gossip_messages": 0,
            "gossip_batches": 0,
            "root_refreshes": 0,
        }
        env.attach(self)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def certified_digest(self, edge: NodeId, block_id: BlockId) -> Optional[str]:
        return self._certified.get(edge, {}).get(block_id)

    def certified_log_size(self, edge: NodeId) -> int:
        return len(self._certified.get(edge, {}))

    def proof_for(self, edge: NodeId, block_id: BlockId) -> Optional[AnyBlockProof]:
        return self._proofs.get((edge, block_id))

    def mirror_for(self, edge: NodeId) -> CloudIndexMirror:
        if edge not in self._mirrors:
            self._mirrors[edge] = CloudIndexMirror(
                edge=edge,
                config=self.config.lsmerkle,
                page_capacity=self.config.logging.block_size,
            )
        return self._mirrors[edge]

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def register_gossip_target(self, client: NodeId) -> None:
        if client not in self._gossip_targets:
            self._gossip_targets.append(client)

    def start_gossip(self) -> None:
        """Begin periodic gossip to registered clients."""

        if self._gossip_stopper is not None:
            return
        interval = self.config.security.gossip_interval_s
        self._gossip_stopper = self.env.schedule_periodic(
            interval, self._emit_gossip, "cloud-gossip"
        )

    def stop_gossip(self) -> None:
        if self._gossip_stopper is not None:
            self._gossip_stopper()
            self._gossip_stopper = None

    def _emit_gossip(self) -> None:
        now = self.env.now()
        if self.config.security.gossip_batch:
            if not self._certified:
                return
            # One signature covers every edge's certified log size; each
            # client receives a single message per interval.
            message = build_gossip_batch(
                self.env.registry,
                self.node_id,
                {edge: len(blocks) for edge, blocks in self._certified.items()},
                now,
            )
            self.stats["gossip_batches"] += 1
            for client in self._gossip_targets:
                self.env.send(self.node_id, client, message)
                self.stats["gossip_messages"] += 1
            return
        for edge, blocks in self._certified.items():
            message = build_gossip(
                self.env.registry, self.node_id, edge, len(blocks), now
            )
            for client in self._gossip_targets:
                self.env.send(self.node_id, client, message)
                self.stats["gossip_messages"] += 1

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, sender: NodeId, message: Any) -> None:
        if isinstance(message, BlockCertifyRequest):
            self._handle_certify(sender, message)
        elif isinstance(message, CertifyBatchRequest):
            self._handle_certify_batch(sender, message)
        elif isinstance(message, MergeRequest):
            self._handle_merge(sender, message)
        elif isinstance(message, RootRefreshRequest):
            self._handle_root_refresh(sender, message)
        elif isinstance(message, DisputeRequest):
            self._handle_dispute(sender, message)
        # Unknown messages are ignored (the cloud is conservative).

    # -------------------------------------------------------- certification
    def _handle_certify(self, sender: NodeId, request: BlockCertifyRequest) -> None:
        params = self.env.params
        self.env.charge(params.certification_cost())

        statement = request.statement
        if statement.edge != sender or not self.env.registry.verify(
            request.signature, statement
        ):
            # Unsigned or mis-attributed requests are dropped.
            return

        edge_digests = self._certified.setdefault(statement.edge, {})
        existing = edge_digests.get(statement.block_id)
        if existing is None:
            edge_digests[statement.block_id] = statement.block_digest
            proof = issue_block_proof(
                registry=self.env.registry,
                cloud=self.node_id,
                edge=statement.edge,
                block_id=statement.block_id,
                block_digest=statement.block_digest,
                certified_at=self.env.now(),
            )
            self._proofs[(statement.edge, statement.block_id)] = proof
            self.stats["certifications"] += 1
            self.env.send(self.node_id, sender, BlockProofMessage(proof=proof))
        elif existing == statement.block_digest:
            # Idempotent retry: resend the proof already issued.
            proof = self._proofs[(statement.edge, statement.block_id)]
            self.env.send(self.node_id, sender, BlockProofMessage(proof=proof))
        else:
            # Two different digests for the same block id: malicious.
            self.stats["certify_conflicts"] += 1
            self._punish(
                statement.edge,
                reason="attempted to certify two different digests for block "
                f"{statement.block_id}",
                block_id=statement.block_id,
            )
            rejection = CertifyRejection(
                cloud=self.node_id,
                edge=statement.edge,
                block_id=statement.block_id,
                existing_digest=existing,
                offending_digest=statement.block_digest,
                reason="conflicting digest for an already certified block id",
            )
            self.env.send(self.node_id, sender, rejection)

    def _handle_certify_batch(
        self, sender: NodeId, request: CertifyBatchRequest
    ) -> None:
        """Certify a whole batch of digests under one signature each way.

        The edge's signature over the batch statement is verified once; every
        non-conflicting item is recorded exactly as the single-block path
        would record it, and one :class:`BatchCertificate` over the Merkle
        root of the accepted ``(block id, digest)`` pairs replaces N signed
        block proofs.  Conflicting items (a second digest for an already
        certified block id) are punished and rejected individually without
        sinking the rest of the batch.
        """

        params = self.env.params
        statement = request.statement
        self.env.charge(params.batch_certification_cost(len(statement.items)))

        if statement.edge != sender or not self.env.registry.verify(
            request.signature, statement
        ):
            # Unsigned or mis-attributed requests are dropped.
            return
        if not statement.items:
            return

        edge_digests = self._certified.setdefault(statement.edge, {})
        accepted: list[tuple[BlockId, str]] = []
        for item in statement.items:
            if item.edge != statement.edge:
                # An item smuggled in for another edge: drop it (the batch
                # signature only attests the sending edge's own blocks).
                continue
            existing = edge_digests.get(item.block_id)
            if existing is None:
                edge_digests[item.block_id] = item.block_digest
                self.stats["certifications"] += 1
                accepted.append((item.block_id, item.block_digest))
            elif existing == item.block_digest:
                # Idempotent retry: re-certify under the new batch root.
                accepted.append((item.block_id, item.block_digest))
            else:
                self.stats["certify_conflicts"] += 1
                self._punish(
                    statement.edge,
                    reason="attempted to certify two different digests for "
                    f"block {item.block_id}",
                    block_id=item.block_id,
                )
                self.env.send(
                    self.node_id,
                    sender,
                    CertifyRejection(
                        cloud=self.node_id,
                        edge=statement.edge,
                        block_id=item.block_id,
                        existing_digest=existing,
                        offending_digest=item.block_digest,
                        reason="conflicting digest for an already certified "
                        "block id",
                    ),
                )
        if not accepted:
            return

        blocks = tuple(accepted)
        tree = build_certify_batch_tree(blocks)
        certificate = issue_batch_certificate(
            registry=self.env.registry,
            cloud=self.node_id,
            edge=statement.edge,
            batch_root=tree.root,
            num_blocks=len(blocks),
            certified_at=self.env.now(),
        )
        # Keep a per-block proof for the dispute path (proof_for), derived
        # from the tree already built above (the edge rebuilds its own).
        for proof in derive_batched_proofs(certificate, blocks, tree=tree):
            self._proofs[(statement.edge, proof.block_id)] = proof
        self.stats["certify_batches"] += 1
        self.env.send(
            self.node_id,
            sender,
            BatchCertificateMessage(certificate=certificate, blocks=blocks),
        )

    # ---------------------------------------------------------------- merges
    def _handle_merge(self, sender: NodeId, request: MergeRequest) -> None:
        params = self.env.params
        proposal = request.proposal
        records_in = sum(block.num_entries for block in proposal.source_blocks)
        records_in += sum(page.num_records for page in proposal.source_pages)
        records_in += sum(page.num_records for page in proposal.target_pages)
        self.env.charge(
            params.request_overhead_seconds
            + params.verify_seconds
            + params.merge_seconds_per_entry * records_in
            + params.sign_seconds
        )

        if proposal.edge != sender:
            return
        mirror = self.mirror_for(proposal.edge)
        certified = self._certified.get(proposal.edge, {})
        try:
            outcome = mirror.execute_merge(
                proposal=proposal,
                certified_digests=certified,
                registry=self.env.registry,
                cloud=self.node_id,
                now=self.env.now(),
            )
        except MergeProtocolError as exc:
            self.stats["merge_rejections"] += 1
            self._punish(
                proposal.edge,
                reason=f"invalid merge proposal: {exc}",
                block_id=None,
            )
            self.env.send(
                self.node_id,
                sender,
                MergeRejection(
                    cloud=self.node_id,
                    edge=proposal.edge,
                    level_index=proposal.level_index,
                    reason=str(exc),
                ),
            )
            return
        self.stats["merges"] += 1
        self.env.send(
            self.node_id, sender, MergeResponse(cloud=self.node_id, outcome=outcome)
        )

    def _handle_root_refresh(self, sender: NodeId, request: RootRefreshRequest) -> None:
        if request.edge != sender:
            return
        self.env.charge(self.env.params.sign_seconds)
        mirror = self.mirror_for(request.edge)
        signed_root = mirror.sign_current_root(
            self.env.registry, self.node_id, self.env.now()
        )
        self.stats["root_refreshes"] += 1
        self.env.send(
            self.node_id,
            sender,
            RootRefreshResponse(
                cloud=self.node_id, edge=request.edge, signed_root=signed_root
            ),
        )

    # -------------------------------------------------------------- disputes
    def _handle_dispute(self, sender: NodeId, dispute: DisputeRequest) -> None:
        params = self.env.params
        self.env.charge(params.request_overhead_seconds + 2 * params.verify_seconds)
        self.stats["disputes"] += 1

        certified = self.certified_digest(dispute.edge, dispute.block_id)
        judgement = judge_dispute(
            dispute=dispute,
            certified_digest=certified,
            registry=self.env.registry,
            certified_log_size=self.certified_log_size(dispute.edge),
        )
        if judgement.edge_punished:
            self._punish(
                dispute.edge,
                reason=judgement.reason,
                block_id=dispute.block_id,
                reported_by=dispute.client,
            )
        verdict = DisputeVerdict(
            cloud=self.node_id,
            client=dispute.client,
            edge=dispute.edge,
            block_id=dispute.block_id,
            edge_punished=judgement.edge_punished,
            reason=judgement.reason,
            certified_digest=judgement.certified_digest,
            proof=self.proof_for(dispute.edge, dispute.block_id),
        )
        self.env.send(self.node_id, sender, verdict)

    # ------------------------------------------------------------------
    # Punishment
    # ------------------------------------------------------------------
    def _punish(
        self,
        edge: NodeId,
        reason: str,
        block_id: Optional[BlockId],
        reported_by: Optional[NodeId] = None,
    ) -> None:
        self.ledger.punish(
            edge=edge,
            reason=reason,
            recorded_at=self.env.now(),
            block_id=block_id,
            reported_by=reported_by,
        )
        self.stats["punishments"] += 1
