"""The trusted cloud node.

The cloud node never sits in the execution path of client requests.  Its
jobs are (Section III & IV):

* certify block digests (at most one digest per ``(edge, block id)``) —
  flagging edge nodes that try to certify two different digests;
* execute and certify LSMerkle merges, signing the new per-level Merkle
  roots and global root;
* judge disputes raised by clients and punish proven misbehaviour;
* periodically gossip the certified log size of each edge so clients can
  detect omission attacks.
"""

from __future__ import annotations

from typing import Any, Optional

from ..common.config import ShardingConfig, SystemConfig
from ..common.identifiers import BlockId, NodeId, ShardId, cloud_id
from ..common.regions import Region
from ..lsmerkle.merge import CloudIndexMirror
from ..lsmerkle.mlsm import sign_global_root
from ..messages.kv_messages import (
    MergeRejection,
    MergeRequest,
    MergeResponse,
    RootRefreshRequest,
    RootRefreshResponse,
)
from ..messages.log_messages import (
    BatchCertificateMessage,
    BlockCertifyRequest,
    BlockProofMessage,
    CertifyBatchRequest,
    CertifyBatchStatement,
    CertifyRejection,
    CertifyWindowRequest,
    DisputeRequest,
    DisputeVerdict,
)
from ..messages.shard_messages import (
    HandoffGrantStatement,
    ReplicaLease,
    ReplicaLeaseStatement,
    ReplicaPromotionGrant,
    ReplicaPromotionOffer,
    ReplicaPromotionOrder,
    ReplicaShipmentAck,
    ShardDispute,
    ShardDisputeVerdict,
    ShardHandoffCertificate,
    ShardHandoffGrant,
    ShardHandoffOrder,
    ShardHandoffRejection,
    ShardHandoffRequest,
    ShardInstallAck,
    ShardMapMessage,
    ShardQuarantineNotice,
    WriterHeartbeat,
)
from ..messages.txn_messages import TxnDispute, TxnDisputeVerdict
from ..common.errors import ConfigurationError, MergeProtocolError
from ..core.certify_engine import ParallelCertifyEngine
from ..core.dispute import (
    PunishmentLedger,
    judge_dispute,
    judge_shard_dispute,
    judge_stale_replica_dispute,
    judge_txn_dispute,
)
from ..core.gossip import build_gossip, build_gossip_batch
from ..log.proofs import (
    AnyBlockProof,
    derive_batched_proofs,
    issue_block_proof,
)
from ..sim.environment import Environment


class CloudNode:
    """Trusted certifier, merger, judge, and gossip source."""

    def __init__(
        self,
        env: Environment,
        config: Optional[SystemConfig] = None,
        name: str = "cloud-0",
        region: Optional[Region] = None,
        certify_workers: int = 1,
    ) -> None:
        self.env = env
        self.config = config if config is not None else SystemConfig.paper_default()
        self.node_id = cloud_id(name)
        self.region = region if region is not None else self.config.placement.cloud_region
        self.obs = env.ensure_observability(self.config.observability)
        self._metrics = (
            self.obs.registry_for(str(self.node_id)) if self.obs is not None else None
        )
        self._obs_tracer = self.obs.tracer if self.obs is not None else None
        self.ledger = PunishmentLedger(self.config.security.punishment_score)
        #: Crypto engine behind the batch-certify path.  The simulated
        #: message handler feeds it windows of one (the event loop is
        #: deterministic and single-threaded); real deployments and the
        #: pipelined benchmarks call :meth:`certify_batch_window` with whole
        #: windows and may run it with ``certify_workers > 1``.
        self.certify_engine = ParallelCertifyEngine(
            registry=env.registry, cloud=self.node_id, workers=certify_workers
        )

        #: Certified digests: edge -> block id -> digest.
        self._certified: dict[NodeId, dict[BlockId, str]] = {}
        #: Issued proofs: (edge, block id) -> proof (per-block or batched).
        self._proofs: dict[tuple[NodeId, BlockId], AnyBlockProof] = {}
        #: Lazily derivable dispute proofs: (edge, block id) -> the batch
        #: certificate and ordered block list that can produce the proof on
        #: demand.  The batch-certify hot path stores this instead of
        #: deriving every per-block membership proof eagerly — disputes are
        #: rare, certifications are not.
        self._batch_proof_sources: dict[
            tuple[NodeId, BlockId], tuple[Any, tuple[tuple[BlockId, str], ...]]
        ] = {}
        #: Digest-level index mirrors used to validate merges, one per
        #: (edge, shard) — the shard key is ``None`` for the paper's
        #: single-partition deployment.
        self._mirrors: dict[tuple[NodeId, Optional[ShardId]], CloudIndexMirror] = {}
        #: Clients that receive gossip.
        self._gossip_targets: list[NodeId] = []
        self._gossip_stopper = None

        #: Authoritative shard map (sharded fleets only; see
        #: :meth:`install_shard_map`).
        self.shard_registry = None
        #: Key → shard mapping shared with the fleet (set with the registry).
        self._partitioner = None
        #: Countersigned handoffs: (shard id, map version) -> certificate.
        self._handoff_certificates: dict[
            tuple[ShardId, int], ShardHandoffCertificate
        ] = {}
        #: Handoffs this cloud has ordered and not yet granted: shard -> dest.
        #: An offer is only countersigned against a matching outstanding
        #: order — an owning edge cannot unilaterally dump its shard onto an
        #: arbitrary (or nonexistent) destination.
        self._ordered_handoffs: dict[ShardId, NodeId] = {}
        #: Grants already issued, keyed by the exact offer they answered
        #: ``(shard id, source, dest, state digest)``.  A retransmitted
        #: offer (its grant was lost on the WAN) is answered with the stored
        #: grant instead of tripping the ownership check — ownership already
        #: moved when the first grant was cut.
        self._granted_offers: dict[
            tuple[ShardId, NodeId, NodeId, str], ShardHandoffGrant
        ] = {}
        #: Install acks already counted: (dest, shard id, state digest).
        #: Duplicate deliveries must not inflate ``shard_installs``.
        self._install_acks_seen: set[tuple[NodeId, ShardId, str]] = set()
        #: Replica groups: when any shard is replicated the cloud tracks
        #: liveness (last message time per node), per-replica shipping
        #: watermarks (the freshness record promotion picks by), the expiry
        #: of every serving lease it issued, quarantine notices, and which
        #: promotions are in flight (shard -> ordered destination replica).
        self._last_seen: dict[NodeId, float] = {}
        self._replica_acks: dict[tuple[ShardId, NodeId], int] = {}
        self._issued_lease_expiry: dict[tuple[ShardId, NodeId], float] = {}
        self._quarantined_shards: set[ShardId] = set()
        self._promotions_inflight: dict[ShardId, NodeId] = {}
        #: Promotion grants already countersigned, keyed by the exact offer
        #: they answered (shard id, replica, state digest) — duplicate
        #: offers are answered with the stored grant, like handoff regrants.
        self._promotion_grants: dict[
            tuple[ShardId, NodeId, str], ReplicaPromotionGrant
        ] = {}
        self._replication_stopper = None
        #: Executed merge outcomes keyed by the proposal's content
        #: fingerprint.  A duplicated (at-least-once delivered) proposal is
        #: answered with the stored response: re-executing it against the
        #: already-advanced mirror would look like an invalid proposal and
        #: punish an honest edge for a network artifact.
        self._merge_responses: dict[tuple, MergeResponse] = {}

        stats_init = {
            "certifications": 0,
            "certify_conflicts": 0,
            "certify_batches": 0,
            "merges": 0,
            "merge_rejections": 0,
            "disputes": 0,
            "punishments": 0,
            "gossip_messages": 0,
            "gossip_batches": 0,
            "root_refreshes": 0,
            "shard_maps_published": 0,
            "shard_handoffs_ordered": 0,
            "shard_handoffs_granted": 0,
            "shard_handoffs_rejected": 0,
            "shard_installs": 0,
            "shard_disputes": 0,
            "replica_leases_issued": 0,
            "shard_failovers_started": 0,
            "replica_promotions": 0,
            "promotion_offers_rejected": 0,
            "shard_quarantine_notices": 0,
        }
        self.stats = self._make_stats(stats_init)
        env.attach(self)

    def _make_stats(self, initial: dict) -> dict:
        """The node's stat surface: a plain dict by default, a registry-mirrored
        :class:`~repro.obs.metrics.StatsDict` when observability is on."""

        if self._metrics is None:
            return dict(initial)
        from ..obs.metrics import StatsDict

        return StatsDict(self._metrics, initial)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def certified_digest(self, edge: NodeId, block_id: BlockId) -> Optional[str]:
        return self._certified.get(edge, {}).get(block_id)

    def certified_log_size(self, edge: NodeId) -> int:
        return len(self._certified.get(edge, {}))

    def proof_for(self, edge: NodeId, block_id: BlockId) -> Optional[AnyBlockProof]:
        proof = self._proofs.get((edge, block_id))
        if proof is not None:
            return proof
        source = self._batch_proof_sources.get((edge, block_id))
        if source is None:
            return None
        # Dispute path: derive the batch-anchored proof on first demand and
        # memoize it (the hot certify path only recorded the certificate).
        certificate, blocks = source
        for derived in derive_batched_proofs(certificate, blocks):
            key = (edge, derived.block_id)
            if key not in self._proofs:
                self._proofs[key] = derived
        return self._proofs.get((edge, block_id))

    def mirror_for(
        self, edge: NodeId, shard_id: Optional[ShardId] = None
    ) -> CloudIndexMirror:
        key = (edge, shard_id)
        if key not in self._mirrors:
            self._mirrors[key] = CloudIndexMirror(
                edge=edge,
                config=self.config.lsmerkle,
                page_capacity=self.config.logging.block_size,
            )
        return self._mirrors[key]

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def register_gossip_target(self, client: NodeId) -> None:
        if client not in self._gossip_targets:
            self._gossip_targets.append(client)

    def start_gossip(self) -> None:
        """Begin periodic gossip to registered clients."""

        if self._gossip_stopper is not None:
            return
        interval = self.config.security.gossip_interval_s
        self._gossip_stopper = self.env.schedule_periodic(
            interval, self._emit_gossip, "cloud-gossip"
        )

    def stop_gossip(self) -> None:
        if self._gossip_stopper is not None:
            self._gossip_stopper()
            self._gossip_stopper = None

    def _emit_gossip(self) -> None:
        now = self.env.now()
        if self.shard_registry is not None and self._gossip_targets:
            # Shard-membership gossip rides the same interval: one signed
            # map snapshot per tick keeps every client's ownership view at
            # most one gossip interval stale.
            map_message = self.shard_registry.sign(self.env.registry, self.node_id, now)
            self.stats["shard_maps_published"] += 1
            for client in self._gossip_targets:
                self.env.send(self.node_id, client, map_message)
                self.stats["gossip_messages"] += 1
        if self.config.security.gossip_batch:
            if not self._certified:
                return
            # One signature covers every edge's certified log size; each
            # client receives a single message per interval.
            message = build_gossip_batch(
                self.env.registry,
                self.node_id,
                {edge: len(blocks) for edge, blocks in self._certified.items()},
                now,
            )
            self.stats["gossip_batches"] += 1
            for client in self._gossip_targets:
                self.env.send(self.node_id, client, message)
                self.stats["gossip_messages"] += 1
            return
        for edge, blocks in self._certified.items():
            message = build_gossip(
                self.env.registry, self.node_id, edge, len(blocks), now
            )
            for client in self._gossip_targets:
                self.env.send(self.node_id, client, message)
                self.stats["gossip_messages"] += 1

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, sender: NodeId, message: Any) -> None:
        if self.shard_registry is not None:
            # Liveness for failover detection: *any* message from a node
            # counts as a heartbeat (appending writers certify constantly;
            # the explicit WriterHeartbeat covers idle ones).
            self._last_seen[sender] = self.env.now()
        if isinstance(message, BlockCertifyRequest):
            self._handle_certify(sender, message)
        elif isinstance(message, (CertifyBatchRequest, CertifyWindowRequest)):
            self._handle_certify_batch(sender, message)
        elif isinstance(message, MergeRequest):
            self._handle_merge(sender, message)
        elif isinstance(message, RootRefreshRequest):
            self._handle_root_refresh(sender, message)
        elif isinstance(message, DisputeRequest):
            self._handle_dispute(sender, message)
        elif isinstance(message, ShardHandoffRequest):
            self._handle_shard_handoff_request(sender, message)
        elif isinstance(message, ShardInstallAck):
            self._handle_shard_install_ack(sender, message)
        elif isinstance(message, ReplicaPromotionOffer):
            self._handle_promotion_offer(sender, message)
        elif isinstance(message, ReplicaShipmentAck):
            self._handle_replica_ack(sender, message)
        elif isinstance(message, WriterHeartbeat):
            self._handle_writer_heartbeat(sender, message)
        elif isinstance(message, ShardQuarantineNotice):
            self._handle_quarantine_notice(sender, message)
        elif isinstance(message, ShardDispute):
            self._handle_shard_dispute(sender, message)
        elif isinstance(message, TxnDispute):
            self._handle_txn_dispute(sender, message)
        # Unknown messages are ignored (the cloud is conservative).

    # -------------------------------------------------------- certification
    def _handle_certify(self, sender: NodeId, request: BlockCertifyRequest) -> None:
        tracer = self._obs_tracer
        if tracer is None:
            self._process_certify(sender, request)
            return
        # Parent is the edge's certify.dispatch span (delivery sidecar).
        with tracer.span("certify.cloud", node=str(self.node_id), blocks=1):
            self._process_certify(sender, request)

    def _process_certify(self, sender: NodeId, request: BlockCertifyRequest) -> None:
        params = self.env.params
        cost = params.certification_cost()
        self.env.charge(cost)
        self.stats["certify_cpu_seconds"] = (
            self.stats.get("certify_cpu_seconds", 0.0) + cost
        )

        statement = request.statement
        if statement.edge != sender or not self.env.registry.verify(
            request.signature, statement
        ):
            # Unsigned or mis-attributed requests are dropped.
            return

        edge_digests = self._certified.setdefault(statement.edge, {})
        existing = edge_digests.get(statement.block_id)
        if existing is None:
            edge_digests[statement.block_id] = statement.block_digest
            proof = issue_block_proof(
                registry=self.env.registry,
                cloud=self.node_id,
                edge=statement.edge,
                block_id=statement.block_id,
                block_digest=statement.block_digest,
                certified_at=self.env.now(),
            )
            self._proofs[(statement.edge, statement.block_id)] = proof
            self.stats["certifications"] += 1
            self.env.send(self.node_id, sender, BlockProofMessage(proof=proof))
        elif existing == statement.block_digest:
            # Idempotent retry: resend the proof already issued.
            proof = self._proofs[(statement.edge, statement.block_id)]
            self.env.send(self.node_id, sender, BlockProofMessage(proof=proof))
        else:
            # Two different digests for the same block id: malicious.
            self.stats["certify_conflicts"] += 1
            self._punish(
                statement.edge,
                reason="attempted to certify two different digests for block "
                f"{statement.block_id}",
                block_id=statement.block_id,
            )
            rejection = CertifyRejection(
                cloud=self.node_id,
                edge=statement.edge,
                block_id=statement.block_id,
                existing_digest=existing,
                offending_digest=statement.block_digest,
                reason="conflicting digest for an already certified block id",
            )
            self.env.send(self.node_id, sender, rejection)

    def _handle_certify_batch(
        self, sender: NodeId, request: "CertifyBatchRequest | CertifyWindowRequest"
    ) -> None:
        tracer = self._obs_tracer
        if tracer is None:
            self._process_certify_batch(sender, request)
            return
        if isinstance(request, CertifyWindowRequest):
            num_blocks = request.num_blocks
        else:
            num_blocks = len(request.statement.items)
        with tracer.span("certify.cloud", node=str(self.node_id), blocks=num_blocks):
            self._process_certify_batch(sender, request)

    def _process_certify_batch(
        self, sender: NodeId, request: "CertifyBatchRequest | CertifyWindowRequest"
    ) -> None:
        params = self.env.params
        if isinstance(request, CertifyWindowRequest):
            # One envelope signature to verify, but one certificate to sign
            # per inner batch: charge every signature the window costs.
            cost = params.window_certification_cost(
                len(request.batches), request.num_blocks
            )
        else:
            cost = params.batch_certification_cost(len(request.statement.items))
        self.env.charge(cost)
        self.stats["certify_cpu_seconds"] = (
            self.stats.get("certify_cpu_seconds", 0.0) + cost
        )
        for target, message in self.certify_batch_window(((sender, request),)):
            self.env.send(self.node_id, target, message)

    def certify_batch_window(
        self,
        requests: "tuple[tuple[NodeId, CertifyBatchRequest | CertifyWindowRequest], ...]",
    ) -> list[tuple[NodeId, Any]]:
        """Certify a whole *window* of batch requests: the parallel path.

        Accepts plain :class:`CertifyBatchRequest`\\ s and
        :class:`CertifyWindowRequest` envelopes (several batches under one
        edge signature) interchangeably.  Three phases, preserving
        per-shard conflict ordering throughout:

        1. **Verify (amortized/parallel)** — every request signature in the
           window is checked by the :class:`ParallelCertifyEngine`;
           same-edge requests collapse into one Schnorr batch verification,
           and a window envelope is one signature however many batches it
           carries.
        2. **Order (serial)** — conflict decisions against the certified
           digest map are applied in arrival order, batch by batch:
           whether a digest conflicts depends on what was accepted before
           it, so this phase never runs concurrently.  Conflicting items
           are punished and rejected individually without sinking their
           batch; items smuggled in for another edge are dropped (the
           signature only attests the sending edge's own blocks).
        3. **Sign (parallel)** — one :class:`BatchCertificate` per accepted
           batch (window slots retire independently at the edge), fanned
           out across the engine's workers when it has any.

        Returns the ``(recipient, message)`` responses instead of sending
        them, so the simulated handler, the wall-clock pipeline benchmark,
        and a real deployment shim can all transport them their own way.
        """

        verdicts = self.certify_engine.verify_requests(
            [request for _sender, request in requests]
        )
        batches: list[tuple[NodeId, CertifyBatchStatement]] = []
        for (sender, request), valid in zip(requests, verdicts):
            statement = request.statement
            if (
                statement.edge != sender
                or request.signature.signer != statement.edge
                or not valid
            ):
                # Unsigned or mis-attributed requests are dropped — the
                # signer pin also rejects a valid signature from the *wrong*
                # node riding an honestly-named statement.
                continue
            if isinstance(request, CertifyWindowRequest):
                for batch in statement.batches:
                    if batch.edge == statement.edge and batch.items:
                        batches.append((sender, batch))
            elif statement.items:
                batches.append((sender, statement))
        return self._certify_verified_batches(batches)

    def _certify_verified_batches(
        self, batches: "list[tuple[NodeId, CertifyBatchStatement]]"
    ) -> list[tuple[NodeId, Any]]:
        """Serial conflict ordering + parallel certificate issuance."""

        responses: list[tuple[NodeId, Any]] = []
        jobs: list[tuple[NodeId, NodeId, tuple[tuple[BlockId, str], ...]]] = []
        now = self.env.now()
        for sender, statement in batches:
            edge_digests = self._certified.setdefault(statement.edge, {})
            accepted: list[tuple[BlockId, str]] = []
            for item in statement.items:
                if item.edge != statement.edge:
                    continue
                existing = edge_digests.get(item.block_id)
                if existing is None:
                    edge_digests[item.block_id] = item.block_digest
                    self.stats["certifications"] += 1
                    accepted.append((item.block_id, item.block_digest))
                elif existing == item.block_digest:
                    # Idempotent retry: re-certify under the new batch root.
                    accepted.append((item.block_id, item.block_digest))
                else:
                    self.stats["certify_conflicts"] += 1
                    self._punish(
                        statement.edge,
                        reason="attempted to certify two different digests for "
                        f"block {item.block_id}",
                        block_id=item.block_id,
                    )
                    responses.append(
                        (
                            sender,
                            CertifyRejection(
                                cloud=self.node_id,
                                edge=statement.edge,
                                block_id=item.block_id,
                                existing_digest=existing,
                                offending_digest=item.block_digest,
                                reason="conflicting digest for an already "
                                "certified block id",
                            ),
                        )
                    )
            if accepted:
                jobs.append((sender, statement.edge, tuple(accepted)))

        certificates = self.certify_engine.issue_certificates(
            [(edge, blocks, now) for _sender, edge, blocks in jobs]
        )
        for (sender, edge, blocks), certificate in zip(jobs, certificates):
            # Record the certificate as the lazily derivable dispute
            # evidence for every covered block (proof_for derives per-block
            # membership proofs on demand); the requesting edge rebuilds its
            # own tree from the returned list.
            for block_id, _digest in blocks:
                self._batch_proof_sources[(edge, block_id)] = (certificate, blocks)
            self.stats["certify_batches"] += 1
            responses.append(
                (sender, BatchCertificateMessage(certificate=certificate, blocks=blocks))
            )
        return responses

    # ---------------------------------------------------------------- merges
    def _handle_merge(self, sender: NodeId, request: MergeRequest) -> None:
        tracer = self._obs_tracer
        if tracer is None:
            self._process_merge(sender, request)
            return
        # Parent is the edge's merge.propose span (delivery sidecar).
        with tracer.span(
            "merge.cloud",
            node=str(self.node_id),
            level=request.proposal.level_index,
        ):
            self._process_merge(sender, request)

    def _process_merge(self, sender: NodeId, request: MergeRequest) -> None:
        params = self.env.params
        proposal = request.proposal
        records_in = sum(block.num_entries for block in proposal.source_blocks)
        records_in += sum(page.num_records for page in proposal.source_pages)
        records_in += sum(page.num_records for page in proposal.target_pages)
        self.env.charge(
            params.request_overhead_seconds
            + params.verify_seconds
            + params.merge_seconds_per_entry * records_in
            + params.sign_seconds
        )

        if proposal.edge != sender:
            return
        if proposal.shard_id is not None and self.shard_registry is not None:
            owner = self.shard_registry.owner_of(proposal.shard_id)
            if owner != proposal.edge:
                self.stats["merge_rejections"] += 1
                self.env.send(
                    self.node_id,
                    sender,
                    MergeRejection(
                        cloud=self.node_id,
                        edge=proposal.edge,
                        level_index=proposal.level_index,
                        reason="edge does not own the proposed shard",
                        shard_id=proposal.shard_id,
                    ),
                )
                return
        fingerprint = (
            proposal.edge,
            proposal.shard_id,
            proposal.level_index,
            tuple((block.block_id, block.digest()) for block in proposal.source_blocks),
            tuple(page.digest() for page in proposal.source_pages),
            tuple(page.digest() for page in proposal.target_pages),
        )
        answered = self._merge_responses.get(fingerprint)
        if answered is not None:
            self.stats.setdefault("merge_duplicate_requests", 0)
            self.stats["merge_duplicate_requests"] += 1
            self.env.send(self.node_id, sender, answered)
            return
        mirror = self.mirror_for(proposal.edge, proposal.shard_id)
        certified = self._certified.get(proposal.edge, {})
        try:
            outcome = mirror.execute_merge(
                proposal=proposal,
                certified_digests=certified,
                registry=self.env.registry,
                cloud=self.node_id,
                now=self.env.now(),
            )
        except MergeProtocolError as exc:
            self.stats["merge_rejections"] += 1
            self._punish(
                proposal.edge,
                reason=f"invalid merge proposal: {exc}",
                block_id=None,
            )
            self.env.send(
                self.node_id,
                sender,
                MergeRejection(
                    cloud=self.node_id,
                    edge=proposal.edge,
                    level_index=proposal.level_index,
                    reason=str(exc),
                    shard_id=proposal.shard_id,
                ),
            )
            return
        self.stats["merges"] += 1
        response = MergeResponse(cloud=self.node_id, outcome=outcome)
        self._merge_responses[fingerprint] = response
        self.env.send(self.node_id, sender, response)

    def _handle_root_refresh(self, sender: NodeId, request: RootRefreshRequest) -> None:
        if request.edge != sender:
            return
        if request.shard_id is not None and self.shard_registry is not None:
            # Same ownership pin as merges: a former owner must not obtain
            # fresh-timestamped (empty-mirror) roots it could use to serve
            # verifiable absence proofs for a shard it handed off.
            if self.shard_registry.owner_of(request.shard_id) != request.edge:
                return
        self.env.charge(self.env.params.sign_seconds)
        mirror = self.mirror_for(request.edge, request.shard_id)
        signed_root = mirror.sign_current_root(
            self.env.registry, self.node_id, self.env.now()
        )
        self.stats["root_refreshes"] += 1
        self.env.send(
            self.node_id,
            sender,
            RootRefreshResponse(
                cloud=self.node_id,
                edge=request.edge,
                signed_root=signed_root,
                shard_id=request.shard_id,
            ),
        )

    # -------------------------------------------------------------- disputes
    def _handle_dispute(self, sender: NodeId, dispute: DisputeRequest) -> None:
        params = self.env.params
        self.env.charge(params.request_overhead_seconds + 2 * params.verify_seconds)
        self.stats["disputes"] += 1

        certified = self.certified_digest(dispute.edge, dispute.block_id)
        judgement = judge_dispute(
            dispute=dispute,
            certified_digest=certified,
            registry=self.env.registry,
            certified_log_size=self.certified_log_size(dispute.edge),
        )
        if judgement.edge_punished:
            self._punish(
                dispute.edge,
                reason=judgement.reason,
                block_id=dispute.block_id,
                reported_by=dispute.client,
            )
        verdict = DisputeVerdict(
            cloud=self.node_id,
            client=dispute.client,
            edge=dispute.edge,
            block_id=dispute.block_id,
            edge_punished=judgement.edge_punished,
            reason=judgement.reason,
            certified_digest=judgement.certified_digest,
            proof=self.proof_for(dispute.edge, dispute.block_id),
        )
        self.env.send(self.node_id, sender, verdict)

    # ------------------------------------------------------------------
    # Shard fleet management (repro.sharding)
    # ------------------------------------------------------------------
    def install_shard_map(
        self,
        num_shards: int,
        partitioner_name: str,
        assignments: dict[ShardId, NodeId],
        key_space: Optional[int] = None,
        replicas: Optional[dict[ShardId, tuple[NodeId, ...]]] = None,
    ) -> ShardMapMessage:
        """Become the shard-map authority for a fleet; returns the signed map.

        Called once at fleet construction.  Subsequent ownership changes go
        through the certified handoff protocol, which bumps the map version
        and republishes.  ``replicas`` names each shard's read replicas
        (``replication_factor > 1`` fleets); any replicated shard starts the
        cloud's lease/failover tick.
        """

        from ..sharding.partitioner import make_partitioner
        from ..sharding.shard_map import ShardRegistry

        if self.shard_registry is not None:
            raise ConfigurationError("shard map already installed")
        now = self.env.now()
        self.shard_registry = ShardRegistry(
            num_shards=num_shards,
            partitioner=partitioner_name,
            assignments=assignments,
            now=now,
            replicas=replicas,
        )
        if key_space is not None:
            self._partitioner = make_partitioner(
                partitioner_name, num_shards, key_space=key_space
            )
        else:
            self._partitioner = make_partitioner(partitioner_name, num_shards)
        self.stats["shard_maps_published"] += 1
        self._start_replication()
        return self.shard_registry.sign(self.env.registry, self.node_id, now)

    def current_shard_map(self) -> ShardMapMessage:
        """The current map as a cloud-signed snapshot."""

        if self.shard_registry is None:
            raise ConfigurationError("no shard map installed")
        return self.shard_registry.sign(
            self.env.registry, self.node_id, self.env.now()
        )

    def request_shard_handoff(self, shard_id: ShardId, dest: NodeId) -> None:
        """Order the current owner to migrate *shard_id* to *dest*."""

        if self.shard_registry is None:
            raise ConfigurationError("no shard map installed")
        source = self.shard_registry.owner_of(shard_id)
        if source is None:
            raise ConfigurationError(f"shard {shard_id} has no owner")
        if source == dest:
            return
        self._ordered_handoffs[shard_id] = dest
        self.stats["shard_handoffs_ordered"] += 1
        self.env.send(
            self.node_id,
            source,
            ShardHandoffOrder(
                cloud=self.node_id, shard_id=shard_id, source=source, dest=dest
            ),
        )

    def _reject_handoff(self, sender: NodeId, request: ShardHandoffRequest, reason: str) -> None:
        self.stats["shard_handoffs_rejected"] += 1
        self.env.send(
            self.node_id,
            sender,
            ShardHandoffRejection(
                cloud=self.node_id,
                edge=request.edge,
                shard_id=request.shard_id,
                reason=reason,
            ),
        )

    def _handle_shard_handoff_request(
        self, sender: NodeId, request: ShardHandoffRequest
    ) -> None:
        """Verify a handoff offer against certified state and countersign it.

        The offer is data-free (digests only): each listed block must match
        the digest this cloud certified for the source edge, and the state
        digest must match what the cloud recomputes from its own digest
        mirror of the shard's index.  The cloud cannot verify *completeness*
        of the listed prefix (it does not know which certified blocks carry
        which shard's keys) — an omitted block surfaces later exactly like
        any other omission, through gossip-backed client disputes.
        """

        from ..sharding.handoff import shard_state_digest

        params = self.env.params
        statement = request.statement
        self.env.charge(params.handoff_countersign_cost(len(statement.blocks)))
        if self.shard_registry is None:
            return
        if statement.edge != sender or not self.env.registry.verify(
            request.signature, statement
        ):
            return
        shard_id = statement.shard_id
        granted = self._granted_offers.get(
            (shard_id, statement.edge, statement.dest, statement.state_digest)
        )
        if granted is not None:
            # The offer was already countersigned and the grant (or its
            # delivery) was lost: ownership has moved, so falling through
            # to the ownership check would misread this retransmission as a
            # stale owner's offer.  Re-send the stored grant verbatim — the
            # source absorbs duplicate grants idempotently.
            self.stats.setdefault("shard_handoff_regrants", 0)
            self.stats["shard_handoff_regrants"] += 1
            self.env.send(self.node_id, sender, granted)
            return
        if self.shard_registry.owner_of(shard_id) != statement.edge:
            self._reject_handoff(sender, request, "offering edge does not own the shard")
            return
        if self._ordered_handoffs.get(shard_id) != statement.dest:
            self._reject_handoff(
                sender,
                request,
                "no outstanding handoff order for this shard and destination",
            )
            return

        certified = self._certified.get(statement.edge, {})
        for block_id, digest in statement.blocks:
            existing = certified.get(block_id)
            if existing is None:
                self._reject_handoff(
                    sender, request, f"block {block_id} was never certified"
                )
                return
            if existing != digest:
                # The source signed a digest that contradicts what it had
                # certified: a provable lie, punished directly.
                self._punish(
                    statement.edge,
                    reason="handoff offer lists a digest that differs from the "
                    f"certified one for block {block_id}",
                    block_id=block_id,
                )
                self._reject_handoff(sender, request, "digest mismatch in offer")
                return

        mirror = self.mirror_for(statement.edge, shard_id)
        expected_digest = shard_state_digest(
            shard_id, mirror.level_roots(), statement.blocks
        )
        if expected_digest != statement.state_digest:
            self._punish(
                statement.edge,
                reason="handoff offer's state digest differs from the cloud's "
                f"mirror of shard {shard_id}",
                block_id=None,
            )
            self._reject_handoff(sender, request, "state digest mismatch")
            return

        # Reassign ownership and move the mirror to the destination edge.
        now = self.env.now()
        dest = statement.dest
        new_version = self.shard_registry.reassign(shard_id, dest, now)
        # The destination's mirror adopts the page digests but NOT the
        # source's merged_block_ids: block ids are per-edge, so the source's
        # consumed ids would collide with the destination's own future
        # blocks and permanently reject its level-0 merges.  Replay of the
        # source's blocks into a destination merge is impossible anyway —
        # they are certified under the source's name, not the destination's.
        dest_mirror = CloudIndexMirror(
            edge=dest,
            config=self.config.lsmerkle,
            page_capacity=self.config.logging.block_size,
            level_page_digests=[list(level) for level in mirror.level_page_digests],
            version=mirror.version + 1,
        )
        self._mirrors[(dest, shard_id)] = dest_mirror
        self._mirrors.pop((statement.edge, shard_id), None)
        signed_root = sign_global_root(
            registry=self.env.registry,
            cloud=self.node_id,
            edge=dest,
            level_roots=dest_mirror.level_roots(),
            version=dest_mirror.version,
            timestamp=now,
        )

        grant_statement = HandoffGrantStatement(
            cloud=self.node_id,
            source=statement.edge,
            dest=dest,
            shard_id=shard_id,
            map_version=new_version,
            state_digest=statement.state_digest,
            num_blocks=len(statement.blocks),
            issued_at=now,
        )
        certificate = ShardHandoffCertificate(
            statement=grant_statement,
            signature=self.env.registry.sign(self.node_id, grant_statement),
        )
        self._handoff_certificates[(shard_id, new_version)] = certificate

        self._ordered_handoffs.pop(shard_id, None)
        map_message = self.shard_registry.sign(self.env.registry, self.node_id, now)
        self.stats["shard_handoffs_granted"] += 1
        self.stats["shard_maps_published"] += 1
        grant = ShardHandoffGrant(
            certificate=certificate,
            shard_map=map_message,
            signed_root=signed_root,
        )
        self._granted_offers[
            (shard_id, statement.edge, dest, statement.state_digest)
        ] = grant
        self.env.send(self.node_id, sender, grant)
        # Mid-interval membership change: push the new map immediately to
        # the destination and to every gossip target instead of waiting for
        # the next gossip tick.
        self.env.send(self.node_id, dest, map_message)
        for client in self._gossip_targets:
            self.env.send(self.node_id, client, map_message)
            self.stats["gossip_messages"] += 1

    def handoff_certificate(
        self, shard_id: ShardId, map_version: int
    ) -> Optional[ShardHandoffCertificate]:
        return self._handoff_certificates.get((shard_id, map_version))

    def _handle_shard_install_ack(self, sender: NodeId, ack: ShardInstallAck) -> None:
        if ack.dest != sender:
            return
        key = (sender, ack.shard_id, ack.state_digest)
        if key in self._install_acks_seen:
            # Duplicate delivery (the destination re-acks retransmitted
            # transfers): counting it again would inflate the install stat.
            self.stats.setdefault("shard_install_ack_duplicates", 0)
            self.stats["shard_install_ack_duplicates"] += 1
            return
        self._install_acks_seen.add(key)
        self.stats["shard_installs"] += 1

    # ------------------------------------------------------------------
    # Replica groups: leases, liveness, and certified failover
    # ------------------------------------------------------------------
    def _sharding_config(self) -> ShardingConfig:
        return (
            self.config.sharding
            if self.config.sharding is not None
            else ShardingConfig()
        )

    def add_replica(self, shard_id: ShardId, replica: NodeId) -> ShardMapMessage:
        """Bootstrap *replica* as a read replica of *shard_id*.

        Data-free like every membership change: the new member installs
        state only from the writer's certified shipments (its first ack is
        the ``-1`` watermark, which requests the full certified prefix).
        Returns the republished signed map.
        """

        if self.shard_registry is None:
            raise ConfigurationError("no shard map installed")
        owner = self.shard_registry.owner_of(shard_id)
        if owner is None:
            raise ConfigurationError(f"shard {shard_id} has no owner")
        if replica == owner:
            raise ConfigurationError("a shard's writer cannot be its replica")
        current = self.shard_registry.replicas_of(shard_id)
        if replica in current:
            return self.current_shard_map()
        now = self.env.now()
        self.shard_registry.set_replicas(shard_id, current + (replica,), now)
        map_message = self.shard_registry.sign(self.env.registry, self.node_id, now)
        self.stats["shard_maps_published"] += 1
        self.env.send(self.node_id, owner, map_message)
        self.env.send(self.node_id, replica, map_message)
        for client in self._gossip_targets:
            self.env.send(self.node_id, client, map_message)
            self.stats["gossip_messages"] += 1
        self._start_replication()
        return map_message

    def _start_replication(self) -> None:
        """Start the lease/failover tick once any shard is replicated.

        Idempotent, and a no-op for ``replication_factor=1`` fleets: the
        unreplicated deployment runs byte-identically to the historical
        one.  The tick runs at the gossip interval but never slower than
        half the lease duration, so honest leases are renewed before they
        lapse; an immediate first tick issues the fleet's initial leases.
        """

        if self._replication_stopper is not None:
            return
        if self.shard_registry is None or not self.shard_registry.replicated_shards():
            return
        interval = min(
            self.config.security.gossip_interval_s,
            self._sharding_config().replica_lease_s / 2.0,
        )
        self._replication_stopper = self.env.schedule_periodic(
            interval, self._replication_tick, "cloud-replication"
        )
        self.env.schedule(0.0, self._replication_tick, "cloud-replication-start")

    def _replication_tick(self) -> None:
        """Renew serving leases and detect lost writers.

        A writer is *suspect* when its shard was quarantined by durable
        recovery or when it has been silent past ``failover_timeout_s``.
        Suspicion withholds the writer's lease renewal; promotion of the
        freshest replica starts only once the writer's last issued lease
        has expired (immediately for quarantine — a quarantined partition
        refuses all service, so no two-writers window is possible).
        """

        registry = self.shard_registry
        if registry is None:
            return
        now = self.env.now()
        cfg = self._sharding_config()
        for shard_id in registry.replicated_shards():
            writer = registry.owner_of(shard_id)
            replicas = registry.replicas_of(shard_id)
            if writer is None or not replicas:
                continue
            inflight = self._promotions_inflight.get(shard_id)
            quarantined = shard_id in self._quarantined_shards
            last = self._last_seen.setdefault(writer, now)
            suspect = (
                inflight is not None
                or quarantined
                or now - last > cfg.failover_timeout_s
            )
            for node in (writer, *replicas):
                if node == writer and suspect:
                    continue
                self._issue_lease(shard_id, node, now, cfg.replica_lease_s)
            if inflight is not None:
                # The order (or the offer/grant behind it) may have been
                # lost: re-order every tick.  Offers are idempotent and a
                # duplicate offer is answered with the stored grant.
                self._send_promotion_order(shard_id, writer, inflight)
                continue
            if not suspect:
                continue
            if not quarantined and now < self._issued_lease_expiry.get(
                (shard_id, writer), 0.0
            ):
                continue
            dest = min(
                replicas,
                key=lambda replica: (
                    -self._replica_acks.get((shard_id, replica), -1),
                    str(replica),
                ),
            )
            self._promotions_inflight[shard_id] = dest
            self.stats["shard_failovers_started"] += 1
            tracer = self._obs_tracer
            if tracer is None:
                self._send_promotion_order(shard_id, writer, dest)
                continue
            with tracer.span(
                "failover.detect",
                node=str(self.node_id),
                shard=str(shard_id),
                writer=str(writer),
            ):
                self._send_promotion_order(shard_id, writer, dest)

    def _issue_lease(
        self, shard_id: ShardId, node: NodeId, now: float, lease_s: float
    ) -> None:
        self.env.charge(self.env.params.sign_seconds)
        statement = ReplicaLeaseStatement(
            cloud=self.node_id,
            replica=node,
            shard_id=shard_id,
            map_version=self.shard_registry.version,
            issued_at=now,
            expires_at=now + lease_s,
        )
        lease = ReplicaLease(
            statement=statement,
            signature=self.env.registry.sign(self.node_id, statement),
        )
        self._issued_lease_expiry[(shard_id, node)] = statement.expires_at
        self.stats["replica_leases_issued"] += 1
        self.env.send(self.node_id, node, lease)

    def _send_promotion_order(
        self, shard_id: ShardId, source: NodeId, dest: NodeId
    ) -> None:
        self.env.charge(self.env.params.request_overhead_seconds)
        self.env.send(
            self.node_id,
            dest,
            ReplicaPromotionOrder(
                cloud=self.node_id, shard_id=shard_id, source=source, dest=dest
            ),
        )

    def _handle_writer_heartbeat(
        self, sender: NodeId, heartbeat: WriterHeartbeat
    ) -> None:
        # Liveness was already recorded in on_message; the heartbeat exists
        # so an idle (not-certifying) writer still counts as alive.
        del heartbeat

    def _handle_replica_ack(self, sender: NodeId, ack: ReplicaShipmentAck) -> None:
        if ack.replica != sender or self.shard_registry is None:
            return
        if sender not in self.shard_registry.replicas_of(ack.shard_id):
            return
        # Last ack wins (not max): a restarted mirror reports ``-1`` until
        # the full certified prefix is re-shipped.
        self._replica_acks[(ack.shard_id, sender)] = ack.watermark

    def _handle_quarantine_notice(
        self, sender: NodeId, notice: ShardQuarantineNotice
    ) -> None:
        if notice.edge != sender or self.shard_registry is None:
            return
        if self.shard_registry.owner_of(notice.shard_id) != sender:
            return
        if not self.shard_registry.replicas_of(notice.shard_id):
            return  # unreplicated quarantine stays the PR 7 dead-end
        self._quarantined_shards.add(notice.shard_id)
        self.stats["shard_quarantine_notices"] += 1

    def _reject_promotion_offer(
        self, sender: NodeId, offer: ReplicaPromotionOffer, reason: str
    ) -> None:
        self.stats["promotion_offers_rejected"] += 1
        self.env.send(
            self.node_id,
            sender,
            ShardHandoffRejection(
                cloud=self.node_id,
                edge=offer.edge,
                shard_id=offer.shard_id,
                reason=reason,
            ),
        )

    def _handle_promotion_offer(
        self, sender: NodeId, offer: ReplicaPromotionOffer
    ) -> None:
        tracer = self._obs_tracer
        if tracer is None:
            self._process_promotion_offer(sender, offer)
            return
        with tracer.span(
            "failover.grant", node=str(self.node_id), shard=str(offer.shard_id)
        ):
            self._process_promotion_offer(sender, offer)

    def _process_promotion_offer(
        self, sender: NodeId, offer: ReplicaPromotionOffer
    ) -> None:
        """Verify a promotion offer against certified state and countersign.

        Like a handoff offer the promotion offer is data-free: every listed
        block must match a digest this cloud certified for the deposed
        writer (or a provenance writer before it), and the level pages must
        hash to the level roots of a root this cloud itself signed.  The
        promoted state is therefore never newer than what certification
        already vouches for — the only possible loss is the deposed
        writer's uncertified backlog, which it could repudiate anyway.
        """

        from ..sharding.handoff import shard_state_digest

        statement = offer.statement
        self.env.charge(self.env.params.handoff_countersign_cost(len(statement.blocks)))
        if self.shard_registry is None:
            return
        if statement.edge != sender or statement.dest != sender:
            return
        if not self.env.registry.verify(offer.signature, statement):
            return
        shard_id = statement.shard_id
        stored = self._promotion_grants.get(
            (shard_id, sender, statement.state_digest)
        )
        if stored is not None:
            self.stats.setdefault("replica_promotion_regrants", 0)
            self.stats["replica_promotion_regrants"] += 1
            self.env.send(self.node_id, sender, stored)
            return
        if self._promotions_inflight.get(shard_id) != sender:
            self._reject_promotion_offer(
                sender, offer, "no outstanding promotion order for this replica"
            )
            return
        source = self.shard_registry.owner_of(shard_id)
        allowed = {source, *self.shard_registry.provenance_of(shard_id)}
        for block_id, digest in statement.blocks:
            if not any(
                self._certified.get(writer, {}).get(block_id) == digest
                for writer in allowed
            ):
                # An honest replica only installs blocks that carry this
                # cloud's certificates, so a non-certified digest in its
                # signed offer is a provable lie.
                self._punish(
                    sender,
                    reason="promotion offer lists a digest that was never "
                    f"certified for block {block_id} of shard {shard_id}",
                    block_id=block_id,
                )
                self._reject_promotion_offer(sender, offer, "uncertified block in offer")
                return

        rebuilt = CloudIndexMirror(
            edge=sender,
            config=self.config.lsmerkle,
            page_capacity=self.config.logging.block_size,
        )
        for level_index, digests in offer.level_page_digests:
            if not 1 <= level_index < len(rebuilt.level_page_digests):
                self._reject_promotion_offer(sender, offer, "level index out of range")
                return
            rebuilt.level_page_digests[level_index] = list(digests)
        signed_root = offer.signed_root
        if signed_root is None:
            if offer.level_page_digests:
                self._reject_promotion_offer(
                    sender, offer, "level pages presented without a signed root"
                )
                return
            base_version = 0
        else:
            if not signed_root.verify(
                self.env.registry, self.node_id
            ) or signed_root.statement.edge not in allowed:
                self._reject_promotion_offer(sender, offer, "signed root invalid")
                return
            if tuple(signed_root.statement.level_roots) != rebuilt.level_roots():
                self._reject_promotion_offer(
                    sender, offer, "level pages do not match the signed root"
                )
                return
            base_version = signed_root.statement.version
        expected_digest = shard_state_digest(
            shard_id, rebuilt.level_roots(), statement.blocks
        )
        if expected_digest != statement.state_digest:
            self._punish(
                sender,
                reason="promotion offer's state digest differs from the one "
                f"recomputed from its own evidence for shard {shard_id}",
                block_id=None,
            )
            self._reject_promotion_offer(sender, offer, "state digest mismatch")
            return

        # Promote: deposed writer joins the provenance chain, the replica
        # leaves the replica set and takes ownership, the shard's mirror is
        # re-keyed to the new writer, and the root is re-signed in its name.
        now = self.env.now()
        rebuilt.version = base_version + 1
        new_version = self.shard_registry.promote_replica(shard_id, sender, now)
        self._mirrors[(sender, shard_id)] = rebuilt
        self._mirrors.pop((source, shard_id), None)
        new_root = None
        if signed_root is not None:
            new_root = sign_global_root(
                registry=self.env.registry,
                cloud=self.node_id,
                edge=sender,
                level_roots=rebuilt.level_roots(),
                version=rebuilt.version,
                timestamp=now,
            )
        grant_statement = HandoffGrantStatement(
            cloud=self.node_id,
            source=source,
            dest=sender,
            shard_id=shard_id,
            map_version=new_version,
            state_digest=statement.state_digest,
            num_blocks=len(statement.blocks),
            issued_at=now,
        )
        certificate = ShardHandoffCertificate(
            statement=grant_statement,
            signature=self.env.registry.sign(self.node_id, grant_statement),
        )
        self._handoff_certificates[(shard_id, new_version)] = certificate
        map_message = self.shard_registry.sign(self.env.registry, self.node_id, now)
        grant = ReplicaPromotionGrant(
            certificate=certificate, shard_map=map_message, signed_root=new_root
        )
        self._promotion_grants[(shard_id, sender, statement.state_digest)] = grant
        self._promotions_inflight.pop(shard_id, None)
        self._quarantined_shards.discard(shard_id)
        self._replica_acks.pop((shard_id, sender), None)
        self.stats["replica_promotions"] += 1
        self.stats["shard_maps_published"] += 1
        self.env.send(self.node_id, sender, grant)
        # The promoted writer serves immediately under a fresh lease (the
        # shard may still have surviving replicas keeping the gate on).
        if self.shard_registry.replicas_of(shard_id):
            self._issue_lease(
                shard_id, sender, now, self._sharding_config().replica_lease_s
            )
        # Mid-interval membership change: push the new map to the whole
        # fleet (the deposed writer's send simply fails while it is down —
        # it catches up from gossip or retirement when it returns).
        recipients = set(self.shard_registry.assignments().values())
        for other in self.shard_registry.replicated_shards():
            recipients.update(self.shard_registry.replicas_of(other))
        recipients.add(source)
        recipients.discard(sender)
        for node in sorted(recipients, key=str):
            self.env.send(self.node_id, node, map_message)
        for client in self._gossip_targets:
            self.env.send(self.node_id, client, map_message)
            self.stats["gossip_messages"] += 1

    def _handle_shard_dispute(self, sender: NodeId, dispute: ShardDispute) -> None:
        params = self.env.params
        self.env.charge(params.request_overhead_seconds + 2 * params.verify_seconds)
        self.stats["shard_disputes"] += 1
        if self.shard_registry is None or dispute.reporter != sender:
            return

        if dispute.kind == "stale-replica-serve":
            judgement = judge_stale_replica_dispute(
                dispute=dispute,
                registry=self.env.registry,
                owner_at=self.shard_registry.owner_at,
                cloud=self.node_id,
                shard_of=self._partitioner.shard_of if self._partitioner else None,
            )
        else:
            granted_digest = None
            if dispute.transfer_statement is not None:
                certificate = self._handoff_certificates.get(
                    (dispute.shard_id, dispute.transfer_statement.map_version)
                )
                granted_digest = certificate.state_digest if certificate else None
            judgement = judge_shard_dispute(
                dispute=dispute,
                registry=self.env.registry,
                owner_at=self.shard_registry.owner_at,
                granted_state_digest=granted_digest,
                shard_of=self._partitioner.shard_of if self._partitioner else None,
            )
        if judgement.punished:
            self._punish(
                dispute.accused,
                reason=judgement.reason,
                block_id=None,
                reported_by=dispute.reporter,
            )
        self.env.send(
            self.node_id,
            sender,
            ShardDisputeVerdict(
                cloud=self.node_id,
                reporter=dispute.reporter,
                accused=dispute.accused,
                shard_id=dispute.shard_id,
                punished=judgement.punished,
                reason=judgement.reason,
            ),
        )

    def _handle_txn_dispute(self, sender: NodeId, dispute: TxnDispute) -> None:
        """Judge a 2PC dispute from its signed artifacts (no server state).

        The accused may be an *edge* (a lying or abort-ignoring
        participant) or a *client* (an equivocating coordinator) — the
        punishment ledger records both.
        """

        params = self.env.params
        self.env.charge(params.request_overhead_seconds + 3 * params.verify_seconds)
        self.stats.setdefault("txn_disputes", 0)
        self.stats["txn_disputes"] += 1
        if dispute.reporter != sender:
            return
        judgement = judge_txn_dispute(dispute, self.env.registry, cloud=self.node_id)
        if judgement.punished:
            self._punish(
                dispute.accused,
                reason=judgement.reason,
                block_id=None,
                reported_by=dispute.reporter,
            )
        verdict = TxnDisputeVerdict(
            cloud=self.node_id,
            reporter=dispute.reporter,
            accused=dispute.accused,
            txn_id=dispute.txn_id,
            punished=judgement.punished,
            reason=judgement.reason,
            kind=dispute.kind,
            decision=dispute.decision,
        )
        self.env.send(self.node_id, sender, verdict)
        if judgement.punished and dispute.kind == "staged-abort-serve":
            # Tell the convicted edge which signed abort convicted it: an
            # edge that applied this transaction under a coordinator-signed
            # *commit* now holds contradictory signed decisions and can
            # counter-dispute the equivocating coordinator.
            self.env.send(self.node_id, dispute.accused, verdict)

    # ------------------------------------------------------------------
    # Punishment
    # ------------------------------------------------------------------
    def _punish(
        self,
        edge: NodeId,
        reason: str,
        block_id: Optional[BlockId],
        reported_by: Optional[NodeId] = None,
    ) -> None:
        self.ledger.punish(
            edge=edge,
            reason=reason,
            recorded_at=self.env.now(),
            block_id=block_id,
            reported_by=reported_by,
        )
        self.stats["punishments"] += 1
