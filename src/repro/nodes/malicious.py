"""Malicious edge-node variants used to exercise detection and punishment.

Each variant overrides one small, explicit hook of the honest
:class:`~repro.nodes.edge.EdgeNode`.  The paper's security argument is that
every lie is eventually detectable; the integration tests drive these nodes
and assert that clients detect the lie, disputes reach the cloud, and the
cloud's punishment ledger records the offender.

Variants
--------
``TamperingReadEdgeNode``
    Serves altered block content on reads (``read-response`` lie, Section
    IV-E case 2).  Detected when the cloud's block proof for the true digest
    reaches the client.
``BrokenPromiseEdgeNode``
    Issues Phase I receipts for the real block but certifies a digest of a
    tampered block that drops client entries (``add-response`` lie, case 1).
``OmittingEdgeNode``
    Denies having blocks it committed (omission attack).  Detected through
    cloud gossip about the certified log size.
``NonCertifyingEdgeNode``
    Never contacts the cloud for certification.  Detected by the client's
    dispute timeout.
``EquivocatingCertifierEdgeNode``
    Attempts to certify two different digests for the same block id.
    Detected directly by the cloud.
``StaleServingEdgeNode``
    After ``freeze()``, answers gets from an old snapshot.  Only detectable
    through the freshness window (Section V-D) — exactly the limitation the
    paper describes.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Optional

from ..common.identifiers import BlockId
from ..log.block import Block, build_block
from ..log.entry import LogEntry
from ..messages.log_messages import BlockCertifyRequest, CertifyStatement
from .edge import EdgeNode


def _tamper_entries(entries: tuple[LogEntry, ...]) -> tuple[LogEntry, ...]:
    """Flip the payload of the first entry (signature left stale on purpose)."""

    if not entries:
        return entries
    first = entries[0]
    tampered_body = replace(first.body, payload=first.body.payload + b"~tampered")
    tampered = LogEntry(body=tampered_body, signature=first.signature)
    return (tampered,) + entries[1:]


class TamperingReadEdgeNode(EdgeNode):
    """Returns modified block content to readers while certifying the original."""

    def __init__(self, *args, target_blocks: Optional[set[BlockId]] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.target_blocks = target_blocks if target_blocks is not None else set()
        self.tamper_all_reads = target_blocks is None

    def _block_for_read(self, block: Block) -> Block:
        if self.tamper_all_reads or block.block_id in self.target_blocks:
            return Block(
                edge=block.edge,
                block_id=block.block_id,
                entries=_tamper_entries(block.entries),
                created_at=block.created_at,
            )
        return block

    def _handle_read(self, sender, request) -> None:  # type: ignore[override]
        # Never hand out the genuine proof alongside tampered content — the
        # digest mismatch would be caught instantly; a smarter liar serves a
        # Phase I response and hopes the client forgets to check later.
        record = self.log.try_get(request.block_id)
        withheld = None
        if record is not None and (
            self.tamper_all_reads or request.block_id in self.target_blocks
        ):
            withheld = record.proof
            record.proof = None
        try:
            super()._handle_read(sender, request)
        finally:
            if record is not None and withheld is not None:
                record.proof = withheld


class BrokenPromiseEdgeNode(EdgeNode):
    """Promises clients one block but certifies a tampered one with the cloud."""

    def _digest_to_certify(self, block: Block) -> str:
        tampered = build_block(
            self.node_id,
            block.block_id,
            _tamper_entries(block.entries),
            block.created_at,
        )
        return tampered.digest()


class OmittingEdgeNode(EdgeNode):
    """Claims requested blocks are unavailable even though they exist."""

    def __init__(self, *args, omit_blocks: Optional[set[BlockId]] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.omit_blocks = omit_blocks if omit_blocks is not None else set()
        self.omit_all = omit_blocks is None

    def _read_record(self, block_id: BlockId):
        if self.omit_all or block_id in self.omit_blocks:
            return None
        return super()._read_record(block_id)


class NonCertifyingEdgeNode(EdgeNode):
    """Phase I commits normally but never asks the cloud to certify anything."""

    def _send_certify_request(self, block: Block, digest: str) -> None:
        self.stats.setdefault("certify_requests_dropped", 0)
        self.stats["certify_requests_dropped"] += 1


class EquivocatingCertifierEdgeNode(EdgeNode):
    """Sends a second, conflicting certification request for every block."""

    def _send_certify_request(self, block: Block, digest: str) -> None:
        super()._send_certify_request(block, digest)
        tampered = build_block(
            self.node_id,
            block.block_id,
            _tamper_entries(block.entries),
            block.created_at,
        )
        statement = CertifyStatement(
            edge=self.node_id,
            block_id=block.block_id,
            block_digest=tampered.digest(),
            num_entries=tampered.num_entries,
        )
        signature = self.env.registry.sign(self.node_id, statement)
        self.env.send(
            self.node_id,
            self.cloud,
            BlockCertifyRequest(statement=statement, signature=signature),
        )


class StaleServingEdgeNode(EdgeNode):
    """After ``freeze()``, serves gets from a snapshot of the index state."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._frozen_index = None
        self._frozen_blocks: Optional[list[BlockId]] = None
        self._frozen_root = None

    def freeze(self) -> None:
        """Capture the current index state; all later gets are served from it."""

        self._frozen_index = copy.deepcopy(self.index)
        self._frozen_blocks = list(self.level_zero_blocks)
        self._frozen_root = self.signed_root

    @property
    def is_frozen(self) -> bool:
        return self._frozen_index is not None

    def _handle_get(self, sender, request) -> None:  # type: ignore[override]
        if not self.is_frozen:
            super()._handle_get(sender, request)
            return
        # Temporarily swap in the frozen state, serve, then swap back.
        live_index, live_blocks, live_root = (
            self.index,
            self.level_zero_blocks,
            self.signed_root,
        )
        self.index = self._frozen_index
        self.level_zero_blocks = self._frozen_blocks
        self.signed_root = self._frozen_root
        try:
            super()._handle_get(sender, request)
        finally:
            self.index, self.level_zero_blocks, self.signed_root = (
                live_index,
                live_blocks,
                live_root,
            )
