"""Node implementations: trusted cloud, untrusted edge, clients, adversaries."""

from .client import Client
from .cloud import CloudNode
from .edge import EdgeNode
from .malicious import (
    BrokenPromiseEdgeNode,
    EquivocatingCertifierEdgeNode,
    NonCertifyingEdgeNode,
    OmittingEdgeNode,
    StaleServingEdgeNode,
    TamperingReadEdgeNode,
)

__all__ = [
    "BrokenPromiseEdgeNode",
    "Client",
    "CloudNode",
    "EdgeNode",
    "EquivocatingCertifierEdgeNode",
    "NonCertifyingEdgeNode",
    "OmittingEdgeNode",
    "StaleServingEdgeNode",
    "TamperingReadEdgeNode",
]
