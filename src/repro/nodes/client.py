"""Authenticated clients: data producers and consumers.

Clients sign every entry they produce, keep the edge node's signed responses
as evidence, verify every proof they receive, and raise disputes with the
cloud when evidence and reality diverge (Algorithm 1 and Section IV-D/E of
the paper).  The client also records when each of its operations reached
Phase I and Phase II commitment — the raw material for the paper's latency,
throughput, and commit-rate figures.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from ..common.config import SystemConfig
from ..common.errors import ProofVerificationError
from ..common.identifiers import (
    NodeId,
    OperationId,
    OperationKind,
    SequenceGenerator,
    client_id,
)
from ..common.regions import Region
from ..core.commit import CommitTracker, OperationRecord
from ..core.gossip import GossipView, verify_gossip
from ..crypto.hashing import digest_value
from ..log.entry import make_entry
from ..log.proofs import CommitPhase
from ..lsmerkle.codec import encode_put
from ..lsmerkle.freshness import FreshnessPolicy
from ..lsmerkle.read_proof import verify_get_proof
from ..messages.kv_messages import GetRequest, GetResponse
from ..messages.log_messages import (
    AppendBatchRequest,
    AppendBatchResponse,
    BlockProofMessage,
    DegradedModeNotice,
    DisputeRequest,
    DisputeVerdict,
    GossipBatchMessage,
    GossipMessage,
    ReadRequest,
    ReadResponse,
)
from ..sim.environment import Environment


class Client:
    """One authenticated client bound to a single edge node (its partition)."""

    def __init__(
        self,
        env: Environment,
        edge: NodeId,
        cloud: NodeId,
        config: Optional[SystemConfig] = None,
        name: str = "client-0",
        region: Optional[Region] = None,
    ) -> None:
        self.env = env
        self.config = config if config is not None else SystemConfig.paper_default()
        self.node_id = client_id(name)
        self.region = region if region is not None else self.config.placement.client_region
        self.edge = edge
        self.cloud = cloud

        self.tracker = CommitTracker()
        self.gossip_view = GossipView(edge=edge)
        self.freshness = FreshnessPolicy(
            window_s=self.config.security.freshness_window_s
        )
        self._operation_seq = SequenceGenerator()
        self._entry_seq = SequenceGenerator()
        #: When ``True``, a write batch acknowledged across several blocks
        #: is tracked cumulatively (per-block receipts; Phase I on full
        #: coverage, Phase II when every block's proof arrives).  ``False``
        #: keeps the paper-exact single-block policy the figures were
        #: measured with.  Shard-aware clients enable it: variable-size
        #: per-shard sub-batches routinely straddle block boundaries.
        self._split_batch_acks = False

        #: Proven or suspected malicious behaviour observed by this client.
        self.malicious_events: list[dict] = []
        #: Verdicts received from the cloud for disputes this client raised.
        self.verdicts: list[DisputeVerdict] = []
        #: Block proofs that arrived before the operation they certify was
        #: Phase I committed locally (possible under message reordering).
        #: Keyed by (edge, block id) — block ids are only unique per edge.
        self._early_proofs: dict[tuple[NodeId, int], Any] = {}
        #: Session consistency (Section V-D alternative): the highest signed
        #: global-root version this client has observed, per root sequence
        #: (one sequence for the single-edge client; one per (edge, shard)
        #: for shard-aware subclasses).  Responses verified against an older
        #: root of the same sequence are rejected as stale.
        self._last_root_versions: dict[Any, int] = {}
        #: Edges currently advertising degraded mode (certification backlog
        #: over their configured bound), with their latest notice.  Purely
        #: advisory backpressure — a caller can consult this to throttle
        #: writes or widen dispute timers during a cloud outage.
        self.degraded_edges: dict[NodeId, DegradedModeNotice] = {}

        self.stats = {
            "writes_issued": 0,
            "reads_issued": 0,
            "gets_issued": 0,
            "entries_sent": 0,
            "disputes_sent": 0,
            "proof_mismatches": 0,
            "verification_failures": 0,
            # Total simulated CPU time this client spent verifying responses
            # and proofs (reported by the Figure 5(d) experiment).
            "verification_seconds": 0.0,
        }
        env.attach(self)

    # ------------------------------------------------------------------
    # Public operation API
    # ------------------------------------------------------------------
    def add_batch(self, payloads: Sequence[bytes]) -> OperationId:
        """Append a batch of opaque entries to the log (Phase I on response)."""

        return self._append(payloads=list(payloads), kind=OperationKind.ADD)

    def add(self, payload: bytes) -> OperationId:
        """Append a single entry (a batch of one)."""

        return self.add_batch([payload])

    def put_batch(self, items: Iterable[tuple[str, bytes]]) -> OperationId:
        """Apply a batch of key-value puts through the LSMerkle index."""

        payloads = [encode_put(key, value) for key, value in items]
        return self._append(payloads=payloads, kind=OperationKind.PUT)

    def put(self, key: str, value: bytes) -> OperationId:
        """Apply a single key-value put."""

        return self.put_batch([(key, value)])

    def read(self, block_id: int, edge: Optional[NodeId] = None) -> OperationId:
        """Read one block of the log by id."""

        target = edge if edge is not None else self.edge
        now = self.env.now()
        operation_id = self._next_operation_id()
        self.tracker.register(
            operation_id, OperationKind.READ, now, block_id=block_id, edge=target
        )
        self.stats["reads_issued"] += 1
        self.env.send(
            self.node_id,
            target,
            ReadRequest(
                requester=self.node_id, operation_id=operation_id, block_id=block_id
            ),
        )
        return operation_id

    def get(self, key: str, edge: Optional[NodeId] = None) -> OperationId:
        """Fetch the most recent value of *key* with an index proof."""

        target = edge if edge is not None else self.edge
        now = self.env.now()
        operation_id = self._next_operation_id()
        record = self.tracker.register(
            operation_id, OperationKind.GET, now, key=key, edge=target
        )
        self._annotate_issue(record)
        self.stats["gets_issued"] += 1
        self.env.send(
            self.node_id,
            target,
            GetRequest(requester=self.node_id, operation_id=operation_id, key=key),
        )
        return operation_id

    def _append(
        self,
        payloads: list[bytes],
        kind: OperationKind,
        edge: Optional[NodeId] = None,
        shard_id: Optional[int] = None,
    ) -> OperationId:
        target = edge if edge is not None else self.edge
        now = self.env.now()
        operation_id = self._next_operation_id()
        entries = tuple(
            make_entry(
                registry=self.env.registry,
                producer=self.node_id,
                sequence=self._entry_seq.next(),
                payload=payload,
                produced_at=now,
            )
            for payload in payloads
        )
        record = self.tracker.register(
            operation_id,
            kind,
            now,
            num_entries=len(entries),
            entry_sequences=tuple(entry.sequence for entry in entries),
            edge=target,
            shard_id=shard_id,
        )
        self._stash_entries(record, entries)
        self._annotate_issue(record)
        self.stats["writes_issued"] += 1
        self.stats["entries_sent"] += len(entries)
        self.env.send(
            self.node_id,
            target,
            AppendBatchRequest(
                requester=self.node_id,
                operation_id=operation_id,
                kind=kind,
                entries=entries,
                request_block=self.config.logging.return_block_on_add,
                shard_id=shard_id,
            ),
        )
        return operation_id

    def _next_operation_id(self) -> OperationId:
        return OperationId(client=self.node_id, sequence=self._operation_seq.next())

    # ------------------------------------------------------------------
    # Multi-edge hooks (overridden by the shard-aware client)
    # ------------------------------------------------------------------
    def _expected_edge(self, record: OperationRecord) -> NodeId:
        """The edge this operation was sent to (and must be answered by)."""

        return record.details.get("edge", self.edge)

    def _annotate_issue(self, record: OperationRecord) -> None:
        """Hook for subclasses to stamp issue-time context on a record."""

    def _stash_entries(self, record: OperationRecord, entries: tuple) -> None:
        """Hook for subclasses that must be able to re-send a write.

        The base client never re-routes, so it does not pin the signed
        entries in the tracker (they would live for the whole run).
        """

    def _accepts_proof(self, proof: Any) -> bool:
        """Whether a block proof may concern this client's operations."""

        return proof.edge == self.edge and proof.cloud == self.cloud

    def _root_version_key(self, record: OperationRecord) -> Any:
        """Which signed-root sequence a response belongs to.

        The single-edge client sees exactly one sequence; shard-aware
        subclasses key it by (edge, shard) so independent shard roots never
        trip the session-consistency check against each other.
        """

        return self._expected_edge(record)

    def _read_provenance(self, record: OperationRecord) -> tuple[NodeId, ...]:
        """Extra writers whose certified blocks may appear in a get proof.

        Empty for the single-edge client.  Shard-aware subclasses return
        the shard's current writer plus its provenance chain when a read is
        served by a replica or a promoted (post-failover) writer — those
        proofs legitimately carry blocks certified under other edges'
        names, each still pinned to its own writer's certificate.
        """

        return ()

    def _block_should_exist(self, record: OperationRecord, block_id: int) -> bool:
        """Whether gossip proves the read block exists at the serving edge."""

        return self.gossip_view.block_should_exist(block_id)

    @property
    def _last_root_version(self) -> int:
        """The observed root version of this client's home edge sequence."""

        return self._last_root_versions.get(self.edge, 0)

    @_last_root_version.setter
    def _last_root_version(self, value: int) -> None:
        self._last_root_versions[self.edge] = value

    # ------------------------------------------------------------------
    # Operation status helpers
    # ------------------------------------------------------------------
    def operation(self, operation_id: OperationId) -> OperationRecord:
        return self.tracker.get(operation_id)

    def phase_of(self, operation_id: OperationId) -> CommitPhase:
        return self.tracker.get(operation_id).phase

    def value_of(self, operation_id: OperationId) -> Optional[bytes]:
        """The value returned by a completed get operation."""

        return self.tracker.get(operation_id).details.get("value")

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, sender: NodeId, message: Any) -> None:
        if isinstance(message, AppendBatchResponse):
            self._handle_append_response(sender, message)
        elif isinstance(message, BlockProofMessage):
            self._handle_block_proof(sender, message)
        elif isinstance(message, ReadResponse):
            self._handle_read_response(sender, message)
        elif isinstance(message, GetResponse):
            self._handle_get_response(sender, message)
        elif isinstance(message, (GossipMessage, GossipBatchMessage)):
            self._handle_gossip(sender, message)
        elif isinstance(message, DisputeVerdict):
            self.verdicts.append(message)
        elif isinstance(message, DegradedModeNotice):
            self._handle_degraded_notice(sender, message)

    def _handle_degraded_notice(
        self, sender: NodeId, notice: DegradedModeNotice
    ) -> None:
        """Track the edge's backpressure signal (advisory, idempotent)."""

        if sender != notice.edge:
            return
        self.stats.setdefault("degraded_notices", 0)
        self.stats["degraded_notices"] += 1
        if notice.degraded:
            self.degraded_edges[notice.edge] = notice
        else:
            self.degraded_edges.pop(notice.edge, None)

    # -------------------------------------------------------------- appends
    def _handle_append_response(
        self, sender: NodeId, response: AppendBatchResponse
    ) -> None:
        params = self.env.params
        self.env.charge(params.verify_seconds)
        if response.operation_id not in self.tracker:
            return
        record = self.tracker.get(response.operation_id)
        now = self.env.now()
        expected_edge = self._expected_edge(record)

        receipt = response.receipt
        if not receipt.verify(self.env.registry) or receipt.edge != expected_edge:
            self._record_suspicion(
                "invalid-receipt", response.block_id, response.operation_id
            )
            self.tracker.mark_failed(response.operation_id, now, "invalid receipt")
            return

        if response.block is not None:
            self.env.charge(params.hash_cost(response.block.wire_size))
            if not receipt.matches_block(response.block):
                self._record_suspicion(
                    "receipt-block-mismatch", response.block_id, response.operation_id
                )
                self.tracker.mark_failed(
                    response.operation_id, now, "receipt does not match block"
                )
                return
            expected = set(record.details.get("entry_sequences", ()))
            present = {
                entry.sequence
                for entry in response.block.entries
                if entry.producer == self.node_id
            }
            newly_acked = expected & present
            if not self._split_batch_acks:
                # Paper-exact policy: the whole batch must land in one block
                # (the evaluation always aligns batch and block size).
                if not expected.issubset(present):
                    self._record_suspicion(
                        "missing-entries", response.block_id, response.operation_id
                    )
                    self.tracker.mark_failed(
                        response.operation_id, now, "entries missing from block"
                    )
                    return
            else:
                if expected and not newly_acked:
                    # The edge acknowledged this operation with a block
                    # holding none of its entries: a broken promise, not a
                    # split batch.
                    self._record_suspicion(
                        "missing-entries", response.block_id, response.operation_id
                    )
                    self.tracker.mark_failed(
                        response.operation_id, now, "entries missing from block"
                    )
                    return
                # A batch larger than the edge's block size (or split across
                # a block boundary by co-batched entries from other clients)
                # is acknowledged one block at a time: track cumulative
                # coverage and the per-block receipts, and only Phase I
                # commit once every entry has been promised in some block.
                acked = record.details.setdefault("acked_sequences", set())
                acked |= newly_acked
                record.details.setdefault("block_receipts", {})[
                    response.block_id
                ] = receipt
                self.tracker.watch_block(response.operation_id, response.block_id)
                if not expected <= acked:
                    self._arm_dispute_timer(response.operation_id)
                    return

        record.details["block_digest"] = receipt.block_digest
        self.tracker.mark_phase_one(
            response.operation_id, now, block_id=response.block_id, receipt=receipt
        )
        block_receipts = record.details.get("block_receipts")
        if block_receipts:
            # Resolve any blocks whose proofs raced ahead of the ack.
            all_resolved = False
            matched_proof = None
            for block_id, block_receipt in block_receipts.items():
                early = self._early_proofs.get((expected_edge, block_id))
                if early is not None and early.block_digest == block_receipt.block_digest:
                    all_resolved = self.tracker.resolve_block(
                        response.operation_id, block_id
                    )
                    matched_proof = early
            if all_resolved and matched_proof is not None:
                self.tracker.mark_phase_two(response.operation_id, now, matched_proof)
                return
        else:
            early = self._early_proofs.get((expected_edge, response.block_id))
            if early is not None and early.block_digest == receipt.block_digest:
                self.tracker.mark_phase_two(response.operation_id, now, early)
                return
        self._arm_dispute_timer(response.operation_id)

    # ---------------------------------------------------------- block proofs
    def _handle_block_proof(self, sender: NodeId, message: BlockProofMessage) -> None:
        params = self.env.params
        self.env.charge(params.verify_seconds)
        proof = message.proof
        # The proof must come from this client's actual cloud node: a
        # self-consistent signature from a node merely *claiming* the cloud
        # role is not Phase II evidence.
        if not self._accepts_proof(proof) or not proof.verify(self.env.registry):
            return
        now = self.env.now()
        self._early_proofs[(proof.edge, proof.block_id)] = proof
        for record in self.tracker.operations_waiting_on_block(proof.block_id):
            if self._expected_edge(record) != proof.edge:
                # Block ids are edge-local: the same id from another edge is
                # a different block entirely.
                continue
            if record.is_write:
                # The digest promised for *this* block: the per-block receipt
                # when the batch spanned several blocks, else the single one.
                block_receipt = record.details.get("block_receipts", {}).get(
                    proof.block_id
                )
                if block_receipt is not None:
                    promised = block_receipt.block_digest
                elif record.receipt is not None and record.block_id == proof.block_id:
                    promised = record.receipt.block_digest
                else:
                    promised = None
                if promised is not None and promised != proof.block_digest:
                    # The edge promised one digest but the cloud certified another.
                    self.stats["proof_mismatches"] += 1
                    self._record_suspicion(
                        "certified-digest-mismatch", proof.block_id, record.operation_id
                    )
                    self._send_dispute(record, kind="missing-proof")
                    continue
                if record.phase is CommitPhase.PENDING:
                    # Partial ack coverage (split batch): some entries have
                    # no receipt yet, so the operation cannot be durably
                    # committed however fast this block's proof arrived.
                    # Resolve the block; Phase II waits for full Phase I.
                    self.tracker.resolve_block(record.operation_id, proof.block_id)
                    continue
                if self.tracker.resolve_block(record.operation_id, proof.block_id):
                    self.tracker.mark_phase_two(record.operation_id, now, proof)
            else:
                served_digest = record.details.get("block_digest")
                if served_digest is not None and served_digest != proof.block_digest:
                    self.stats["proof_mismatches"] += 1
                    self._record_suspicion(
                        "read-content-mismatch", proof.block_id, record.operation_id
                    )
                    self._send_dispute(record, kind="read-mismatch")
                    continue
                if self.tracker.resolve_block(record.operation_id, proof.block_id):
                    self.tracker.mark_phase_two(record.operation_id, now, proof)

    # ---------------------------------------------------------------- reads
    def _handle_read_response(self, sender: NodeId, response: ReadResponse) -> None:
        params = self.env.params
        self.env.charge(params.verify_seconds)
        if response.statement.operation_id not in self.tracker:
            return
        record = self.tracker.get(response.statement.operation_id)
        now = self.env.now()

        statement = response.statement
        if statement.edge != self._expected_edge(record) or not self.env.registry.verify(
            response.signature, statement
        ):
            self.stats["verification_failures"] += 1
            self.tracker.mark_failed(record.operation_id, now, "bad read signature")
            return
        record.details["read_statement"] = statement
        record.details["read_signature"] = response.signature

        if not statement.found:
            if self._block_should_exist(record, statement.block_id):
                # Gossip says the block exists: omission attack.
                self._record_suspicion(
                    "omission", statement.block_id, record.operation_id
                )
                self._send_dispute(record, kind="omission")
            self.tracker.mark_failed(record.operation_id, now, "block not available")
            return

        block = response.block
        if block is None:
            self.tracker.mark_failed(record.operation_id, now, "empty read response")
            return
        self.env.charge(params.hash_cost(block.wire_size))
        recomputed = block.digest()
        if recomputed != statement.block_digest:
            self.stats["verification_failures"] += 1
            self._record_suspicion(
                "read-digest-mismatch", statement.block_id, record.operation_id
            )
            self.tracker.mark_failed(record.operation_id, now, "digest mismatch")
            return

        record.details["block_digest"] = recomputed
        record.details["num_entries"] = block.num_entries
        if (
            response.proof is not None
            and response.proof.cloud == self.cloud
            and response.proof.certifies(block)
        ):
            if response.proof.verify(self.env.registry):
                self.tracker.mark_phase_one(record.operation_id, now, statement.block_id)
                self.tracker.mark_phase_two(record.operation_id, now, response.proof)
                return
        # Phase I read: wait for the block proof, keep the evidence.
        self.tracker.mark_phase_one(record.operation_id, now, statement.block_id)
        self.tracker.watch_block(record.operation_id, statement.block_id)
        self._arm_dispute_timer(record.operation_id)

    # ----------------------------------------------------------------- gets
    def _handle_get_response(self, sender: NodeId, response: GetResponse) -> None:
        params = self.env.params
        if response.statement.operation_id not in self.tracker:
            return
        record = self.tracker.get(response.statement.operation_id)
        now = self.env.now()
        statement = response.statement

        # Verification cost: the paper attributes ~0.19 ms of the best-case
        # edge read to client-side verification (Figure 5d).
        num_proof_items = len(response.proof.level_zero) + len(response.proof.level_pages)
        verification_cost = params.verify_seconds * (
            2 + num_proof_items
        ) + params.hash_cost(response.proof.wire_size)
        self.env.charge(verification_cost)
        self.stats["verification_seconds"] += verification_cost

        expected_edge = self._expected_edge(record)
        if statement.edge != expected_edge or not self.env.registry.verify(
            response.signature, statement
        ):
            self.stats["verification_failures"] += 1
            self.tracker.mark_failed(record.operation_id, now, "bad get signature")
            return
        record.details["get_statement"] = statement
        record.details["get_signature"] = response.signature

        try:
            verified = verify_get_proof(
                registry=self.env.registry,
                cloud=self.cloud,
                edge=expected_edge,
                key=statement.key,
                proof=response.proof,
                now=now,
                freshness_window_s=self.freshness.effective_window(),
                provenance=self._read_provenance(record),
            )
        except ProofVerificationError as exc:
            self.stats["verification_failures"] += 1
            self._record_suspicion("get-proof-invalid", None, record.operation_id)
            self.tracker.mark_failed(record.operation_id, now, str(exc))
            return

        claimed_value = response.value
        derived_value = verified.record.value if verified.record is not None else None
        if verified.found != statement.found or claimed_value != derived_value:
            self.stats["verification_failures"] += 1
            self._record_suspicion("get-value-mismatch", None, record.operation_id)
            self.tracker.mark_failed(
                record.operation_id, now, "returned value disagrees with proof"
            )
            return
        if claimed_value is not None:
            expected_digest = digest_value(claimed_value)
            if statement.value_digest != expected_digest:
                self.stats["verification_failures"] += 1
                self.tracker.mark_failed(
                    record.operation_id, now, "value digest mismatch in statement"
                )
                return

        if verified.root_version is not None:
            version_key = self._root_version_key(record)
            if verified.root_version < self._last_root_versions.get(version_key, 0):
                # Session consistency: the edge served a snapshot older than
                # one this client has already read from.
                self.stats["verification_failures"] += 1
                self._record_suspicion(
                    "session-consistency-violation", None, record.operation_id
                )
                self.tracker.mark_failed(
                    record.operation_id,
                    now,
                    "response verified against an older global root than "
                    "previously observed (session consistency)",
                )
                return
            self._last_root_versions[version_key] = verified.root_version

        record.details["value"] = derived_value
        record.details["found"] = verified.found
        # Global sequence of the proven record (block id × stride + index):
        # lets shard-aware subclasses place a served value relative to a
        # transaction receipt's staged log position.
        record.details["record_sequence"] = (
            verified.record.sequence if verified.record is not None else None
        )
        record.details["root_timestamp"] = verified.root_timestamp
        record.details["root_version"] = verified.root_version
        self.tracker.mark_phase_one(record.operation_id, now)
        if verified.phase is CommitPhase.PHASE_TWO:
            self.tracker.mark_phase_two(record.operation_id, now)
            return
        for block_id in verified.uncertified_block_ids:
            self.tracker.watch_block(record.operation_id, block_id)
        self._arm_dispute_timer(record.operation_id)

    # --------------------------------------------------------------- gossip
    def _handle_gossip(
        self, sender: NodeId, message: "GossipMessage | GossipBatchMessage"
    ) -> None:
        if not verify_gossip(self.env.registry, message, cloud=self.cloud):
            return
        self.gossip_view.update(message)

    # ------------------------------------------------------------------
    # Disputes
    # ------------------------------------------------------------------
    def _arm_dispute_timer(self, operation_id: OperationId) -> None:
        timeout = self.config.security.dispute_timeout_s

        def check() -> None:
            if operation_id not in self.tracker:
                return
            record = self.tracker.get(operation_id)
            if record.phase in (CommitPhase.PHASE_TWO, CommitPhase.FAILED):
                return
            kind = "missing-proof" if record.is_write else "read-mismatch"
            self._record_suspicion("proof-timeout", record.block_id, operation_id)
            self._send_dispute(record, kind=kind)

        self.env.schedule(timeout, check, label=f"{self.node_id}:dispute-timer")

    def _send_dispute(self, record: OperationRecord, kind: str) -> None:
        statement = record.details.get("read_statement")
        signature = record.details.get("read_signature")
        dispute = DisputeRequest(
            client=self.node_id,
            edge=self._expected_edge(record),
            block_id=record.block_id if record.block_id is not None else -1,
            kind=kind,
            receipt=record.receipt,
            read_statement=statement,
            read_signature=signature,
            claimed_digest=record.details.get("block_digest"),
        )
        self.stats["disputes_sent"] += 1
        self.env.send(self.node_id, self.cloud, dispute)

    def _record_suspicion(
        self,
        kind: str,
        block_id: Optional[int],
        operation_id: Optional[OperationId],
    ) -> None:
        self.malicious_events.append(
            {
                "kind": kind,
                "block_id": block_id,
                "operation_id": operation_id,
                "at": self.env.now(),
            }
        )
