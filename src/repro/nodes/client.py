"""Authenticated clients: data producers and consumers.

Clients sign every entry they produce, keep the edge node's signed responses
as evidence, verify every proof they receive, and raise disputes with the
cloud when evidence and reality diverge (Algorithm 1 and Section IV-D/E of
the paper).  The client also records when each of its operations reached
Phase I and Phase II commitment — the raw material for the paper's latency,
throughput, and commit-rate figures.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from ..common.config import SystemConfig
from ..common.errors import ProofVerificationError
from ..common.identifiers import (
    NodeId,
    OperationId,
    OperationKind,
    SequenceGenerator,
    client_id,
)
from ..common.regions import Region
from ..core.commit import CommitTracker, OperationRecord
from ..core.gossip import GossipView, verify_gossip
from ..crypto.hashing import digest_value
from ..log.entry import make_entry
from ..log.proofs import CommitPhase
from ..lsmerkle.codec import encode_put
from ..lsmerkle.freshness import FreshnessPolicy
from ..lsmerkle.read_proof import verify_get_proof
from ..messages.kv_messages import GetRequest, GetResponse
from ..messages.log_messages import (
    AppendBatchRequest,
    AppendBatchResponse,
    BlockProofMessage,
    DisputeRequest,
    DisputeVerdict,
    GossipBatchMessage,
    GossipMessage,
    ReadRequest,
    ReadResponse,
)
from ..sim.environment import Environment


class Client:
    """One authenticated client bound to a single edge node (its partition)."""

    def __init__(
        self,
        env: Environment,
        edge: NodeId,
        cloud: NodeId,
        config: Optional[SystemConfig] = None,
        name: str = "client-0",
        region: Optional[Region] = None,
    ) -> None:
        self.env = env
        self.config = config if config is not None else SystemConfig.paper_default()
        self.node_id = client_id(name)
        self.region = region if region is not None else self.config.placement.client_region
        self.edge = edge
        self.cloud = cloud

        self.tracker = CommitTracker()
        self.gossip_view = GossipView(edge=edge)
        self.freshness = FreshnessPolicy(
            window_s=self.config.security.freshness_window_s
        )
        self._operation_seq = SequenceGenerator()
        self._entry_seq = SequenceGenerator()

        #: Proven or suspected malicious behaviour observed by this client.
        self.malicious_events: list[dict] = []
        #: Verdicts received from the cloud for disputes this client raised.
        self.verdicts: list[DisputeVerdict] = []
        #: Block proofs that arrived before the operation they certify was
        #: Phase I committed locally (possible under message reordering).
        self._early_proofs: dict[int, Any] = {}
        #: Session consistency (Section V-D alternative): the highest signed
        #: global-root version this client has observed.  Responses verified
        #: against an older root are rejected as stale.
        self._last_root_version: int = 0

        self.stats = {
            "writes_issued": 0,
            "reads_issued": 0,
            "gets_issued": 0,
            "entries_sent": 0,
            "disputes_sent": 0,
            "proof_mismatches": 0,
            "verification_failures": 0,
            # Total simulated CPU time this client spent verifying responses
            # and proofs (reported by the Figure 5(d) experiment).
            "verification_seconds": 0.0,
        }
        env.attach(self)

    # ------------------------------------------------------------------
    # Public operation API
    # ------------------------------------------------------------------
    def add_batch(self, payloads: Sequence[bytes]) -> OperationId:
        """Append a batch of opaque entries to the log (Phase I on response)."""

        return self._append(payloads=list(payloads), kind=OperationKind.ADD)

    def add(self, payload: bytes) -> OperationId:
        """Append a single entry (a batch of one)."""

        return self.add_batch([payload])

    def put_batch(self, items: Iterable[tuple[str, bytes]]) -> OperationId:
        """Apply a batch of key-value puts through the LSMerkle index."""

        payloads = [encode_put(key, value) for key, value in items]
        return self._append(payloads=payloads, kind=OperationKind.PUT)

    def put(self, key: str, value: bytes) -> OperationId:
        """Apply a single key-value put."""

        return self.put_batch([(key, value)])

    def read(self, block_id: int) -> OperationId:
        """Read one block of the log by id."""

        now = self.env.now()
        operation_id = self._next_operation_id()
        self.tracker.register(operation_id, OperationKind.READ, now, block_id=block_id)
        self.stats["reads_issued"] += 1
        self.env.send(
            self.node_id,
            self.edge,
            ReadRequest(
                requester=self.node_id, operation_id=operation_id, block_id=block_id
            ),
        )
        return operation_id

    def get(self, key: str) -> OperationId:
        """Fetch the most recent value of *key* with an index proof."""

        now = self.env.now()
        operation_id = self._next_operation_id()
        self.tracker.register(operation_id, OperationKind.GET, now, key=key)
        self.stats["gets_issued"] += 1
        self.env.send(
            self.node_id,
            self.edge,
            GetRequest(requester=self.node_id, operation_id=operation_id, key=key),
        )
        return operation_id

    def _append(self, payloads: list[bytes], kind: OperationKind) -> OperationId:
        now = self.env.now()
        operation_id = self._next_operation_id()
        entries = tuple(
            make_entry(
                registry=self.env.registry,
                producer=self.node_id,
                sequence=self._entry_seq.next(),
                payload=payload,
                produced_at=now,
            )
            for payload in payloads
        )
        self.tracker.register(
            operation_id,
            kind,
            now,
            num_entries=len(entries),
            entry_sequences=tuple(entry.sequence for entry in entries),
        )
        self.stats["writes_issued"] += 1
        self.stats["entries_sent"] += len(entries)
        self.env.send(
            self.node_id,
            self.edge,
            AppendBatchRequest(
                requester=self.node_id,
                operation_id=operation_id,
                kind=kind,
                entries=entries,
                request_block=self.config.logging.return_block_on_add,
            ),
        )
        return operation_id

    def _next_operation_id(self) -> OperationId:
        return OperationId(client=self.node_id, sequence=self._operation_seq.next())

    # ------------------------------------------------------------------
    # Operation status helpers
    # ------------------------------------------------------------------
    def operation(self, operation_id: OperationId) -> OperationRecord:
        return self.tracker.get(operation_id)

    def phase_of(self, operation_id: OperationId) -> CommitPhase:
        return self.tracker.get(operation_id).phase

    def value_of(self, operation_id: OperationId) -> Optional[bytes]:
        """The value returned by a completed get operation."""

        return self.tracker.get(operation_id).details.get("value")

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, sender: NodeId, message: Any) -> None:
        if isinstance(message, AppendBatchResponse):
            self._handle_append_response(sender, message)
        elif isinstance(message, BlockProofMessage):
            self._handle_block_proof(sender, message)
        elif isinstance(message, ReadResponse):
            self._handle_read_response(sender, message)
        elif isinstance(message, GetResponse):
            self._handle_get_response(sender, message)
        elif isinstance(message, (GossipMessage, GossipBatchMessage)):
            self._handle_gossip(sender, message)
        elif isinstance(message, DisputeVerdict):
            self.verdicts.append(message)

    # -------------------------------------------------------------- appends
    def _handle_append_response(
        self, sender: NodeId, response: AppendBatchResponse
    ) -> None:
        params = self.env.params
        self.env.charge(params.verify_seconds)
        if response.operation_id not in self.tracker:
            return
        record = self.tracker.get(response.operation_id)
        now = self.env.now()

        receipt = response.receipt
        if not receipt.verify(self.env.registry) or receipt.edge != self.edge:
            self._record_suspicion(
                "invalid-receipt", response.block_id, response.operation_id
            )
            self.tracker.mark_failed(response.operation_id, now, "invalid receipt")
            return

        if response.block is not None:
            self.env.charge(params.hash_cost(response.block.wire_size))
            if not receipt.matches_block(response.block):
                self._record_suspicion(
                    "receipt-block-mismatch", response.block_id, response.operation_id
                )
                self.tracker.mark_failed(
                    response.operation_id, now, "receipt does not match block"
                )
                return
            expected = set(record.details.get("entry_sequences", ()))
            present = {
                entry.sequence
                for entry in response.block.entries
                if entry.producer == self.node_id
            }
            if not expected.issubset(present):
                self._record_suspicion(
                    "missing-entries", response.block_id, response.operation_id
                )
                self.tracker.mark_failed(
                    response.operation_id, now, "entries missing from block"
                )
                return

        record.details["block_digest"] = receipt.block_digest
        self.tracker.mark_phase_one(
            response.operation_id, now, block_id=response.block_id, receipt=receipt
        )
        early = self._early_proofs.get(response.block_id)
        if early is not None and early.block_digest == receipt.block_digest:
            self.tracker.mark_phase_two(response.operation_id, now, early)
            return
        self._arm_dispute_timer(response.operation_id)

    # ---------------------------------------------------------- block proofs
    def _handle_block_proof(self, sender: NodeId, message: BlockProofMessage) -> None:
        params = self.env.params
        self.env.charge(params.verify_seconds)
        proof = message.proof
        # The proof must come from this client's actual cloud node: a
        # self-consistent signature from a node merely *claiming* the cloud
        # role is not Phase II evidence.
        if (
            proof.edge != self.edge
            or proof.cloud != self.cloud
            or not proof.verify(self.env.registry)
        ):
            return
        now = self.env.now()
        self._early_proofs[proof.block_id] = proof
        for record in self.tracker.operations_waiting_on_block(proof.block_id):
            if record.is_write:
                promised = (
                    record.receipt.block_digest if record.receipt is not None else None
                )
                if promised is not None and promised != proof.block_digest:
                    # The edge promised one digest but the cloud certified another.
                    self.stats["proof_mismatches"] += 1
                    self._record_suspicion(
                        "certified-digest-mismatch", proof.block_id, record.operation_id
                    )
                    self._send_dispute(record, kind="missing-proof")
                    continue
                self.tracker.mark_phase_two(record.operation_id, now, proof)
            else:
                served_digest = record.details.get("block_digest")
                if served_digest is not None and served_digest != proof.block_digest:
                    self.stats["proof_mismatches"] += 1
                    self._record_suspicion(
                        "read-content-mismatch", proof.block_id, record.operation_id
                    )
                    self._send_dispute(record, kind="read-mismatch")
                    continue
                if self.tracker.resolve_block(record.operation_id, proof.block_id):
                    self.tracker.mark_phase_two(record.operation_id, now, proof)

    # ---------------------------------------------------------------- reads
    def _handle_read_response(self, sender: NodeId, response: ReadResponse) -> None:
        params = self.env.params
        self.env.charge(params.verify_seconds)
        if response.statement.operation_id not in self.tracker:
            return
        record = self.tracker.get(response.statement.operation_id)
        now = self.env.now()

        statement = response.statement
        if statement.edge != self.edge or not self.env.registry.verify(
            response.signature, statement
        ):
            self.stats["verification_failures"] += 1
            self.tracker.mark_failed(record.operation_id, now, "bad read signature")
            return
        record.details["read_statement"] = statement
        record.details["read_signature"] = response.signature

        if not statement.found:
            if self.gossip_view.block_should_exist(statement.block_id):
                # Gossip says the block exists: omission attack.
                self._record_suspicion(
                    "omission", statement.block_id, record.operation_id
                )
                self._send_dispute(record, kind="omission")
            self.tracker.mark_failed(record.operation_id, now, "block not available")
            return

        block = response.block
        if block is None:
            self.tracker.mark_failed(record.operation_id, now, "empty read response")
            return
        self.env.charge(params.hash_cost(block.wire_size))
        recomputed = block.digest()
        if recomputed != statement.block_digest:
            self.stats["verification_failures"] += 1
            self._record_suspicion(
                "read-digest-mismatch", statement.block_id, record.operation_id
            )
            self.tracker.mark_failed(record.operation_id, now, "digest mismatch")
            return

        record.details["block_digest"] = recomputed
        record.details["num_entries"] = block.num_entries
        if (
            response.proof is not None
            and response.proof.cloud == self.cloud
            and response.proof.certifies(block)
        ):
            if response.proof.verify(self.env.registry):
                self.tracker.mark_phase_one(record.operation_id, now, statement.block_id)
                self.tracker.mark_phase_two(record.operation_id, now, response.proof)
                return
        # Phase I read: wait for the block proof, keep the evidence.
        self.tracker.mark_phase_one(record.operation_id, now, statement.block_id)
        self.tracker.watch_block(record.operation_id, statement.block_id)
        self._arm_dispute_timer(record.operation_id)

    # ----------------------------------------------------------------- gets
    def _handle_get_response(self, sender: NodeId, response: GetResponse) -> None:
        params = self.env.params
        if response.statement.operation_id not in self.tracker:
            return
        record = self.tracker.get(response.statement.operation_id)
        now = self.env.now()
        statement = response.statement

        # Verification cost: the paper attributes ~0.19 ms of the best-case
        # edge read to client-side verification (Figure 5d).
        num_proof_items = len(response.proof.level_zero) + len(response.proof.level_pages)
        verification_cost = params.verify_seconds * (
            2 + num_proof_items
        ) + params.hash_cost(response.proof.wire_size)
        self.env.charge(verification_cost)
        self.stats["verification_seconds"] += verification_cost

        if statement.edge != self.edge or not self.env.registry.verify(
            response.signature, statement
        ):
            self.stats["verification_failures"] += 1
            self.tracker.mark_failed(record.operation_id, now, "bad get signature")
            return
        record.details["get_statement"] = statement
        record.details["get_signature"] = response.signature

        try:
            verified = verify_get_proof(
                registry=self.env.registry,
                cloud=self.cloud,
                edge=self.edge,
                key=statement.key,
                proof=response.proof,
                now=now,
                freshness_window_s=self.freshness.effective_window(),
            )
        except ProofVerificationError as exc:
            self.stats["verification_failures"] += 1
            self._record_suspicion("get-proof-invalid", None, record.operation_id)
            self.tracker.mark_failed(record.operation_id, now, str(exc))
            return

        claimed_value = response.value
        derived_value = verified.record.value if verified.record is not None else None
        if verified.found != statement.found or claimed_value != derived_value:
            self.stats["verification_failures"] += 1
            self._record_suspicion("get-value-mismatch", None, record.operation_id)
            self.tracker.mark_failed(
                record.operation_id, now, "returned value disagrees with proof"
            )
            return
        if claimed_value is not None:
            expected_digest = digest_value(claimed_value)
            if statement.value_digest != expected_digest:
                self.stats["verification_failures"] += 1
                self.tracker.mark_failed(
                    record.operation_id, now, "value digest mismatch in statement"
                )
                return

        if verified.root_version is not None:
            if verified.root_version < self._last_root_version:
                # Session consistency: the edge served a snapshot older than
                # one this client has already read from.
                self.stats["verification_failures"] += 1
                self._record_suspicion(
                    "session-consistency-violation", None, record.operation_id
                )
                self.tracker.mark_failed(
                    record.operation_id,
                    now,
                    "response verified against an older global root than "
                    "previously observed (session consistency)",
                )
                return
            self._last_root_version = verified.root_version

        record.details["value"] = derived_value
        record.details["found"] = verified.found
        record.details["root_timestamp"] = verified.root_timestamp
        record.details["root_version"] = verified.root_version
        self.tracker.mark_phase_one(record.operation_id, now)
        if verified.phase is CommitPhase.PHASE_TWO:
            self.tracker.mark_phase_two(record.operation_id, now)
            return
        for block_id in verified.uncertified_block_ids:
            self.tracker.watch_block(record.operation_id, block_id)
        self._arm_dispute_timer(record.operation_id)

    # --------------------------------------------------------------- gossip
    def _handle_gossip(
        self, sender: NodeId, message: "GossipMessage | GossipBatchMessage"
    ) -> None:
        if not verify_gossip(self.env.registry, message, cloud=self.cloud):
            return
        self.gossip_view.update(message)

    # ------------------------------------------------------------------
    # Disputes
    # ------------------------------------------------------------------
    def _arm_dispute_timer(self, operation_id: OperationId) -> None:
        timeout = self.config.security.dispute_timeout_s

        def check() -> None:
            if operation_id not in self.tracker:
                return
            record = self.tracker.get(operation_id)
            if record.phase in (CommitPhase.PHASE_TWO, CommitPhase.FAILED):
                return
            kind = "missing-proof" if record.is_write else "read-mismatch"
            self._record_suspicion("proof-timeout", record.block_id, operation_id)
            self._send_dispute(record, kind=kind)

        self.env.schedule(timeout, check, label=f"{self.node_id}:dispute-timer")

    def _send_dispute(self, record: OperationRecord, kind: str) -> None:
        statement = record.details.get("read_statement")
        signature = record.details.get("read_signature")
        dispute = DisputeRequest(
            client=self.node_id,
            edge=self.edge,
            block_id=record.block_id if record.block_id is not None else -1,
            kind=kind,
            receipt=record.receipt,
            read_statement=statement,
            read_signature=signature,
            claimed_digest=record.details.get("block_digest"),
        )
        self.stats["disputes_sent"] += 1
        self.env.send(self.node_id, self.cloud, dispute)

    def _record_suspicion(
        self,
        kind: str,
        block_id: Optional[int],
        operation_id: Optional[OperationId],
    ) -> None:
        self.malicious_events.append(
            {
                "kind": kind,
                "block_id": block_id,
                "operation_id": operation_id,
                "at": self.env.now(),
            }
        )
