"""Table I: round-trip times between the evaluation datacenters.

The paper reports the California row of the RTT matrix (Table I); the
simulator embeds exactly those values, and this benchmark prints the table
and asserts it matches the paper verbatim.
"""

from __future__ import annotations

from repro.bench import table1_rtt
from repro.common import Region
from repro.sim.topology import paper_topology

PAPER_ROW = {"C": 0.0, "O": 19.0, "V": 61.0, "I": 141.0, "M": 238.0}


def test_table1_rtt_matrix(benchmark):
    table = benchmark.pedantic(table1_rtt, rounds=1, iterations=1)
    print()
    print(table.format())

    row = table.rows[0]
    for code, value in PAPER_ROW.items():
        assert row[code] == value, f"RTT to {code} diverges from Table I"


def test_topology_symmetry_and_coverage(benchmark):
    topology = paper_topology()

    def full_matrix():
        return {
            (a.short_code, b.short_code): topology.rtt(a, b)
            for a in Region
            for b in Region
        }

    matrix = benchmark.pedantic(full_matrix, rounds=1, iterations=1)
    for a in Region:
        for b in Region:
            assert matrix[(a.short_code, b.short_code)] == matrix[(b.short_code, a.short_code)]
            if a != b:
                assert matrix[(a.short_code, b.short_code)] > 0
