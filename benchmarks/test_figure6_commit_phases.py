"""Figure 6: Phase I vs Phase II commit progress over time.

Paper findings to reproduce (Section VI-C): with small batches the Phase II
certification keeps up with Phase I commitment (the two curves overlap); as
the batch size grows, Phase I keeps committing at the pace of the edge while
Phase II lags further and further behind — the whole point of lazy
certification is that the client-visible commit rate is unaffected by that
lag.
"""

from __future__ import annotations

from conftest import scaled

from repro.bench import figure6_commit_phases, print_tables

BATCH_SIZES = (100, 500, 1000)


def test_figure6_phase_rates(benchmark):
    summary, series = benchmark.pedantic(
        figure6_commit_phases,
        kwargs={
            "batch_sizes": BATCH_SIZES,
            "num_batches": scaled(120, minimum=40),
            "time_bin_s": 1.0,
        },
        rounds=1,
        iterations=1,
    )
    print_tables([summary])
    print(f"\n(series table has {len(series.rows)} rows; see EXPERIMENTS.md)")

    rows = {row["batch_size"]: row for row in summary.rows}
    for batch_size in BATCH_SIZES:
        row = rows[batch_size]
        # Every batch reached both phases.
        assert row["batches"] > 0
        # Phase II always completes after (or with) Phase I.
        assert row["phase2_done_s"] >= row["phase1_done_s"]

    # Phase I finishes at roughly the same time regardless of batch size
    # (the edge commit rate is what the client sees) ...
    p1_times = [rows[b]["phase1_done_s"] for b in BATCH_SIZES]
    assert max(p1_times) / max(min(p1_times), 1e-9) < 3.5
    # ... while the Phase II lag grows with the batch size.
    lags = [rows[b]["p2_lag_s"] for b in BATCH_SIZES]
    assert lags[-1] > lags[0]

    # The cumulative series is monotone and ends with all batches certified.
    for batch_size in BATCH_SIZES:
        points = series.rows_where(batch_size=batch_size)
        p1_counts = [point["phase1_batches"] for point in points]
        p2_counts = [point["phase2_batches"] for point in points]
        assert p1_counts == sorted(p1_counts)
        assert p2_counts == sorted(p2_counts)
        assert all(p2 <= p1 for p1, p2 in zip(p1_counts, p2_counts))
        assert p1_counts[-1] == rows[batch_size]["batches"]
        assert p2_counts[-1] == rows[batch_size]["batches"]
