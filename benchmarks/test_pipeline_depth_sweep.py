"""Opt-in heavier figure-5 sweep of the certification pipeline depth.

Skipped by default: the committed figures keep the paper-exact per-block
protocol (``certify_batch_size=1``, ``certify_pipeline_depth=1``).  Run
with::

    REPRO_BENCH_SCALE=4 PYTHONPATH=src pytest benchmarks/test_pipeline_depth_sweep.py

to sweep ``certify_pipeline_depth ∈ {1, 4, 16}`` on the batched-protocol
variant at (scaled) paper scale.  The claim under test: pipeline depth is
invisible to Phase I (throughput and commit latency unchanged — nothing
client-visible ever waits on the cloud) while the Phase II drain interval
shrinks once the window lets batches overlap their WAN round-trips.  The
measured deltas are recorded in CHANGES.md.
"""

from __future__ import annotations

import os

import pytest

from conftest import bench_scale, scaled

from repro.bench import pipeline_depth_ablation, print_tables

pytestmark = pytest.mark.skipif(
    bench_scale() < 4,
    reason="opt-in: set REPRO_BENCH_SCALE>=4 (the committed figures keep the "
    "paper-exact per-block protocol; this sweep runs the batched variant at "
    "paper scale)",
)

DEPTHS = (1, 4, 16)


def test_pipeline_depth_overlaps_phase_two_without_touching_phase_one():
    table = pipeline_depth_ablation(
        depths=DEPTHS,
        operations_per_client=scaled(400, minimum=100),
        certify_batch_size=8,
    )
    print_tables([table])

    by_clients: dict[int, dict[int, dict]] = {}
    for row in table.rows:
        by_clients.setdefault(row["clients"], {})[row["depth"]] = row

    for clients, rows in by_clients.items():
        baseline = rows[DEPTHS[0]]
        for depth in DEPTHS[1:]:
            row = rows[depth]
            # Phase I stays in the same regime.  It is not bit-stable across
            # depths at this scale: faster certification lands block proofs
            # sooner, which starts LSMerkle merges *inside* the measurement
            # window that depth 1 defers past it, and the edge's single CPU
            # then splits between appends and merge bookkeeping (~15% at 9
            # clients).  The protocol-level claim — nothing client-visible
            # ever waits on certification — is pinned by the latency bound
            # below and by the unchanged figure-4/5 defaults.
            assert row["throughput_kops"] == pytest.approx(
                baseline["throughput_kops"], rel=0.25
            )
            assert row["commit_ms"] == pytest.approx(baseline["commit_ms"], rel=0.25)
            # Deeper windows must not lengthen the Phase II drain.  (The
            # request count is not compared: dispatch timing shifts how
            # batches group into window envelopes, so it is not monotone
            # in depth — the signature amortization itself is pinned by
            # the cert_pipeline_* rows and the unit tests.)
            assert row["phase2_lag_s"] <= baseline["phase2_lag_s"] * 1.05

    # At the sweep's largest client count Phase I outpaces one 61 ms
    # certification RTT per batch, so the window genuinely fills and the
    # drain interval strictly improves with depth.
    busiest = by_clients[max(by_clients)]
    assert busiest[DEPTHS[-1]]["inflight_peak"] > 1
    if os.environ.get("REPRO_BENCH_STRICT_PIPELINE", "1") == "1":
        assert (
            busiest[DEPTHS[-1]]["phase2_lag_s"]
            < busiest[DEPTHS[0]]["phase2_lag_s"]
        )
