"""Hot-path performance baseline driver.

Runs the seeded micro-benchmark suite in :mod:`repro.bench.perf` and writes
``BENCH_hotpath.json`` at the repository root — the first point of the perf
trajectory later PRs ratchet against.  Usage::

    PYTHONPATH=src python benchmarks/perf_baseline.py --mode quick

``--capture-seed`` rewrites ``benchmarks/BENCH_seed_reference.json`` instead;
it exists so the reference can be re-recorded from a checkout of the seed
implementation on new hardware (the committed file was measured on the
machine that produced the committed ``BENCH_hotpath.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.perf import (  # noqa: E402  (path bootstrap above)
    SEED_REFERENCE_PATH,
    attach_speedups,
    format_summary,
    load_seed_reference,
    run_perf_suite,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("quick", "full"), default="quick")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_hotpath.json")
    parser.add_argument("--reference", default=SEED_REFERENCE_PATH)
    parser.add_argument(
        "--capture-seed",
        action="store_true",
        help="write the results as the seed reference instead of the baseline",
    )
    args = parser.parse_args(argv)

    summary = run_perf_suite(mode=args.mode, seed=args.seed)
    if args.capture_seed:
        output = args.reference
    else:
        output = args.output
        attach_speedups(summary, load_seed_reference(args.reference))

    with open(output, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(format_summary(summary))
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
