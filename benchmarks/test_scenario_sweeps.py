"""Seeded chaos scenario sweeps.

``tests/test_chaos_scenarios.py`` pins each scenario at one fixed seed so
tier-1 stays fast and deterministic.  This module re-runs the two broadest
scenario shapes — a mixed-fault storm on the single-edge deployment and a
2PC decision-loss run on the sharded fleet — across a *sweep* of seeds,
asserting the same convictable invariants at every one.

Quick mode (the default, used in CI) covers a small fixed seed set; widen
the sweep with the ``REPRO_CHAOS_SEEDS`` environment variable::

    REPRO_CHAOS_SEEDS=1,2,3,4,5,6,7,8 pytest benchmarks/test_scenario_sweeps.py

Every seed drives both the fault plan and the simulation environment, so a
failing seed is a complete reproduction recipe on its own.
"""

from __future__ import annotations

import os

import pytest

from repro.common.config import (
    LoggingConfig,
    LSMerkleConfig,
    SecurityConfig,
    ShardingConfig,
    StorageConfig,
    SystemConfig,
)
from repro.common.regions import Region
from repro.core.system import WedgeChainSystem
from repro.faults import (
    CrashEvent,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RegionPartitionRule,
    RetryPolicy,
    assert_full_certification,
    assert_monotone,
    assert_no_false_convictions,
    assert_no_lost_atomicity,
    assert_no_quarantines,
)
from repro.log.proofs import CommitPhase
from repro.sharding import ShardedWedgeSystem
from repro.sim.environment import local_environment
from repro.workloads.generator import format_key

BLOCK_SIZE = 4

#: Quick-mode seeds: small enough for CI, varied enough to shake out
#: order-dependent bugs the single pinned seed would mask.
DEFAULT_SEEDS = (211, 223, 229)

PUMP_POLICY = RetryPolicy(base_s=0.5, factor=2.0, cap_s=4.0)


def chaos_seeds() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_CHAOS_SEEDS", "")
    tokens = [token.strip() for token in raw.split(",") if token.strip()]
    if not tokens:
        return DEFAULT_SEEDS
    return tuple(int(token) for token in tokens)


def chaos_config(**overrides) -> SystemConfig:
    return SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=BLOCK_SIZE, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
        security=SecurityConfig(dispute_timeout_s=60.0),
        **overrides,
    )


def start_certify_pump(system, interval_s=0.5):
    def pump() -> None:
        for edge in system.edges:
            if not system.env.network.is_offline(edge.node_id):
                edge.retry_overdue_certifications(PUMP_POLICY)

    return system.env.schedule_periodic(interval_s, pump, label="sweep:pump")


def certified_total(system) -> int:
    return sum(
        len(state.log) - len(state.log.uncertified_block_ids())
        for edge in system.edges
        for state in edge._partition_states()
    )


@pytest.mark.parametrize("seed", chaos_seeds())
def test_mixed_fault_storm_settles_clean(seed):
    """Drop + duplicate + partition + crash, new dice every seed: the log
    still fully certifies, progress never regresses, nobody is framed."""

    system = WedgeChainSystem.build(
        config=chaos_config(),
        num_clients=1,
        env=local_environment(seed=seed),
    )
    client = system.client(0)
    edge = system.edge(0)
    plan = (
        FaultPlan(seed=seed, name=f"sweep-storm-{seed}")
        .with_rule(FaultRule("drop", probability=0.3, until_s=2.0))
        .with_rule(
            FaultRule("duplicate", probability=0.3, until_s=2.0, spread_s=0.1)
        )
        .with_partition(
            RegionPartitionRule(
                side_a=frozenset({Region.CALIFORNIA}),
                side_b=frozenset({Region.VIRGINIA}),
                start_s=2.5,
                until_s=4.0,
            )
        )
        .with_crash(CrashEvent(edge.node_id, at_s=4.5, restart_at_s=5.5))
    )
    injector = FaultInjector(system.env, plan).install()
    stop_pump = start_certify_pump(system)

    progress = [certified_total(system)]
    ops = []
    for round_index in range(3):
        items = [
            (f"s{seed}-r{round_index}-{i}", b"v%d" % i)
            for i in range(BLOCK_SIZE * 2)
        ]
        ops.append(client.put_batch(items))
        system.run_for(2.5)
        progress.append(certified_total(system))

    system.run_for(max(0.0, injector.faults_quiet_after() - system.env.now()))
    system.run_for(15.0)
    progress.append(certified_total(system))
    stop_pump()

    assert sum(injector.rule_fire_counts()) >= 1
    assert_monotone(progress, f"certified blocks (seed {seed})")
    # Only writes issued before the crash can be lost from the volatile
    # buffer; everything the durable log holds must certify.
    assert assert_full_certification(system.edges) >= 1
    assert_no_false_convictions(system.cloud, [edge.node_id])
    # Post-heal writes always land: the system recovered for real.
    late = client.put_batch(
        [(f"s{seed}-late-{i}", b"z") for i in range(BLOCK_SIZE)]
    )
    assert (
        system.wait_for(client, late, CommitPhase.PHASE_TWO, max_time_s=60)
        is CommitPhase.PHASE_TWO
    )


@pytest.mark.parametrize("seed", chaos_seeds())
def test_durable_crash_storm_recovers_from_disk(seed, tmp_path):
    """The mixed storm on the disk backend with *two* crashes: every restart
    rebuilds the partition from its store (verified against the durable
    signed root), nothing quarantines, and the log still fully certifies."""

    system = WedgeChainSystem.build(
        config=chaos_config(
            storage=StorageConfig(
                backend="disk", root_dir=str(tmp_path), fsync="always"
            )
        ),
        num_clients=1,
        env=local_environment(seed=seed),
    )
    client = system.client(0)
    edge = system.edge(0)
    plan = (
        FaultPlan(seed=seed, name=f"sweep-durable-{seed}")
        .with_rule(FaultRule("drop", probability=0.2, until_s=2.0))
        .with_rule(
            FaultRule("duplicate", probability=0.2, until_s=2.0, spread_s=0.1)
        )
        .with_crash(CrashEvent(edge.node_id, at_s=2.5, restart_at_s=3.5))
        .with_crash(CrashEvent(edge.node_id, at_s=5.0, restart_at_s=6.0))
    )
    injector = FaultInjector(system.env, plan).install()
    stop_pump = start_certify_pump(system)

    progress = [certified_total(system)]
    for round_index in range(3):
        items = [
            (f"d{seed}-r{round_index}-{i}", b"v%d" % i)
            for i in range(BLOCK_SIZE * 2)
        ]
        client.put_batch(items)
        system.run_for(2.5)
        progress.append(certified_total(system))

    system.run_for(max(0.0, injector.faults_quiet_after() - system.env.now()))
    system.run_for(15.0)
    progress.append(certified_total(system))
    stop_pump()

    # Both restarts went through real recovery-from-store, cleanly.
    assert edge.stats.get("partitions_recovered", 0) >= 2
    assert edge.last_recovery_reports and all(
        report.ok for report in edge.last_recovery_reports
    )
    assert_no_quarantines(system.edges)
    assert_monotone(progress, f"durable certified blocks (seed {seed})")
    assert assert_full_certification(system.edges) >= 1
    assert_no_false_convictions(system.cloud, [edge.node_id])
    # The recovered index still matches the durable cloud-signed root.
    state = edge._default_partition
    if state.signed_root is not None:
        assert state.index.roots_match(state.signed_root)
    late = client.put_batch(
        [(f"d{seed}-late-{i}", b"z") for i in range(BLOCK_SIZE)]
    )
    assert (
        system.wait_for(client, late, CommitPhase.PHASE_TWO, max_time_s=60)
        is CommitPhase.PHASE_TWO
    )


@pytest.mark.parametrize("seed", chaos_seeds())
def test_txn_decision_loss_sweep_stays_atomic(seed):
    """Probabilistic 2PC decision loss on the sharded fleet: whatever the
    dice do, no shard applies both outcomes of one transaction."""

    system = ShardedWedgeSystem.build(
        config=chaos_config(
            num_edge_nodes=2, sharding=ShardingConfig(num_shards=4)
        ),
        num_clients=1,
        env=local_environment(seed=seed),
    )
    client = system.clients[0]
    plan = FaultPlan(seed=seed, name=f"sweep-decisions-{seed}").with_rule(
        FaultRule(
            "drop",
            message_type="TxnDecisionMessage",
            probability=0.5,
            until_s=4.0,
        )
    )
    FaultInjector(system.env, plan).install()

    items = []
    index = 0
    shards_seen: set[int] = set()
    while len(shards_seen) < 3:
        key = format_key(index)
        shard = client.partitioner.shard_of(key)
        if shard not in shards_seen:
            shards_seen.add(shard)
            items.append((key, b"sweep-%d" % seed))
        index += 1

    txn_id = client.txn_put(items)
    system.run_for(40.0)

    assert client.txns.state_of(txn_id) == "committed"
    decisions = assert_no_lost_atomicity(system.edges)
    applied = [
        outcome for appliers in decisions.values() for _edge, outcome in appliers
    ]
    assert applied and set(applied) == {"commit"}
    assert_no_false_convictions(
        system.cloud, [edge.node_id for edge in system.edges]
    )
