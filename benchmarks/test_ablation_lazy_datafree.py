"""Ablations: the individual contributions of WedgeChain's design choices.

These go beyond the paper's figures and quantify the design decisions
DESIGN.md calls out:

* **Data-free certification** — same lazy protocol, but the full block is
  shipped to the cloud for certification.  Phase I latency is unchanged (the
  client never waits for the cloud), but WAN traffic and Phase II latency
  grow substantially.
* **Lazy vs eager certification** — already measured by WedgeChain vs the
  Edge-baseline in Figure 4; asserted here as a direct ratio.
* **Gossip interval** — the omission-attack detection delay is bounded by the
  gossip interval (Section IV-E).
"""

from __future__ import annotations

import math

from conftest import scaled

from repro.bench import (
    ablation_data_free_certification,
    ablation_gossip_interval,
    config_for_batch,
    print_tables,
    run_workload,
    write_workload,
)


def test_ablation_data_free_certification(benchmark):
    table = benchmark.pedantic(
        ablation_data_free_certification,
        kwargs={"batch_sizes": (100, 500, 1000), "num_batches": scaled(8, minimum=4)},
        rounds=1,
        iterations=1,
    )
    print_tables([table])

    for batch_size in (100, 500, 1000):
        data_free = table.rows_where(batch_size=batch_size, variant="data-free")[0]
        full_data = table.rows_where(batch_size=batch_size, variant="full-data")[0]
        # Phase I latency is unaffected: certification stays off the critical path.
        assert abs(data_free["commit_latency_ms"] - full_data["commit_latency_ms"]) < 10.0
        # Data-free certification sends far fewer bytes across the WAN.
        assert full_data["wan_megabytes"] > data_free["wan_megabytes"] * 1.5
    # The WAN savings grow with the batch size.
    savings = [
        table.rows_where(batch_size=b, variant="full-data")[0]["wan_megabytes"]
        - table.rows_where(batch_size=b, variant="data-free")[0]["wan_megabytes"]
        for b in (100, 500, 1000)
    ]
    assert savings == sorted(savings)


def test_ablation_lazy_vs_eager_certification(benchmark):
    """Lazy certification is what removes the WAN from the commit path."""

    def run_pair():
        workload = write_workload(batch_size=200, num_batches=scaled(6, minimum=3))
        config = config_for_batch(200)
        lazy = run_workload("wedgechain", workload, config=config)
        eager = run_workload("edge-baseline", workload, config=config)
        return lazy, eager

    lazy, eager = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(
        f"\nlazy (WedgeChain) commit: {lazy.mean_commit_latency_ms:.1f} ms; "
        f"eager (Edge-baseline) commit: {eager.mean_commit_latency_ms:.1f} ms"
    )
    assert eager.mean_commit_latency_ms > 3 * lazy.mean_commit_latency_ms


def test_ablation_gossip_interval(benchmark):
    table = benchmark.pedantic(
        ablation_gossip_interval,
        kwargs={"intervals_s": (0.25, 0.5, 1.0, 2.0)},
        rounds=1,
        iterations=1,
    )
    print_tables([table])

    for row in table.rows:
        # The omission is always detected and punished ...
        assert row["edge_punished"] is True
        assert not math.isnan(row["detection_delay_s"])
        # ... within a small multiple of the gossip interval (plus the read
        # retry granularity).
        assert row["detection_delay_s"] < row["gossip_interval_s"] * 10 + 5.0
