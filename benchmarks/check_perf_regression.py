"""Perf-regression gate: diff a fresh perf run against the committed baseline.

Compares the ``ops_per_s`` of every metric present in the *baseline* file
(the committed ``BENCH_hotpath.json``) against the same metric in the
*current* run and fails when any of them regressed by more than the
threshold (25% by default) relative to the run as a whole.

The committed baseline is recorded on one specific machine while CI runners
(and loaded laptops) run uniformly slower or faster, so raw ops/s ratios
would flag every metric at once on different hardware.  The gate therefore
calibrates first: it takes the **median** current/baseline ratio across all
shared metrics as the machine-speed factor and fails a metric only when its
own ratio falls more than the threshold below that median.  A targeted
regression (one hot path got slower) barely moves the median of the other
metrics and is caught; a uniformly slower runner shifts every ratio equally
and passes.  ``--raw`` disables the calibration for same-machine
comparisons.  Metrics that only exist in the current run (newly added
benchmarks) are reported but never gate.

New-row convention, made explicit: a baseline may carry a top-level
``non_gating`` list naming rows that are *recorded but not yet enforced* —
a row enters the baseline and that list in the PR that adds it (its first
number is measured on one machine, with no history to ratchet against) and
leaves the list in the next PR, becoming gated.  Non-gating rows are
reported, excluded from the machine-speed median, and never fail the gate.
Usage::

    PYTHONPATH=src python benchmarks/perf_baseline.py --mode quick --output /tmp/BENCH_current.json
    python benchmarks/check_perf_regression.py --baseline BENCH_hotpath.json --current /tmp/BENCH_current.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def _read_summary(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _results_of(summary: dict, path: str) -> dict[str, dict]:
    results = summary.get("results")
    if not isinstance(results, dict) or not results:
        raise SystemExit(f"{path}: no results section — not a perf summary")
    return results


def _non_gating_of(summary: dict, path: str) -> frozenset[str]:
    names = summary.get("non_gating", ())
    if not isinstance(names, (list, tuple)):
        raise SystemExit(f"{path}: non_gating must be a list of metric names")
    return frozenset(names)


def load_results(path: str) -> dict[str, dict]:
    return _results_of(_read_summary(path), path)


def load_non_gating(path: str) -> frozenset[str]:
    """Rows the baseline marks as recorded-but-not-yet-enforced."""

    return _non_gating_of(_read_summary(path), path)


def compare(
    baseline: dict[str, dict],
    current: dict[str, dict],
    threshold: float,
    normalize: bool = True,
    non_gating: frozenset[str] = frozenset(),
) -> tuple[list[str], list[str]]:
    """Return (report lines, regression lines) for the two result sets."""

    ratios: dict[str, float] = {}
    observed: dict[str, float] = {}
    missing: list[str] = []
    lines: list[str] = []
    for name, reference in baseline.items():
        reference_ops = reference.get("ops_per_s")
        if not reference_ops:
            continue
        fresh = current.get(name)
        if fresh is None or not fresh.get("ops_per_s"):
            if name in non_gating:
                # Still *reported*: a new row that silently stopped
                # producing numbers must be visible even though it
                # cannot fail the gate yet.
                lines.append(
                    f"{name:<20}{reference_ops:>16,.0f}{'(missing)':>16}"
                    f"{'':>19}  non-gating"
                )
            else:
                missing.append(f"{name}: missing from the current run")
            continue
        observed[name] = fresh["ops_per_s"] / reference_ops
        if name not in non_gating:
            # Non-gating rows have exactly one recorded point; keeping them
            # out of the calibration means a noisy first measurement cannot
            # shift the machine-speed median the gated rows are judged by.
            ratios[name] = observed[name]

    speed_factor = 1.0
    if normalize and ratios:
        speed_factor = statistics.median(ratios.values())

    regressions: list[str] = list(missing)
    for name, ratio in observed.items():
        relative = ratio / speed_factor
        status = "ok"
        if name in non_gating:
            status = "non-gating"
        elif relative < 1.0 - threshold:
            status = "REGRESSION"
            regressions.append(
                f"{name}: {current[name]['ops_per_s']:,.0f} ops/s is "
                f"{(1.0 - relative) * 100.0:.1f}% below the run median "
                f"(baseline {baseline[name]['ops_per_s']:,.0f} ops/s, "
                f"machine-speed factor {speed_factor:.2f}x)"
            )
        lines.append(
            f"{name:<20}{baseline[name]['ops_per_s']:>16,.0f}"
            f"{current[name]['ops_per_s']:>16,.0f}"
            f"{ratio:>9.2f}x{relative:>9.2f}x  {status}"
        )
    for name in sorted(set(current) - set(baseline)):
        ops = current[name].get("ops_per_s")
        if ops:
            lines.append(f"{name:<20}{'(new)':>16}{ops:>16,.0f}{'':>19}  new")
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_hotpath.json")
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum allowed fractional regression (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help="compare raw ops/s without the median machine-speed calibration",
    )
    args = parser.parse_args(argv)

    baseline_summary = _read_summary(args.baseline)
    baseline = _results_of(baseline_summary, args.baseline)
    non_gating = _non_gating_of(baseline_summary, args.baseline)
    current = load_results(args.current)
    lines, regressions = compare(
        baseline,
        current,
        args.threshold,
        normalize=not args.raw,
        non_gating=non_gating,
    )

    print(
        f"{'benchmark':<20}{'baseline ops/s':>16}{'current ops/s':>16}"
        f"{'ratio':>10}{'adjusted':>9}"
    )
    for line in lines:
        print(line)
    if not args.raw:
        shared = [
            current[name]["ops_per_s"] / reference["ops_per_s"]
            for name, reference in baseline.items()
            if name not in non_gating
            and reference.get("ops_per_s")
            and current.get(name, {}).get("ops_per_s")
        ]
        if shared and statistics.median(shared) < 1.0 - args.threshold:
            # Known blind spot of the calibration: a regression hitting the
            # *majority* of metrics (a shared substrate like the canonical
            # encoder) moves the median with it and passes per-metric
            # checks.  The gate cannot distinguish that from a slower
            # machine, so it warns loudly instead of failing; compare with
            # --raw on the baseline's own hardware to disambiguate.
            print(
                f"\nWARNING: the median ratio is "
                f"{statistics.median(shared):.2f}x — either this machine is "
                "uniformly slower than the one that recorded the baseline, "
                "or a shared-substrate regression hit most metrics at once. "
                "Re-check with --raw on comparable hardware."
            )
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} metric(s) regressed more than "
            f"{args.threshold:.0%} vs {args.baseline}:"
        )
        for regression in regressions:
            print(f"  - {regression}")
        return 1
    print(f"\nOK: no metric regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
