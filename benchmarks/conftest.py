"""Shared configuration for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper by
calling the corresponding function in :mod:`repro.bench.experiments`, prints
the resulting table(s), and asserts the qualitative shape the paper reports
(who wins, what degrades, where the crossovers are).

The experiments run at a reduced scale by default so the whole suite finishes
in a few minutes; set the ``REPRO_BENCH_SCALE`` environment variable to a
value greater than 1.0 to run closer to paper scale, e.g.::

    REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    """Multiplier applied to batch counts / operation counts."""

    try:
        return max(float(os.environ.get("REPRO_BENCH_SCALE", "1.0")), 0.1)
    except ValueError:
        return 1.0


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an iteration count by ``REPRO_BENCH_SCALE``."""

    return max(int(value * bench_scale()), minimum)


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
