"""Figure 5(d): best-case read latency and client-side verification overhead.

Paper findings to reproduce: with communication taken out of the picture,
WedgeChain and the Edge-baseline serve a read in well under a millisecond of
server+client work, a fraction of which (0.19 ms of 0.71 ms in the paper) is
client-side proof verification; Cloud-only is slightly faster because its
results are trusted and need no verification.

This module also contains true wall-clock microbenchmarks (pytest-benchmark
statistics) of the verification path itself, since that cost is a real CPU
cost of this implementation rather than a simulated one.
"""

from __future__ import annotations

from repro.bench import figure5d_best_case_read, print_tables
from repro.common.config import LSMerkleConfig
from repro.common.identifiers import client_id, cloud_id, edge_id
from repro.crypto.signatures import KeyRegistry
from repro.log.block import build_block
from repro.log.entry import make_entry
from repro.log.proofs import issue_block_proof
from repro.lsmerkle.codec import encode_put, page_from_block
from repro.lsmerkle.merge import CloudIndexMirror, MergeProposal
from repro.lsmerkle.mlsm import MerkleizedLSM
from repro.lsmerkle.read_proof import build_get_proof, verify_get_proof


def test_figure5d_simulated_best_case(benchmark):
    table = benchmark.pedantic(
        figure5d_best_case_read,
        kwargs={"num_preload_batches": 4, "batch_size": 50, "num_reads": 20},
        rounds=1,
        iterations=1,
    )
    print_tables([table])

    by_system = {row["system"]: row for row in table.rows}
    wedge = by_system["WedgeChain"]
    edge_baseline = by_system["Edge-baseline"]
    cloud = by_system["Cloud-only"]
    # Edge systems read in a few milliseconds at most when co-located.
    assert wedge["read_latency_ms"] < 10.0
    assert edge_baseline["read_latency_ms"] < 10.0
    # Cloud-only needs no verification; edge systems pay a non-zero overhead.
    assert cloud["verification_overhead_ms"] == 0.0
    assert wedge["verification_overhead_ms"] > 0.0
    # Verification is a minority share of the read (0.19 of 0.71 ms in the paper).
    assert wedge["verification_overhead_ms"] < wedge["read_latency_ms"]


# ----------------------------------------------------------------------
# Wall-clock microbenchmarks of the verification path
# ----------------------------------------------------------------------
def _build_proof_fixture(num_blocks: int = 4, entries_per_block: int = 50):
    registry = KeyRegistry("hmac")
    cloud, edge, alice = cloud_id(), edge_id("edge-0"), client_id("alice")
    for node in (cloud, edge, alice):
        registry.register(node)

    index = MerkleizedLSM(
        config=LSMerkleConfig(level_thresholds=(8, 8, 16, 32)), page_capacity=entries_per_block
    )
    mirror = CloudIndexMirror(
        edge=edge, config=index.tree.config, page_capacity=entries_per_block
    )
    certified = {}
    evidence = []
    blocks = []
    for block_id in range(num_blocks):
        entries = [
            make_entry(
                registry,
                alice,
                block_id * entries_per_block + i,
                encode_put(f"key{block_id:03d}-{i:04d}", b"v" * 100),
                1.0,
            )
            for i in range(entries_per_block)
        ]
        block = build_block(edge, block_id, entries, created_at=float(block_id))
        blocks.append(block)
        certified[block_id] = block.digest()
        proof = issue_block_proof(registry, cloud, edge, block_id, block.digest(), 1.0)
        index.add_level_zero_page(page_from_block(block))
        evidence.append((block, proof))

    # Merge half of the blocks into level 1 so the proof has level evidence too.
    merged = blocks[: num_blocks // 2]
    proposal = MergeProposal(
        edge=edge,
        level_index=0,
        source_blocks=tuple(merged),
        target_pages=(),
    )
    outcome = mirror.execute_merge(proposal, certified, registry, cloud, now=5.0)
    remaining_pages = [
        page
        for page in index.tree.levels[0].pages
        if page.source_block_id >= num_blocks // 2
    ]
    index.install_merge(0, outcome.merged_pages, remaining_pages)
    evidence = [item for item in evidence if item[0].block_id >= num_blocks // 2]

    key = "key000-0001"  # lives in a merged level-1 page
    result = index.get(key)
    proof = build_get_proof(
        key=key,
        index=index,
        level_zero_blocks=evidence,
        signed_root=outcome.signed_root,
        found_level=result.level_index,
    )
    return registry, cloud, edge, key, proof


def test_microbench_get_proof_verification(benchmark):
    """Wall-clock cost of verifying a full LSMerkle get proof at the client."""

    registry, cloud, edge, key, proof = _build_proof_fixture()
    result = benchmark(
        verify_get_proof, registry, cloud, edge, key, proof
    )
    assert result.found


def test_microbench_get_proof_construction(benchmark):
    """Wall-clock cost of building the get proof at the edge node."""

    registry, cloud, edge, key, proof = _build_proof_fixture()
    # Rebuild the proof repeatedly from the same index state.
    index = MerkleizedLSM(
        config=LSMerkleConfig(level_thresholds=(8, 8, 16, 32)), page_capacity=50
    )
    evidence = [(item.block, item.proof) for item in proof.level_zero]

    def construct():
        return build_get_proof(
            key=key,
            index=index,
            level_zero_blocks=evidence,
            signed_root=None,
            found_level=0,
        )

    built = benchmark(construct)
    assert built.key == key
