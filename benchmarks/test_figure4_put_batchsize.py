"""Figure 4: put latency and throughput while varying the batch size.

Paper findings to reproduce (Section VI-A):

* WedgeChain commits at edge latency (15-20 ms in the paper) and is barely
  affected by the batch size.
* Cloud-only pays the client-cloud round trip (~80 ms) on every batch.
* Edge-baseline is the slowest and degrades markedly with the batch size
  (109 ms -> 213 ms in the paper) because the synchronous full-data
  certification sits on the critical path.
* Throughput: WedgeChain grows by an order of magnitude across the sweep and
  stays far above both baselines.
"""

from __future__ import annotations

from conftest import scaled

from repro.bench import figure4_put_batch_size, print_tables

BATCH_SIZES = (100, 500, 1000, 1500, 2000)


def test_figure4_latency_and_throughput(benchmark):
    latency, throughput = benchmark.pedantic(
        figure4_put_batch_size,
        kwargs={"batch_sizes": BATCH_SIZES, "num_batches": scaled(6)},
        rounds=1,
        iterations=1,
    )
    print_tables([latency, throughput])

    wedge_latency = latency.column("WedgeChain")
    cloud_latency = latency.column("Cloud-only")
    edge_latency = latency.column("Edge-baseline")

    # WedgeChain is the fastest at every batch size and stays within tens of ms.
    for wedge, cloud, edge in zip(wedge_latency, cloud_latency, edge_latency):
        assert wedge < cloud < edge
        assert wedge < 60.0
    # Cloud-only sits in the neighbourhood of the CA-Virginia round trip.
    assert min(cloud_latency) > 55.0
    # Edge-baseline degrades the most as the batch grows (paper: ~2x).
    assert edge_latency[-1] / edge_latency[0] > 1.5
    assert edge_latency[-1] / edge_latency[0] > wedge_latency[-1] / wedge_latency[0]

    wedge_throughput = throughput.column("WedgeChain")
    cloud_throughput = throughput.column("Cloud-only")
    edge_throughput = throughput.column("Edge-baseline")
    # Throughput ordering holds at every batch size.
    for wedge, cloud, edge in zip(wedge_throughput, cloud_throughput, edge_throughput):
        assert wedge > cloud > edge * 0.9
    # WedgeChain gains roughly an order of magnitude across the sweep
    # (paper: 6.6K -> ~100K ops/s).
    assert wedge_throughput[-1] / wedge_throughput[0] > 5.0
