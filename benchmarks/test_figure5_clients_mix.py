"""Figure 5(a)-(c): multi-client and mixed workloads.

Paper findings to reproduce (Section VI-B):

* (a) all-write: every system gains throughput with more clients; Cloud-only
  gains the most in relative terms because extra concurrency hides its
  wide-area latency; the Edge-baseline remains the slowest writer.
* (b) 50 % reads / 50 % writes: WedgeChain leads, the Edge-baseline is second
  (its writes still pay synchronous certification), and Cloud-only collapses
  because every interactive read pays the wide-area round trip.
* (c) all-read: WedgeChain and the Edge-baseline serve reads identically from
  the edge and far outperform Cloud-only.
"""

from __future__ import annotations

from conftest import scaled

from repro.bench import figure5_multi_client, print_tables

CLIENT_COUNTS = (1, 3, 5, 7, 9)


def _first_last(table, column):
    values = table.column(column)
    return values[0], values[-1]


def test_figure5a_all_write(benchmark):
    table = benchmark.pedantic(
        figure5_multi_client,
        kwargs={
            "read_fraction": 0.0,
            "client_counts": CLIENT_COUNTS,
            "operations_per_client": scaled(400, minimum=100),
        },
        rounds=1,
        iterations=1,
    )
    print_tables([table])

    for row in table.rows:
        assert row["WedgeChain"] > row["Edge-baseline"]
    wedge_first, wedge_last = _first_last(table, "WedgeChain")
    cloud_first, cloud_last = _first_last(table, "Cloud-only")
    edge_first, edge_last = _first_last(table, "Edge-baseline")
    # Everyone benefits from more clients.
    assert wedge_last > wedge_first
    assert cloud_last > cloud_first
    assert edge_last > edge_first
    # Cloud-only's relative gain is the largest (it is latency bound).
    assert cloud_last / cloud_first >= edge_last / edge_first


def test_figure5b_mixed_reads_writes(benchmark):
    table = benchmark.pedantic(
        figure5_multi_client,
        kwargs={
            "read_fraction": 0.5,
            "client_counts": CLIENT_COUNTS,
            "operations_per_client": scaled(300, minimum=60),
        },
        rounds=1,
        iterations=1,
    )
    print_tables([table])

    for row in table.rows:
        # WedgeChain > Edge-baseline > Cloud-only at every client count.
        assert row["WedgeChain"] > row["Edge-baseline"]
        assert row["Edge-baseline"] > row["Cloud-only"]
    # Cloud-only collapses to a small fraction of WedgeChain (paper: 270 vs
    # 4000 ops/s at nine clients; the simulated gap is smaller because the
    # calibrated client-edge RTT is higher than the paper's testbed, see
    # EXPERIMENTS.md).
    last = table.rows[-1]
    assert last["Cloud-only"] < last["WedgeChain"] / 3


def test_figure5c_all_read(benchmark):
    table = benchmark.pedantic(
        figure5_multi_client,
        kwargs={
            "read_fraction": 1.0,
            "client_counts": CLIENT_COUNTS,
            "operations_per_client": scaled(200, minimum=40),
        },
        rounds=1,
        iterations=1,
    )
    print_tables([table])

    for row in table.rows:
        wedge, edge, cloud = row["WedgeChain"], row["Edge-baseline"], row["Cloud-only"]
        # WedgeChain and Edge-baseline serve reads the same way from the edge.
        assert abs(wedge - edge) / max(wedge, edge) < 0.35
        # Cloud-only achieves a small fraction of the edge systems.
        assert cloud < wedge / 3
