"""Scale-out benchmark: aggregate put throughput of a sharded edge fleet.

The paper reports the performance of a single partition; this benchmark
exercises the sharded-fleet subsystem (``repro.sharding``) built on top of
it.  A fixed population of closed-loop clients drives a Zipfian(0.99)
all-write workload against fleets of 1, 4, and 16 edges:

* with one edge the fleet is the paper's deployment (CPU-bound once enough
  clients share the edge's single request loop);
* with more edges the key space spreads across shard owners and aggregate
  throughput must rise monotonically;
* a certified shard handoff is exercised end to end mid-benchmark, and a
  tampering source edge is caught and punished through the dispute path.
"""

from __future__ import annotations

from conftest import scaled

from repro.bench.results import ResultTable, print_tables
from repro.common.config import (
    LoggingConfig,
    LSMerkleConfig,
    ShardingConfig,
    SystemConfig,
    WorkloadConfig,
)
from repro.log.proofs import CommitPhase
from repro.sharding import (
    ShardedClosedLoopDriver,
    ShardedEdgeNode,
    ShardedWedgeSystem,
    TamperingHandoffEdgeNode,
)
from repro.sim.environment import local_environment

#: Fleet sizes swept by the scaling experiment.
FLEET_SIZES = (1, 4, 16)
NUM_CLIENTS = 48
BATCH_SIZE = 200
NUM_SHARDS = 32


def _fleet_config(num_edges: int) -> SystemConfig:
    return SystemConfig.paper_default().with_overrides(
        num_edge_nodes=num_edges,
        sharding=ShardingConfig(num_shards=NUM_SHARDS, partitioner="hash-ring"),
        logging=LoggingConfig(block_size=BATCH_SIZE, block_timeout_s=0.005),
    )


def _run_fleet(num_edges: int, operations_per_client: int, seed: int = 7):
    workload = WorkloadConfig(
        num_clients=NUM_CLIENTS,
        batch_size=BATCH_SIZE,
        key_space=100_000,
        key_distribution="zipfian",
        zipf_theta=0.99,
        operations_per_client=operations_per_client,
        seed=seed,
    )
    system = ShardedWedgeSystem.build(
        config=_fleet_config(num_edges), num_clients=NUM_CLIENTS, seed=seed
    )
    driver = ShardedClosedLoopDriver(system, workload)
    result = driver.run(max_time_s=3600)
    assert result.all_finished
    return system, result


def test_scaleout_put_throughput(benchmark):
    """Aggregate put throughput rises monotonically from 1 → 4 → 16 edges."""

    operations_per_client = scaled(600, minimum=200)

    def sweep():
        rows = []
        for num_edges in FLEET_SIZES:
            system, result = _run_fleet(num_edges, operations_per_client)
            rows.append(
                {
                    "edges": num_edges,
                    "throughput_kops": result.throughput_ops_per_s / 1000.0,
                    "operations": result.operations_completed,
                    "requests": result.requests_sent,
                    "blocks": sum(e.stats["blocks_formed"] for e in system.edges),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = ResultTable(
        title="Scale-out: aggregate put throughput vs fleet size "
        f"({NUM_CLIENTS} closed-loop clients, Zipfian 0.99)",
        columns=["edges", "throughput_kops", "operations", "requests", "blocks"],
    )
    for row in rows:
        table.add_row(**row)
    print_tables([table])

    throughputs = [row["throughput_kops"] for row in rows]
    # Every client completed its full quota in every configuration.
    for row in rows:
        assert row["operations"] == NUM_CLIENTS * operations_per_client
    # Monotonic scale-out: 1 → 4 → 16 edges.
    assert throughputs[0] < throughputs[1] < throughputs[2], throughputs


def test_certified_handoff_end_to_end():
    """One certified shard handoff under load: moved, verified, and served."""

    config = _fleet_config(4).with_overrides(
        logging=LoggingConfig(block_size=20, block_timeout_s=0.005),
        lsmerkle=LSMerkleConfig(level_thresholds=(4, 8, 64, 512)),
    )
    system = ShardedWedgeSystem.build(
        config=config, num_clients=4, env=local_environment(seed=11)
    )
    client = system.clients[0]
    operations = [
        (client, client.put(f"key{i:012d}", b"v%d" % i)) for i in range(400)
    ]
    assert system.wait_for_all(operations, CommitPhase.PHASE_TWO, max_time_s=300)
    system.run()

    source = system.edges[0]
    shard = max(
        source.shard_entry_counts, key=source.shard_entry_counts.get
    )
    moved_keys = [
        f"key{i:012d}"
        for i in range(400)
        if system.partitioner.shard_of(f"key{i:012d}") == shard
    ]
    assert moved_keys, "the busiest shard must hold data"
    dest = system.edges[1]
    system.rebalance_shard(shard, dest.node_id)
    system.run_for(30.0)
    system.run()

    # The certified handoff completed: countersigned, transferred, installed.
    assert system.shard_owner(shard) == dest.node_id
    assert system.cloud.stats["shard_handoffs_granted"] == 1
    assert system.cloud.stats["shard_installs"] == 1
    assert dest.stats["shard_handoffs_in"] == 1
    assert dest.shard_state(shard) is not None

    # Reads of the moved keys route to (and verify against) the new owner.
    get_op = client.get(moved_keys[0])
    phase = system.wait_for(client, get_op, CommitPhase.PHASE_TWO, max_time_s=60)
    assert phase is CommitPhase.PHASE_TWO
    record = client.tracker.get(get_op)
    assert record.details["edge"] == dest.node_id
    assert client.value_of(get_op) is not None


def test_tampered_handoff_is_rejected_and_disputed():
    """A tampered transfer digest never installs; the source is punished."""

    config = _fleet_config(2).with_overrides(
        logging=LoggingConfig(block_size=20, block_timeout_s=0.005),
        lsmerkle=LSMerkleConfig(level_thresholds=(4, 8, 64, 512)),
    )

    def factory(**kwargs):
        cls = TamperingHandoffEdgeNode if kwargs["name"] == "edge-0" else ShardedEdgeNode
        return cls(**kwargs)

    system = ShardedWedgeSystem.build(
        config=config,
        num_clients=2,
        env=local_environment(seed=11),
        edge_factory=factory,
    )
    client = system.clients[0]
    operations = [
        (client, client.put(f"key{i:012d}", b"v%d" % i)) for i in range(200)
    ]
    assert system.wait_for_all(operations, CommitPhase.PHASE_TWO, max_time_s=300)
    system.run()

    source = system.edges[0]
    shard = max(source.shard_entry_counts, key=source.shard_entry_counts.get)
    system.rebalance_shard(shard, system.edges[1].node_id)
    system.run_for(30.0)
    system.run()

    dest = system.edges[1]
    # The destination refused the tampered state and raised a dispute …
    assert dest.shard_state(shard) is None
    assert dest.stats["shard_disputes_sent"] == 1
    assert system.cloud.stats["shard_installs"] == 0
    # … and the cloud convicted the source from its own signed statement.
    assert system.cloud.stats["shard_disputes"] == 1
    assert system.cloud.ledger.is_punished(source.node_id)
