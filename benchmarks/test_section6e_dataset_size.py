"""Section VI-E: the effect of the dataset (key-range) size.

Paper finding to reproduce: growing the key range does not meaningfully
change write latency for any of the three systems, because wide-area
communication and verification dominate the per-operation I/O cost.
"""

from __future__ import annotations

from conftest import scaled

from repro.bench import print_tables, section6e_dataset_size

KEY_SPACES = (10_000, 100_000, 1_000_000)


def test_section6e_dataset_size(benchmark):
    table = benchmark.pedantic(
        section6e_dataset_size,
        kwargs={"key_spaces": KEY_SPACES, "num_batches": scaled(6, minimum=3)},
        rounds=1,
        iterations=1,
    )
    print_tables([table])

    for column in ("WedgeChain", "Cloud-only", "Edge-baseline"):
        values = table.column(column)
        # Latency is flat across a 100x growth of the key range (within 40 %).
        assert max(values) / min(values) < 1.4, f"{column} latency not flat: {values}"

    # The systems keep their ordering at every dataset size.
    for row in table.rows:
        assert row["WedgeChain"] < row["Cloud-only"] < row["Edge-baseline"]
