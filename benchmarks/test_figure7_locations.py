"""Figure 7: the effect of edge and cloud placement on commit latency.

Paper findings to reproduce (Section VI-D):

* (a) moving the cloud (Oregon → Mumbai) barely changes WedgeChain's latency
  (15-17 ms in the paper) because the cloud is off the critical path, while
  Cloud-only and the Edge-baseline track the client-cloud round trip.
* (b) with the cloud fixed in Mumbai, WedgeChain's latency tracks the
  client-edge round trip; Cloud-only is flat (it never touches the edge); and
  all systems converge when the edge is co-located with the cloud.
"""

from __future__ import annotations

from conftest import scaled

from repro.bench import (
    figure7_vary_cloud_location,
    figure7_vary_edge_location,
    print_tables,
)
from repro.common import Region
from repro.sim.topology import paper_topology


def test_figure7a_vary_cloud_location(benchmark):
    table = benchmark.pedantic(
        figure7_vary_cloud_location,
        kwargs={"num_batches": scaled(6, minimum=3)},
        rounds=1,
        iterations=1,
    )
    print_tables([table])

    wedge = table.column("WedgeChain")
    cloud_only = table.column("Cloud-only")
    edge_baseline = table.column("Edge-baseline")

    # WedgeChain stays flat (within a small band) wherever the cloud is.
    assert max(wedge) - min(wedge) < 15.0
    assert max(wedge) < 60.0
    # The baselines get worse as the cloud moves away (O -> V -> I -> M).
    assert cloud_only[-1] > cloud_only[0]
    assert edge_baseline[-1] > edge_baseline[0]
    # And WedgeChain beats both everywhere.
    for row in table.rows:
        assert row["WedgeChain"] < row["Cloud-only"]
        assert row["WedgeChain"] < row["Edge-baseline"]
    # The farthest cloud (Mumbai) costs the baselines roughly the 238 ms RTT.
    mumbai = table.rows_where(cloud="M")[0]
    assert mumbai["Cloud-only"] > 150.0


def test_figure7b_vary_edge_location(benchmark):
    table = benchmark.pedantic(
        figure7_vary_edge_location,
        kwargs={"num_batches": scaled(6, minimum=3)},
        rounds=1,
        iterations=1,
    )
    print_tables([table])

    topology = paper_topology()
    rows = {row["edge"]: row for row in table.rows}

    # WedgeChain's latency tracks the client-edge RTT.
    for region in (Region.OREGON, Region.VIRGINIA, Region.IRELAND, Region.MUMBAI):
        rtt_ms = topology.rtt(Region.CALIFORNIA, region)
        wedge = rows[region.short_code]["WedgeChain"]
        assert wedge > rtt_ms * 0.7
        assert wedge < rtt_ms + 80.0

    # Cloud-only ignores the edge location: flat across all rows.
    cloud_only = table.column("Cloud-only")
    assert max(cloud_only) - min(cloud_only) < 0.3 * max(cloud_only)

    # WedgeChain wins everywhere except when the edge is co-located with the
    # cloud (Mumbai), where the three designs converge.
    for code, row in rows.items():
        if code != "M":
            assert row["WedgeChain"] < row["Cloud-only"]
    mumbai = rows["M"]
    assert mumbai["WedgeChain"] == min(
        value for key, value in mumbai.items() if key != "edge"
    ) or abs(mumbai["WedgeChain"] - mumbai["Cloud-only"]) < 0.5 * mumbai["Cloud-only"]
