"""Unit tests for the CI perf-regression gate (`check_perf_regression`)."""

from __future__ import annotations

import json

import pytest

from check_perf_regression import compare, load_non_gating, load_results, main


def result(ops_per_s: float) -> dict:
    return {"ops_per_s": ops_per_s}


def metrics(**values: float) -> dict:
    return {name: result(ops) for name, ops in values.items()}


class TestCompare:
    def test_no_regression_within_threshold(self):
        baseline = metrics(a=100.0, b=1000.0, c=50.0)
        current = metrics(a=90.0, b=1100.0, c=48.0)
        lines, regressions = compare(baseline, current, threshold=0.25)
        assert regressions == []
        assert len(lines) == 3

    def test_targeted_regression_flagged(self):
        baseline = metrics(a=100.0, b=1000.0, c=50.0, d=20.0, e=70.0)
        current = metrics(a=100.0, b=1000.0, c=50.0, d=20.0, e=30.0)
        _, regressions = compare(baseline, current, threshold=0.25)
        assert len(regressions) == 1
        assert regressions[0].startswith("e:")

    def test_uniformly_slower_machine_passes(self):
        """The median machine-speed calibration: a runner where *every*
        metric is 2x slower is not a regression."""

        baseline = metrics(a=100.0, b=1000.0, c=50.0, d=20.0)
        current = metrics(a=50.0, b=500.0, c=25.0, d=10.0)
        _, regressions = compare(baseline, current, threshold=0.25)
        assert regressions == []

    def test_raw_mode_flags_uniform_slowdown(self):
        baseline = metrics(a=100.0, b=1000.0)
        current = metrics(a=50.0, b=500.0)
        _, regressions = compare(baseline, current, threshold=0.25, normalize=False)
        assert len(regressions) == 2

    def test_missing_metric_counts_as_regression(self):
        baseline = metrics(a=100.0)
        _, regressions = compare(baseline, {}, threshold=0.25)
        assert regressions == ["a: missing from the current run"]

    def test_new_metrics_never_gate(self):
        baseline = metrics(a=100.0, b=100.0)
        current = metrics(a=100.0, b=100.0, shiny_new=5.0)
        lines, regressions = compare(baseline, current, threshold=0.25)
        assert regressions == []
        assert any("shiny_new" in line and "new" in line for line in lines)

    def test_exact_threshold_passes(self):
        baseline = metrics(a=100.0, b=100.0, c=100.0)
        current = metrics(a=75.0, b=100.0, c=100.0)
        _, regressions = compare(baseline, current, threshold=0.25)
        assert regressions == []

    def test_non_gating_row_never_fails(self):
        """A row on the baseline's non_gating list is reported but cannot
        regress the build — even when it cratered or went missing."""

        baseline = metrics(a=100.0, b=100.0, fresh=50.0)
        cratered = metrics(a=100.0, b=100.0, fresh=5.0)
        lines, regressions = compare(
            baseline, cratered, threshold=0.25, non_gating=frozenset({"fresh"})
        )
        assert regressions == []
        assert any("fresh" in line and "non-gating" in line for line in lines)
        lines, regressions = compare(
            baseline,
            metrics(a=100.0, b=100.0),
            threshold=0.25,
            non_gating=frozenset({"fresh"}),
        )
        assert regressions == []
        # ... but its absence is still visible in the report.
        assert any(
            "fresh" in line and "(missing)" in line and "non-gating" in line
            for line in lines
        )

    def test_non_gating_row_excluded_from_calibration(self):
        """A wild first measurement of a new row must not shift the median
        the gated rows are judged against."""

        baseline = metrics(a=100.0, b=100.0, c=100.0, fresh=10.0)
        current = metrics(a=100.0, b=100.0, c=70.0, fresh=1000.0)
        _, regressions = compare(
            baseline, current, threshold=0.25, non_gating=frozenset({"fresh"})
        )
        assert len(regressions) == 1
        assert regressions[0].startswith("c:")

    def test_rows_off_the_list_gate_normally(self):
        """The flip: a row that left non_gating regresses the build again —
        the cert_pipeline_* rows are enforced this way from this PR on."""

        baseline = metrics(a=100.0, b=100.0, cert_pipeline_d8=100.0)
        current = metrics(a=100.0, b=100.0, cert_pipeline_d8=40.0)
        _, regressions = compare(
            baseline, current, threshold=0.25, non_gating=frozenset()
        )
        assert len(regressions) == 1
        assert regressions[0].startswith("cert_pipeline_d8:")

    def test_committed_baseline_gates_every_tracked_row(self):
        """The committed BENCH_hotpath.json's non-gating list holds exactly
        the row added this PR (the wall-clock open-loop put p99); everything
        that predates it — including the PR 9 leased replica read, now
        graduated — gates.  Next PR: graduate it by emptying the list."""

        import pathlib

        baseline = pathlib.Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
        non_gating = load_non_gating(str(baseline))
        results = load_results(str(baseline))
        assert non_gating == frozenset({"live_put_p99"})
        assert "live_put_p99" in results
        assert "replica_read" in results
        assert "obs_overhead" in results
        assert "durable_put" in results and "recovery_replay" in results
        assert "txn_cross_shard" in results
        assert "cert_pipeline_d1" in results and "cert_pipeline_d8" in results


class TestCli:
    def write(self, path, results):
        payload = {"schema": 1, "results": results}
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_codes(self, tmp_path, capsys):
        baseline = self.write(
            tmp_path / "baseline.json", metrics(a=100.0, b=100.0, c=100.0)
        )
        good = self.write(tmp_path / "good.json", metrics(a=95.0, b=90.0, c=100.0))
        bad = self.write(tmp_path / "bad.json", metrics(a=10.0, b=100.0, c=100.0))
        assert main(["--baseline", baseline, "--current", good]) == 0
        assert main(["--baseline", baseline, "--current", bad]) == 1
        output = capsys.readouterr().out
        assert "REGRESSION" in output

    def test_malformed_summary_rejected(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        with pytest.raises(SystemExit):
            load_results(str(empty))
