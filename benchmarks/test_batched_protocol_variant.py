"""Opt-in batched-protocol variant of the Figure 4/5 experiments.

Skipped by default: the committed figures keep the paper-exact per-block
certification wire format (``certify_batch_size=1``).  Run with::

    REPRO_BENCH_BATCHED=1 PYTHONPATH=src pytest benchmarks/test_batched_protocol_variant.py

to quantify the WAN-byte and certification-CPU savings of
``certify_batch_size=32`` plus ``gossip_batch=True`` on the same sweeps.
The measured deltas are recorded in CHANGES.md.
"""

from __future__ import annotations

import os

import pytest

from conftest import scaled

from repro.bench import batched_protocol_ablation, print_tables

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_BATCHED", "") != "1",
    reason="opt-in: set REPRO_BENCH_BATCHED=1 (defaults keep the paper-exact "
    "per-block protocol)",
)


def _rows_by_variant(table, key):
    per_block = {row[key]: row for row in table.rows if row["variant"] == "per-block"}
    batched = {row[key]: row for row in table.rows if row["variant"] == "batched"}
    return per_block, batched


def test_batched_variant_saves_wan_and_certification_cpu():
    figure4, figure5 = batched_protocol_ablation(
        num_batches=scaled(6), operations_per_client=scaled(400, minimum=100)
    )
    print_tables([figure4, figure5])

    per_block, batched = _rows_by_variant(figure4, "batch_size")
    for batch_size, reference in per_block.items():
        variant = batched[batch_size]
        # One signature per batch replaces one per block on the WAN path.
        assert variant["wan_bytes"] < reference["wan_bytes"]
        assert variant["certify_cpu_s"] < reference["certify_cpu_s"]
        # Batching stays off the client-visible critical path.
        assert variant["commit_ms"] == pytest.approx(
            reference["commit_ms"], rel=0.05
        )

    per_block5, batched5 = _rows_by_variant(figure5, "clients")
    for clients, reference in per_block5.items():
        variant = batched5[clients]
        assert variant["wan_bytes"] < reference["wan_bytes"]
        assert variant["certify_cpu_s"] < reference["certify_cpu_s"]
        assert variant["throughput_kops"] > reference["throughput_kops"] * 0.9
