"""Wall-clock microbenchmarks of the substrates (pytest-benchmark statistics).

Unlike the figure reproductions (which measure *simulated* time), these
benchmarks measure the real CPU cost of this implementation's hot paths:
block digests, Merkle tree construction and proofs, signatures, and LSM
merges.  They are useful for tracking performance regressions of the library
itself.
"""

from __future__ import annotations

import pytest

from repro.common.identifiers import client_id, edge_id
from repro.crypto.signatures import KeyRegistry
from repro.log.block import build_block, compute_block_digest
from repro.log.entry import make_entry
from repro.lsm.compaction import merge_levels, partition_into_pages
from repro.lsm.records import KVRecord
from repro.merkle.tree import MerkleTree
from repro.crypto.hashing import digest_leaf

ALICE = client_id("alice")
EDGE = edge_id("edge-0")


@pytest.fixture(scope="module")
def registry():
    registry = KeyRegistry("hmac")
    registry.register(ALICE)
    registry.register(EDGE)
    return registry


@pytest.fixture(scope="module")
def block_100(registry):
    entries = [
        make_entry(registry, ALICE, i, b"x" * 100, 1.0) for i in range(100)
    ]
    return build_block(EDGE, 0, entries, created_at=1.0)


def test_bench_block_digest_100_entries(benchmark, block_100):
    digest = benchmark(
        compute_block_digest, block_100.edge, block_100.block_id, block_100.entries
    )
    assert len(digest) == 64


def test_bench_entry_signing(benchmark, registry):
    counter = iter(range(10_000_000))

    def sign_one():
        return make_entry(registry, ALICE, next(counter), b"y" * 100, 2.0)

    entry = benchmark(sign_one)
    assert entry.verify(registry)


def test_bench_hmac_signature_verification(benchmark, registry):
    entry = make_entry(registry, ALICE, 0, b"z" * 100, 1.0)
    assert benchmark(entry.verify, registry)


def test_bench_schnorr_sign_and_verify(benchmark):
    registry = KeyRegistry("schnorr")
    registry.register(ALICE)

    def roundtrip():
        signature = registry.sign(ALICE, {"block": 1})
        return registry.verify(signature, {"block": 1})

    assert benchmark(roundtrip)


def test_bench_merkle_tree_build_1000_leaves(benchmark):
    leaves = [digest_leaf(f"page-{i}".encode()) for i in range(1000)]
    tree = benchmark(MerkleTree, leaves)
    assert tree.num_leaves == 1000


def test_bench_merkle_inclusion_proof(benchmark):
    tree = MerkleTree([digest_leaf(f"page-{i}".encode()) for i in range(1024)])

    def prove_and_verify():
        proof = tree.prove(512)
        return proof.verifies_against(tree.root)

    assert benchmark(prove_and_verify)


def test_bench_lsm_merge_10k_records(benchmark):
    source_records = [KVRecord(f"key{i:06d}", 1_000_000 + i, b"v" * 100) for i in range(5000)]
    target_records = [KVRecord(f"key{i:06d}", i, b"v" * 100) for i in range(0, 10000, 2)]
    source = partition_into_pages(source_records, page_capacity=500, created_at=0.0)
    target = partition_into_pages(target_records, page_capacity=500, created_at=0.0)

    result = benchmark(merge_levels, source, target, 1.0, 500)
    assert result.records_out == len({r.key for r in source_records + target_records})
