#!/usr/bin/env python3
"""IoT fleet logging and device-shadow store with freshness windows.

A fleet of factory devices (Industry 4.0, Section II-A) streams telemetry to
an edge node.  Two access patterns coexist:

* an append-only *event log* consumed by an auditor (``add``/``read``), and
* a *device shadow* key-value view (latest state per device) served by
  LSMerkle (``put``/``get``) with a freshness window so the dashboard never
  shows state older than a configured bound (Section V-D).

The example also exercises LSMerkle merges: enough blocks are written that
level 0 spills into level 1 and the cloud signs new global roots.

Run with::

    python examples/iot_fleet_logging.py
"""

from __future__ import annotations

from repro import CommitPhase, SystemConfig, WedgeChainSystem
from repro.common import LoggingConfig, LSMerkleConfig, SecurityConfig


NUM_DEVICES = 40
BLOCK_SIZE = 20
ROUNDS = 12


def telemetry(device: int, round_index: int) -> tuple[str, bytes]:
    key = f"device-{device:04d}"
    vibration = (device * 31 + round_index * 17) % 100
    payload = f"round={round_index};vibration={vibration / 10:.1f}mm/s".encode()
    return key, payload


def main() -> None:
    config = SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=BLOCK_SIZE),
        # Small thresholds so merges happen within this short example.
        lsmerkle=LSMerkleConfig(level_thresholds=(4, 4, 16, 64)),
        security=SecurityConfig(freshness_window_s=30.0),
    )
    system = WedgeChainSystem.build(config=config, num_clients=2)
    ingestor, dashboard = system.clients

    print("=== IoT fleet logging + device shadows (LSMerkle) ===\n")

    # ------------------------------------------------------------------
    # 1. Stream telemetry rounds; each round is one batch per BLOCK_SIZE ops.
    # ------------------------------------------------------------------
    operations = []
    for round_index in range(ROUNDS):
        items = [telemetry(device, round_index) for device in range(NUM_DEVICES)]
        for start in range(0, len(items), BLOCK_SIZE):
            operations.append(
                (ingestor, ingestor.put_batch(items[start : start + BLOCK_SIZE]))
            )
        system.run_for(0.2)

    system.wait_for_all(operations, CommitPhase.PHASE_TWO, max_time_s=300)
    system.run()  # let outstanding merges finish

    edge = system.edge()
    print(f"wrote {len(operations)} blocks "
          f"({sum(1 for _ in operations) * BLOCK_SIZE} puts over {NUM_DEVICES} devices)")
    print(f"LSMerkle level page counts: {edge.index.level_page_counts()}")
    print(f"cloud-coordinated merges completed: {edge.stats['merges_completed']}")
    if edge.signed_root is not None:
        statement = edge.signed_root.statement
        print(f"latest signed global root: version {statement.version}, "
              f"timestamp {statement.timestamp:.2f}s\n")

    # ------------------------------------------------------------------
    # 2. Dashboard reads device shadows with freshness-checked proofs.
    # ------------------------------------------------------------------
    sample_devices = [0, 7, NUM_DEVICES - 1]
    print("dashboard device shadows (freshness window: "
          f"{config.security.freshness_window_s}s):")
    for device in sample_devices:
        op = dashboard.get(f"device-{device:04d}")
        system.wait_for(dashboard, op, CommitPhase.PHASE_ONE, max_time_s=30)
        record = dashboard.operation(op)
        value = dashboard.value_of(op)
        shown = value.decode() if value else "<missing>"
        print(f"  device-{device:04d}: {shown}  [{record.phase}]")

    # ------------------------------------------------------------------
    # 3. The auditor replays the raw event log block by block.
    # ------------------------------------------------------------------
    print("\nauditor replaying the first three log blocks:")
    for block_id in range(3):
        op = dashboard.read(block_id)
        system.wait_for(dashboard, op, CommitPhase.PHASE_TWO, max_time_s=30)
        record = dashboard.operation(op)
        print(f"  block {block_id}: {record.details.get('num_entries', 0)} entries, "
              f"commit phase {record.phase}")

    stats = system.stats()
    print(f"\nPhase II commits: {stats.phase_two_commits}, "
          f"failed operations: {stats.failed_operations}, "
          f"punishments: {stats.punishments}")
    print("Every shadow read above carried a Merkle/index proof that the "
          "dashboard verified locally against cloud-signed roots.")


if __name__ == "__main__":
    main()
