#!/usr/bin/env python3
"""Replica groups: certified log shipping and failover past a dead writer.

Builds a fleet of three edges where every shard names one certifying
writer plus two read replicas, streams certified batches to the replicas
(nothing new is signed — the replicas verify each shipment against the
cloud-signed root before installing), then crashes the writer and never
brings it back.  The cloud notices the silence, promotes the freshest
replica through the countersigned map-republish path, and a client reads
a pre-crash key back — verified — from the promoted replica.

Run with::

    PYTHONPATH=src python examples/replicated_fleet.py

Knobs (see ``repro.common.config``):

* ``ShardingConfig.replication_factor`` — replica-set size (writer + k
  read replicas); the default ``1`` keeps the paper-exact single-writer
  protocol with no shipping, leases, or failover machinery;
* ``ShardingConfig.replica_lease_s`` — how long a replica may serve
  reads after its last cloud-signed freshness lease;
* ``ShardingConfig.failover_timeout_s`` — writer silence before the
  cloud starts a failover.
"""

from __future__ import annotations

from repro.common.config import (
    LoggingConfig,
    LSMerkleConfig,
    ShardingConfig,
    SystemConfig,
)
from repro.faults import CrashEvent, FaultInjector, FaultPlan
from repro.log.proofs import CommitPhase
from repro.sharding import ShardedWedgeSystem
from repro.sim.environment import local_environment

BLOCKS = 6
BLOCK_SIZE = 4


def main() -> None:
    config = SystemConfig.paper_default().with_overrides(
        num_edge_nodes=3,
        sharding=ShardingConfig(
            num_shards=4,
            replication_factor=3,
            replica_lease_s=1.0,
            failover_timeout_s=1.0,
        ),
        logging=LoggingConfig(block_size=BLOCK_SIZE, block_timeout_s=0.02),
        lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
    )
    system = ShardedWedgeSystem.build(
        config=config, num_clients=1, env=local_environment(seed=9)
    )
    client = system.clients[0]
    registry = system.cloud.shard_registry

    print("=== Replicated WedgeChain fleet ===")
    print(f"cloud : {system.cloud.node_id} in {system.cloud.region}")
    for shard_id in range(4):
        replicas = ", ".join(str(r) for r in registry.replicas_of(shard_id))
        print(
            f"shard {shard_id}: writer {system.shard_owner(shard_id)}"
            f"  replicas [{replicas}]"
        )
    print()

    # ------------------------------------------------------------------
    # 1. Write a workload and let one shipping interval pass: every
    #    certified block lands on both replicas of its shard, verified
    #    against the cloud-signed root before install.
    # ------------------------------------------------------------------
    ops = []
    for block in range(BLOCKS):
        fanout = client.put_batch(
            [(f"pre-{block}-{i}", b"v%d" % i) for i in range(BLOCK_SIZE)]
        )
        ops.extend(fanout if isinstance(fanout, tuple) else (fanout,))
    system.run_for(3.0)
    assert all(client.phase_of(op) is CommitPhase.PHASE_TWO for op in ops)

    print(f"after {BLOCKS * BLOCK_SIZE} certified puts:")
    for edge in system.edges:
        print(
            f"  {edge.node_id}: {edge.stats['replica_shipments_installed']:2d}"
            " replica shipments installed"
        )
    print()

    # ------------------------------------------------------------------
    # 2. Crash the writer of shard 0 — it never restarts.  Reads on its
    #    shards keep being served by the replicas under their freshness
    #    leases while the cloud counts down the writer's silence.
    # ------------------------------------------------------------------
    writer = system.edge_by_id(system.shard_owner(0))
    crashed_shards = tuple(writer.owned_shards())
    print(f"crashing writer {writer.node_id} (shards {list(crashed_shards)})")
    plan = FaultPlan(seed=9, name="writer-crash").with_crash(
        CrashEvent(writer.node_id, at_s=system.env.now() + 0.05)
    )
    FaultInjector(system.env, plan).install()
    system.run_for(6.0)

    # ------------------------------------------------------------------
    # 3. The cloud promoted the freshest replica for every crashed shard
    #    through the countersigned map-republish path — no new data bytes
    #    were signed during the failover.
    # ------------------------------------------------------------------
    version = registry.version
    print(f"failovers started : {system.cloud.stats['shard_failovers_started']}")
    print(f"replica promotions: {system.cloud.stats['replica_promotions']}")
    for shard_id in crashed_shards:
        new_owner = system.shard_owner(shard_id)
        assert new_owner != writer.node_id
        print(
            f"shard {shard_id}: {writer.node_id} -> {new_owner}"
            f" (countersigned map v{version})"
        )
    print()

    # ------------------------------------------------------------------
    # 4. No committed write lost: a pre-crash key in a crashed shard reads
    #    back from the promoted replica with a proof the client verifies.
    # ------------------------------------------------------------------
    probe_shard = crashed_shards[0]
    probe_key, probe_value = next(
        (f"pre-{block}-{i}", b"v%d" % i)
        for block in range(BLOCKS)
        for i in range(BLOCK_SIZE)
        if client.partitioner.shard_of(f"pre-{block}-{i}") == probe_shard
    )
    promoted = system.shard_owner(probe_shard)
    get_op = client.get(probe_key, edge=promoted)
    system.run_for(2.0)
    assert client.phase_of(get_op) is CommitPhase.PHASE_TWO
    value = client.tracker.get(get_op).details.get("value")
    assert value == probe_value
    print(f"verified read from promoted replica {promoted}:")
    print(f"  get({probe_key!r}) = {value!r}")
    print(f"punishments recorded: {len(system.cloud.ledger)}")


if __name__ == "__main__":
    main()
