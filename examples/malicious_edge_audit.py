#!/usr/bin/env python3
"""Auditing malicious edge providers: detection and punishment.

WedgeChain lets the untrusted edge lie — but guarantees every lie is
eventually detectable, and the paper's security model (Section II-D) assumes
a punishment harsh enough to deter misbehaviour.  This example runs four
different adversarial edge providers against honest clients and prints, for
each one, how the lie was detected and what the cloud's punishment ledger
recorded.

Run with::

    python examples/malicious_edge_audit.py
"""

from __future__ import annotations

from repro import CommitPhase, SystemConfig, WedgeChainSystem
from repro.common import LoggingConfig, SecurityConfig
from repro.nodes.malicious import (
    BrokenPromiseEdgeNode,
    EquivocatingCertifierEdgeNode,
    NonCertifyingEdgeNode,
    OmittingEdgeNode,
)

BLOCK_SIZE = 5


def factory_for(edge_class):
    def factory(env, cloud, config, name, region):
        return edge_class(env=env, cloud=cloud, config=config, name=name, region=region)

    return factory


def run_scenario(title: str, edge_class, scenario) -> None:
    config = SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=BLOCK_SIZE),
        security=SecurityConfig(dispute_timeout_s=2.0, gossip_interval_s=0.5),
    )
    system = WedgeChainSystem.build(
        config=config,
        num_clients=2,
        edge_factory=factory_for(edge_class),
        enable_gossip=True,
    )
    print(f"--- {title} ---")
    scenario(system)
    ledger = system.cloud.ledger
    edge_id = system.edge().node_id
    print(f"  punishments recorded : {len(ledger.records_for(edge_id))}")
    for record in ledger.records_for(edge_id):
        print(f"    - block {record.block_id}: {record.reason}")
    print(f"  edge banned from re-entry: {ledger.is_punished(edge_id)}")
    detections = [
        event["kind"] for client in system.clients for event in client.malicious_events
    ]
    print(f"  client-side detections   : {sorted(set(detections)) or 'none'}\n")


def write_then_wait(system) -> None:
    """The writer's Phase I receipt is enough to expose a broken promise."""

    writer = system.client(0)
    op = writer.put_batch([(f"asset-{i}", b"state") for i in range(BLOCK_SIZE)])
    system.run_for(15.0)
    record = writer.operation(op)
    print(f"  writer's operation ended in phase: {record.phase}")


def write_then_read(system) -> None:
    """A second client reads the block; gossip exposes the omission."""

    writer, reader = system.client(0), system.client(1)
    op = writer.put_batch([(f"asset-{i}", b"state") for i in range(BLOCK_SIZE)])
    system.wait_for(writer, op, CommitPhase.PHASE_TWO, max_time_s=30)
    system.run_for(2.0)  # let gossip reach the reader
    read_op = reader.read(0)
    system.run_for(10.0)
    print(f"  reader's read ended in phase: {reader.operation(read_op).phase} "
          f"({reader.operation(read_op).failure_reason or 'ok'})")


def main() -> None:
    print("=== Auditing malicious edge providers ===\n")
    run_scenario(
        "Broken promise: edge certifies different content than it acknowledged",
        BrokenPromiseEdgeNode,
        write_then_wait,
    )
    run_scenario(
        "Silent edge: never certifies anything with the cloud",
        NonCertifyingEdgeNode,
        write_then_wait,
    )
    run_scenario(
        "Equivocating certifier: asks the cloud to certify two digests per block",
        EquivocatingCertifierEdgeNode,
        write_then_wait,
    )
    run_scenario(
        "Omission attack: edge denies having committed blocks",
        OmittingEdgeNode,
        write_then_read,
    )
    print("In every scenario the lie left cryptographic evidence: either the "
          "client's signed receipt/response contradicted the cloud's certified "
          "digest, or the cloud itself observed the equivocation.")


if __name__ == "__main__":
    main()
