#!/usr/bin/env python3
"""Quickstart: a minimal WedgeChain deployment in a simulated edge-cloud.

Builds one cloud node (Virginia), one edge node (California), and one client
(California), writes a batch of key-value pairs, shows the two commit phases
of lazy certification, and reads a value back with a verified index proof.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CommitPhase, SystemConfig, WedgeChainSystem
from repro.common import LoggingConfig


def main() -> None:
    # Small blocks so this example forms several blocks quickly.
    config = SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=10)
    )
    system = WedgeChainSystem.build(config=config, num_clients=1)
    client = system.client()

    print("=== WedgeChain quickstart ===")
    print(f"edge node : {system.edge().node_id} in {system.edge().region}")
    print(f"cloud node: {system.cloud.node_id} in {system.cloud.region}")
    print(f"client    : {client.node_id} in {client.region}")
    print()

    # ------------------------------------------------------------------
    # 1. Write a batch of sensor readings through the LSMerkle index.
    # ------------------------------------------------------------------
    readings = [(f"sensor-{i:03d}", f"{20 + i * 0.5:.1f}C".encode()) for i in range(10)]
    operation = client.put_batch(readings)

    # Phase I: the edge node's signed acknowledgement (no cloud involved).
    system.wait_for(client, operation, CommitPhase.PHASE_ONE)
    record = client.operation(operation)
    print(f"Phase I  commit after {record.phase_one_latency * 1000:6.2f} ms "
          f"(block {record.block_id}, edge receipt held as evidence)")

    # Phase II: the cloud certified the block digest asynchronously.
    system.wait_for(client, operation, CommitPhase.PHASE_TWO)
    record = client.operation(operation)
    print(f"Phase II commit after {record.phase_two_latency * 1000:6.2f} ms "
          f"(cloud-signed block proof received)")
    print()

    # ------------------------------------------------------------------
    # 2. Read a value back with a verified LSMerkle proof.
    # ------------------------------------------------------------------
    get_op = client.get("sensor-003")
    system.wait_for(client, get_op, CommitPhase.PHASE_TWO)
    get_record = client.operation(get_op)
    value = client.value_of(get_op)
    print(f"get('sensor-003') -> {value!r}  [phase: {get_record.phase}]")

    # ------------------------------------------------------------------
    # 3. Read a raw log block (logging interface).
    # ------------------------------------------------------------------
    read_op = client.read(record.block_id)
    system.wait_for(client, read_op, CommitPhase.PHASE_TWO)
    read_record = client.operation(read_op)
    print(f"read(block {record.block_id}) -> {read_record.details['num_entries']} entries, "
          f"phase {read_record.phase}")
    print()

    # ------------------------------------------------------------------
    # 4. System-wide statistics.
    # ------------------------------------------------------------------
    stats = system.stats()
    print("system stats:")
    for key, value in stats.as_dict().items():
        print(f"  {key:>20}: {value}")
    print()
    print("The edge never needed the cloud on the critical path: Phase I latency "
          "tracks the client-edge round trip, while Phase II absorbs the "
          "wide-area latency in the background.")


if __name__ == "__main__":
    main()
