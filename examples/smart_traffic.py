#!/usr/bin/env python3
"""Smart-traffic monitoring: the paper's motivating edge application.

A state government monitors traffic with cameras and ramp sensors spread over
a city (Section II-A).  The sensors stream readings to a third-party edge
datacenter in the city; the government's trusted cloud sits in a remote
datacenter.  The edge provider is *not* trusted, so WedgeChain's lazy
certification keeps ingestion fast while guaranteeing that any tampering is
eventually detected.

The example runs a fleet of sensors, a traffic-control client that reads the
freshest data to adjust ramp meters, and reports ingestion latency, commit
progress, and the bandwidth saved by data-free certification.

Run with::

    python examples/smart_traffic.py
"""

from __future__ import annotations

import statistics

from repro import CommitPhase, Region, SystemConfig, WedgeChainSystem
from repro.common import LoggingConfig, PlacementConfig, SecurityConfig


NUM_SENSORS = 6
READINGS_PER_SENSOR = 8
READINGS_PER_BATCH = 20


def sensor_reading(sensor: int, sequence: int) -> tuple[str, bytes]:
    """A ramp-meter occupancy reading keyed by sensor id."""

    key = f"ramp-{sensor:02d}"
    occupancy = 35 + (sensor * 7 + sequence * 13) % 60
    payload = f"occupancy={occupancy}%;seq={sequence}".encode()
    return key, payload


def main() -> None:
    config = SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=READINGS_PER_BATCH),
        placement=PlacementConfig(
            client_region=Region.CALIFORNIA,   # sensors in the city
            edge_region=Region.CALIFORNIA,     # third-party metro edge DC
            cloud_region=Region.VIRGINIA,      # remote government datacenter
        ),
        security=SecurityConfig(gossip_interval_s=0.5),
    )
    # One extra client acts as the traffic-control application.
    system = WedgeChainSystem.build(
        config=config, num_clients=NUM_SENSORS + 1, enable_gossip=True
    )
    sensors = system.clients[:NUM_SENSORS]
    controller = system.clients[NUM_SENSORS]

    print("=== Smart-traffic monitoring on an untrusted metro edge ===")
    print(f"{NUM_SENSORS} sensors -> edge in {system.edge().region.value}, "
          f"cloud in {system.cloud.region.value}\n")

    # ------------------------------------------------------------------
    # 1. Sensors stream readings in batches (fast ingestion at the edge).
    # ------------------------------------------------------------------
    write_ops = []
    for round_index in range(READINGS_PER_SENSOR):
        for sensor_index, sensor in enumerate(sensors):
            batch = [
                sensor_reading(sensor_index, round_index * 3 + i) for i in range(3)
            ]
            write_ops.append((sensor, sensor.put_batch(batch)))
        system.run_for(0.05)  # sensors report every 50 ms

    system.wait_for_all(write_ops, CommitPhase.PHASE_ONE, max_time_s=60)
    phase_one = [
        client.operation(op).phase_one_latency * 1000
        for client, op in write_ops
        if client.operation(op).phase_one_latency is not None
    ]
    print(f"ingested {len(write_ops)} sensor batches")
    print(f"  Phase I  (edge ack)  latency: mean {statistics.mean(phase_one):6.2f} ms")

    # ------------------------------------------------------------------
    # 2. The controller reads the freshest ramp state from the edge.
    # ------------------------------------------------------------------
    lookups = [f"ramp-{i:02d}" for i in range(NUM_SENSORS)]
    read_ops = [(controller, controller.get(key)) for key in lookups]
    system.wait_for_all(read_ops, CommitPhase.PHASE_ONE, max_time_s=60)
    print("\ncontroller view of the ramps (verified index proofs):")
    for (client, op), key in zip(read_ops, lookups):
        record = client.operation(op)
        value = client.value_of(op)
        print(f"  {key}: {value.decode() if value else '<no data>'}  "
              f"[{record.phase}]")

    # ------------------------------------------------------------------
    # 3. Let lazy certification finish and report the edge-cloud savings.
    # ------------------------------------------------------------------
    system.wait_for_all(write_ops, CommitPhase.PHASE_TWO, max_time_s=120)
    system.run_for(2.0)
    phase_two = [
        client.operation(op).phase_two_latency * 1000
        for client, op in write_ops
        if client.operation(op).phase_two_latency is not None
    ]
    print(f"\n  Phase II (certified) latency: mean {statistics.mean(phase_two):6.2f} ms "
          "(absorbed off the critical path)")

    net = system.env.network.stats
    print("\nbandwidth: "
          f"{net.lan_bytes / 1e6:.2f} MB stayed in the metro (clients <-> edge), "
          f"only {net.wan_bytes / 1e6:.2f} MB crossed the WAN (digests, proofs, merges)")
    print(f"cloud certified {system.cloud.stats['certifications']} blocks, "
          f"punishments recorded: {system.cloud.stats['punishments']}")


if __name__ == "__main__":
    main()
