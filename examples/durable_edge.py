#!/usr/bin/env python3
"""Durable edge: crash, recover from disk, and read back with a verified proof.

The default deployment is in-memory (paper-exact).  This example opts one
edge into the disk backend (``StorageConfig(backend="disk")``): every formed
block, Phase I receipt, and certification proof is appended to a checksummed
segment log, and each LSMerkle merge snapshots the level pages plus the
cloud-signed global root into an atomically-swapped manifest.  We then kill
the edge, watch recovery rebuild the partition *purely from disk*, verify
the rebuilt Merkle roots against the durable signed root, and read a value
back through a verified proof — the crash never happened, as far as the
client can tell.

Run with::

    python examples/durable_edge.py
"""

from __future__ import annotations

import os
import tempfile

from repro import CommitPhase, SystemConfig, WedgeChainSystem
from repro.common import LoggingConfig
from repro.common.config import LSMerkleConfig, StorageConfig


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="wedge-durable-") as root:
        # Small blocks and eager merge thresholds so a short workload forms
        # several blocks, merges them, and snapshots a signed root to disk.
        config = SystemConfig.paper_default().with_overrides(
            logging=LoggingConfig(block_size=5),
            lsmerkle=LSMerkleConfig(level_thresholds=(2, 2, 4, 8)),
            storage=StorageConfig(backend="disk", root_dir=root, fsync="always"),
        )
        system = WedgeChainSystem.build(config=config, num_clients=1)
        client = system.client()
        edge = system.edge()

        print("=== Durable edge: crash -> recover -> verified get ===")
        print(f"edge partition directory: <tmp>/{edge.node_id.name}/default")
        print()

        # --------------------------------------------------------------
        # 1. Write sensor readings; wait until the cloud certified them.
        # --------------------------------------------------------------
        operations = []
        for batch in range(4):
            readings = [
                (f"sensor-{batch * 5 + i:03d}", f"{20 + i * 0.5:.1f}C".encode())
                for i in range(5)
            ]
            operations.append(client.put_batch(readings))
        for operation in operations:
            system.wait_for(client, operation, CommitPhase.PHASE_TWO)
        # Let the asynchronous LSMerkle merge finish: it installs the
        # cloud-signed global root and snapshots the manifest to disk.
        system.run_for(5.0)
        print(f"wrote {len(operations)} blocks, all Phase II certified")

        store = edge._default_partition.store
        directory = store.directory
        segments = sorted(
            name for name in os.listdir(directory) if name.startswith("seg-")
        )
        print(f"on disk: {len(segments)} segment file(s), "
              f"{store.stats['blocks_appended']} blocks appended, "
              f"{store.stats['manifests_written']} manifest snapshot(s)")
        print()

        # --------------------------------------------------------------
        # 2. Kill the edge.  The crash model truncates unsynced segment
        #    bytes; with fsync="always" nothing acknowledged is at risk.
        # --------------------------------------------------------------
        print("crashing the edge (volatile state wiped, disk keeps the truth)")
        edge.on_crash()

        # --------------------------------------------------------------
        # 3. Restart: the partition is REPLACED by one rebuilt from the
        #    store, and the rebuilt Merkle roots must match the durable
        #    cloud-signed root before the edge serves a single request.
        # --------------------------------------------------------------
        edge.on_restart()
        [report] = edge.last_recovery_reports
        print("Recovery report:")
        print(f"  blocks replayed : {report.blocks_replayed}")
        print(f"  proofs replayed : {report.proofs_replayed}")
        print(f"  torn records    : {report.torn_records_dropped}")
        print(f"  manifest version: {report.manifest_version}")
        print(f"  root verified: {report.root_verified}")
        print(f"  quarantined     : {report.quarantined}")
        print()

        # --------------------------------------------------------------
        # 4. Read back through the recovered index, proof-verified.
        # --------------------------------------------------------------
        get_op = client.get("sensor-003")
        system.wait_for(client, get_op, CommitPhase.PHASE_TWO)
        value = client.value_of(get_op)
        print(f"get('sensor-003') -> {value!r}  [served from the recovered index]")
        print()
        print("The client never saw the crash: every certified write survived on "
              "disk, recovery proved the rebuild against the cloud-signed root, "
              "and reads verify exactly as before.  Had any sealed segment, page, "
              "or the manifest been corrupted, the partition would have "
              "quarantined itself instead of serving unprovable data.")


if __name__ == "__main__":
    main()
