#!/usr/bin/env python3
"""Cross-shard atomic transactions: client-coordinated 2PC on the fleet.

Builds a two-edge sharded fleet, runs an atomic multi-key put whose keys
span shards on *both* edges (prepare receipts → signed commit → certified
decision records), reads every key back verified, and then demonstrates the
failure side of the protocol: a transaction whose decision never arrives is
presumed aborted by the participants at the receipts' signed expiry horizon,
and none of its writes ever become visible.

Run with::

    PYTHONPATH=src python examples/cross_shard_txn.py

Knobs (see ``repro.common.config``):

* ``ShardingConfig.txn_receipt_timeout_s`` — how long the coordinator
  collects prepare receipts before deciding abort;
* ``ShardingConfig.txn_prepare_timeout_s`` — the participants' presumed-
  abort horizon (the ``expires_at`` each prepare receipt signs).
"""

from __future__ import annotations

from repro.common.config import (
    LoggingConfig,
    LSMerkleConfig,
    ShardingConfig,
    SystemConfig,
)
from repro.log.proofs import CommitPhase
from repro.messages.txn_messages import TxnDecisionMessage, TxnPrepareReceipt
from repro.sharding import ShardedWedgeSystem, decode_txn_decision, is_txn_decision_payload


def decision_records(edge):
    for shard in edge.owned_shards():
        for record in edge.shard_state(shard).log:
            for entry in record.block.entries:
                if is_txn_decision_payload(entry.payload):
                    yield shard, record, decode_txn_decision(entry.payload)


def main() -> None:
    config = SystemConfig.paper_default().with_overrides(
        num_edge_nodes=2,
        sharding=ShardingConfig(
            num_shards=4,
            txn_receipt_timeout_s=0.5,
            txn_prepare_timeout_s=2.0,
        ),
        logging=LoggingConfig(block_size=8, block_timeout_s=0.01),
        lsmerkle=LSMerkleConfig(level_thresholds=(4, 8, 64, 512)),
    )
    system = ShardedWedgeSystem.build(config=config, num_clients=1, seed=11)
    client = system.clients[0]

    # Pick one key per shard: four shards, two owning edges.
    keys: dict[int, str] = {}
    index = 0
    while len(keys) < 4:
        key = f"key{index:012d}"
        keys.setdefault(client.partitioner.shard_of(key), key)
        index += 1
    items = [(key, f"balance-{shard}".encode()) for shard, key in sorted(keys.items())]
    owners = sorted({str(client.router.route(key).owner) for key, _ in items})
    print(f"atomic put of {len(items)} keys across shards {sorted(keys)} "
          f"owned by {owners}")

    txn_id = client.txn_put(items)
    system.run_for(3.0)
    record = client.txns.record(txn_id)
    print(f"transaction {txn_id}: {record.state} ({record.reason})")
    for shard, participant in sorted(record.participants.items()):
        print(f"  shard {shard} @ {participant.owner}: receipt log position "
              f"{participant.receipt.statement.log_position}, "
              f"ack {participant.ack.status} in block {participant.ack.block_id}")

    gets = [(key, value, client.get(key)) for key, value in items]
    system.run_for(2.0)
    verified = sum(
        1
        for key, value, operation in gets
        if client.value_of(operation) == value
        and client.phase_of(operation) is CommitPhase.PHASE_TWO
    )
    print(f"verified reads after commit: {verified}/{len(gets)} (Phase II)")
    for edge in system.edges:
        for shard, log_record, decoded in decision_records(edge):
            certified = "certified" if log_record.proof is not None else "pending"
            print(f"  decision record on {edge.node_id} shard {shard}: "
                  f"{decoded[0]} in block {log_record.block.block_id} ({certified})")

    # ------------------------------------------------------------------
    # Coordinator abandonment: the decision never arrives.
    # ------------------------------------------------------------------
    print("\nabandoned transaction (receipts and decisions lost in transit):")
    system.env.network.add_send_hook(
        "example:abandon-coordinator",
        lambda src, dst, message: not isinstance(
            message, (TxnPrepareReceipt, TxnDecisionMessage)
        ),
    )
    orphan_items = [(key, b"never-visible") for key, _value in items[:2]]
    orphan = client.txn_put(orphan_items)
    system.run_for(3.0)  # past the participants' signed expires_at horizon
    system.env.network.remove_send_hook("example:abandon-coordinator")
    system.run_for(0.5)
    expired = sum(edge.stats.get("txn_prepares_expired", 0) for edge in system.edges)
    print(f"  coordinator state: {client.txns.state_of(orphan)}; "
          f"participant stages expired: {expired}")
    committed = dict(items)
    gets = [(key, client.get(key)) for key, _ in orphan_items]
    system.run_for(2.0)
    stale = [
        key for key, operation in gets if client.value_of(operation) == b"never-visible"
    ]
    originals = sum(
        1 for key, operation in gets if client.value_of(operation) == committed[key]
    )
    print(f"  orphaned writes visible: {len(stale)} (originals still served: "
          f"{originals}/{len(orphan_items)})")
    print(f"\npunishments recorded: {len(system.cloud.ledger)}")


if __name__ == "__main__":
    main()
