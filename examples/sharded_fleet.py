#!/usr/bin/env python3
"""Sharded edge fleet: routing, skewed load, and a certified shard handoff.

Builds a fleet of four sharded edge nodes behind one cloud, writes a
range-partitioned Zipfian workload (so the low shards run hot), lets the
load-based rebalance trigger move the hottest shard through the certified
handoff protocol, and reads the moved keys back — verified — from the new
owner.

Run with::

    PYTHONPATH=src python examples/sharded_fleet.py

Knobs (see ``repro.common.config``):

* ``SystemConfig.num_edge_nodes`` — fleet size;
* ``ShardingConfig.num_shards`` — partition granularity (more shards than
  edges lets rebalancing move load at sub-edge steps);
* ``ShardingConfig.partitioner`` — ``"hash-ring"`` (uniform) or ``"range"``
  (ordered, hotspot-prone — used here to give rebalancing work to do);
* ``ShardingConfig.rebalance_hot_factor`` — how skewed an edge's share of
  the logged entries must be before ``maybe_rebalance`` moves a shard.
"""

from __future__ import annotations

from repro.common.config import (
    LoggingConfig,
    LSMerkleConfig,
    ShardingConfig,
    SystemConfig,
    WorkloadConfig,
)
from repro.log.proofs import CommitPhase
from repro.sharding import ShardedWedgeSystem
from repro.workloads.generator import KeyValueWorkload


def main() -> None:
    config = SystemConfig.paper_default().with_overrides(
        num_edge_nodes=4,
        sharding=ShardingConfig(
            num_shards=8,
            partitioner="range",
            key_space=10_000,
            rebalance_hot_factor=1.5,
        ),
        logging=LoggingConfig(block_size=20, block_timeout_s=0.01),
        lsmerkle=LSMerkleConfig(level_thresholds=(4, 8, 64, 512)),
    )
    system = ShardedWedgeSystem.build(config=config, num_clients=2)
    client = system.clients[0]

    print("=== Sharded WedgeChain fleet ===")
    print(f"cloud : {system.cloud.node_id} in {system.cloud.region}")
    for edge in system.edges:
        shards = ", ".join(str(s) for s in edge.owned_shards())
        print(f"edge  : {edge.node_id} owns shards [{shards}]")
    print()

    # ------------------------------------------------------------------
    # 1. A Zipfian write workload over range partitions: the popular low
    #    key indices all land in shard 0, overloading its owner.
    # ------------------------------------------------------------------
    workload = KeyValueWorkload(
        WorkloadConfig(
            key_space=10_000,
            key_distribution="zipfian",
            zipf_theta=0.99,
            batch_size=20,
        )
    )
    operations = []
    for _ in range(40):
        for operation in client.put_batch(workload.write_batch(20)):
            operations.append((client, operation))
    assert system.wait_for_all(operations, CommitPhase.PHASE_TWO, max_time_s=300)
    system.run()

    print("after 800 Zipfian puts:")
    for edge in system.edges:
        print(f"  {edge.node_id}: {edge.stats['entries_logged']:4d} entries logged")
    print()

    # ------------------------------------------------------------------
    # 2. Rebalance: the trigger notices the hot edge and orders a certified
    #    handoff of its busiest shard to the least-loaded edge.
    # ------------------------------------------------------------------
    action = system.maybe_rebalance()
    assert action is not None, "the Zipfian hotspot should trip the trigger"
    print(f"rebalance: shard {action.shard_id}  {action.source} -> {action.dest}")
    print(f"  reason: {action.reason}")
    system.run_for(30.0)
    system.run()

    stats = system.fleet_stats()
    print(f"  handoffs granted/completed: {stats['handoffs_granted']}"
          f"/{stats['handoffs_completed']}")
    print(f"  shard map version: {stats['map_version']}")
    assert system.shard_owner(action.shard_id) == action.dest
    print()

    # ------------------------------------------------------------------
    # 3. Reads of the moved keys route to — and verify against — the new
    #    owner; the old owner answers with signed redirects if asked.
    # ------------------------------------------------------------------
    hot_key = "key" + "0" * 12  # the hottest key, in the moved shard's range
    get_op = client.get(hot_key)
    phase = system.wait_for(client, get_op, CommitPhase.PHASE_TWO, max_time_s=60)
    record = client.tracker.get(get_op)
    print(f"get {hot_key!r}: {phase} from {record.details['edge']}")
    print(f"  value: {client.value_of(get_op)!r}")
    print()
    print("fleet stats:", stats)


if __name__ == "__main__":
    main()
