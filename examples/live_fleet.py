#!/usr/bin/env python3
"""Run a live WedgeChain fleet and drive it with open-loop load.

The same node code that powers the simulator runs here as asyncio tasks
exchanging codec-framed messages over unix sockets: start a 1-cloud/2-edge
fleet, offer it a seeded Poisson stream of put batches plus verified reads,
print p50/p90/p99/p999 response-time percentiles, and shut down cleanly.

Run with::

    python examples/live_fleet.py
"""

from __future__ import annotations

import asyncio

from repro.common.config import WorkloadConfig
from repro.log.proofs import CommitPhase
from repro.service import LiveFleet
from repro.workloads import OpenLoopSpec, run_open_loop


async def main() -> None:
    print("== WedgeChain live fleet: 1 cloud, 2 edges, 2 clients ==")
    fleet = LiveFleet(num_edges=2, num_clients=2, seed=7)
    await fleet.start()
    print("fleet up: sockets bound, node workers running")

    # One put, followed end to end: Phase I (edge receipt) then Phase II
    # (cloud certification, lazily).
    client = fleet.client(0)
    operation = client.put_batch([("sensor-0", b"reading-1"), ("sensor-1", b"reading-2")])
    phase = await fleet.wait_for(client, operation, CommitPhase.PHASE_TWO, timeout_s=10)
    print(f"single put committed through {phase.value}")

    # A verified read: the edge answers with an LSMerkle proof the client
    # checks against the cloud-signed root.
    read = client.get("sensor-0")
    phase = await fleet.wait_for(client, read, CommitPhase.PHASE_TWO, timeout_s=10)
    print(f"verified read completed through {phase.value}")

    # Open-loop load: arrivals are fixed in advance by a seeded Poisson
    # process, so a slow fleet cannot slow the offered load — queueing
    # delay lands in the percentiles instead.
    workload = WorkloadConfig(
        num_clients=2,
        batch_size=50,
        value_size=100,
        read_fraction=0.1,
        key_space=1_000,
        operations_per_client=100,
        seed=7,
    )
    spec = OpenLoopSpec(workload=workload, num_requests=80, rate=60.0)
    print(f"offering {spec.num_requests} requests at {spec.rate:.0f} req/s (Poisson)...")
    result = await run_open_loop(fleet, spec)
    print("open-loop response times (to Phase I commit):")
    for line in result.report_lines():
        print(f"  {line}")

    stats = fleet.stats()
    print(
        f"fleet stats: {stats.phase_two_commits} certified operations, "
        f"{stats.blocks_formed} blocks, {stats.certifications} certifications, "
        f"{stats.frames_sent} frames ({stats.frame_bytes_sent} bytes) on the wire"
    )
    await fleet.stop()
    print("clean shutdown")


if __name__ == "__main__":
    asyncio.run(main())
