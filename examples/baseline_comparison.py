#!/usr/bin/env python3
"""Compare WedgeChain with the Cloud-only and Edge-baseline designs.

Runs the same write workload against the three systems of the paper's
evaluation and prints commit latency, throughput, and WAN traffic — a
miniature version of Figure 4 plus the data-free bandwidth argument.

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro.bench import (
    SYSTEM_KINDS,
    SYSTEM_LABELS,
    ResultTable,
    config_for_batch,
    run_workload,
    write_workload,
)


def main() -> None:
    batch_size = 500
    num_batches = 12
    workload = write_workload(batch_size=batch_size, num_batches=num_batches)
    config = config_for_batch(batch_size)

    table = ResultTable(
        title=f"WedgeChain vs baselines ({num_batches} batches of {batch_size} puts)",
        columns=[
            "system",
            "commit_latency_ms",
            "phase2_latency_ms",
            "throughput_kops",
            "wan_megabytes",
        ],
    )
    for kind in SYSTEM_KINDS:
        metrics = run_workload(kind, workload, config=config, drain=True)
        table.add_row(
            system=SYSTEM_LABELS[kind],
            commit_latency_ms=metrics.mean_commit_latency_ms,
            phase2_latency_ms=metrics.mean_phase_two_latency_ms or float("nan"),
            throughput_kops=metrics.throughput_kops_per_s,
            wan_megabytes=metrics.wan_bytes / 1e6,
        )

    print(table.format())
    print()
    print("WedgeChain commits at edge latency and ships only digests across the "
          "WAN; the Edge-baseline pays the wide-area round trip and the full "
          "data transfer on every batch; Cloud-only pays the round trip but "
          "skips the edge entirely.")


if __name__ == "__main__":
    main()
