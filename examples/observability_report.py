#!/usr/bin/env python3
"""Observability: trace a certification end-to-end and render a fleet report.

Runs the quickstart deployment with ``ObservabilityConfig(enabled=True)`` and
a fault rule that delays certification requests for the first few seconds,
then shows what the observability layer captured:

1. the causal span chain behind one Phase II certificate
   (``phase1.commit`` -> ``certify.dispatch`` -> ``certify.cloud`` ->
   ``certify.absorb``),
2. the injected faults, each linked to the protocol span it perturbed,
3. the fleet health report rendered from a written recording — the same
   output as ``python -m repro.obs.report recording.json``.

Observability is opt-in: with the default config none of this exists and the
instrumented hot paths cost one attribute check (see
``tests/test_chaos_scenarios.py::TestObservabilityOverhead``).

Run with::

    python examples/observability_report.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CommitPhase, SystemConfig, WedgeChainSystem
from repro.common import LoggingConfig
from repro.common.config import ObservabilityConfig
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.obs.report import fleet_health_report


def main() -> None:
    config = SystemConfig.paper_default().with_overrides(
        logging=LoggingConfig(block_size=4),
        observability=ObservabilityConfig(enabled=True),
    )
    system = WedgeChainSystem.build(config=config, num_clients=1, seed=11)
    client = system.client()

    # Delay every certification request for the first 5 simulated seconds, so
    # the trace shows faults attributed to the spans they perturbed.
    plan = FaultPlan(seed=11, name="obs-example").with_rule(
        FaultRule("delay", message_type="BlockCertifyRequest", delay_s=0.5, until_s=5.0)
    )
    FaultInjector(system.env, plan).install()

    print("=== WedgeChain observability example ===")
    operations = [
        client.put(f"sensor-{index:03d}", f"{20 + index * 0.5:.1f}C".encode())
        for index in range(12)
    ]
    system.wait_for_all([(client, op) for op in operations], CommitPhase.PHASE_TWO)

    tracer = system.env.obs.tracer
    by_id = {span.span_id: span for span in tracer.spans}

    # --------------------------------------------------------------
    # 1. One certificate's causal chain, newest first.
    # --------------------------------------------------------------
    absorb = tracer.spans_named("certify.absorb")[0]
    print("\ncausal chain for the first Phase II certificate:")
    span = absorb
    while span is not None:
        where = f" on {span.node}" if span.node else ""
        print(f"  {span.span_id}  {span.name:<18} start={span.start:7.3f}s{where}")
        span = by_id.get(span.parent_id) if span.parent_id else None
    for link in absorb.links:
        linked = by_id[link.span_id]
        print(f"  `- links Phase I span {linked.span_id}  {linked.name}")

    # --------------------------------------------------------------
    # 2. Injected faults, attributed to the spans they hit.
    # --------------------------------------------------------------
    delays = [event for event in tracer.events if event["name"] == "fault.delay"]
    print(f"\ninjected faults: {len(delays)} delayed certification request(s)")
    for event in delays:
        victim = by_id[event["span"]]
        print(
            f"  t={event['time']:6.3f}s delay during {victim.name} "
            f"({victim.span_id} on {victim.node})"
        )

    # --------------------------------------------------------------
    # 3. The fleet health report, from a written recording.
    # --------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "recording.json"
        system.env.obs.write_recording(path)
        print(f"\nrecording written ({path.stat().st_size} bytes), rendering it:\n")
        from repro.obs.export import load_recording

        print(fleet_health_report(load_recording(path)), end="")


if __name__ == "__main__":
    main()
